#!/usr/bin/env python3
"""Design views and view correspondence (paper Figs. 7 and 8).

Builds the three views of an inverter cell — logic, transistor, physical
— as history instances, then runs:

* the synthesis flow of Fig. 8a (physical from transistor view), and
* the verification flow of Fig. 8b (physical corresponds to transistor
  view?),

and finally demonstrates that the correspondence *check itself* lives in
the history: the Verification instance's derivation names exactly which
layout version was verified against which netlist version.

Run:  python3 examples/view_synthesis.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.core.render import ascii_graph
from repro.history import backward_trace
from repro.schema import standard as S
from repro.tools import install_standard_tools, tech_map
from repro.tools.logic import LogicSpec
from repro.views import (standard_views, synthesis_flow,
                         synthesize_physical, verification_flow,
                         verify_correspondence)


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="viewer")
    tools = install_standard_tools(env)
    registry = standard_views(env.schema)
    print(f"registered views: {registry.views()}")

    # the three views of an inverter cell (Fig. 7)
    logic_view = LogicSpec.from_equations("inverter", "out = ~inp")
    logic = env.install_data(S.EDITED_LOGIC_SPEC, logic_view,
                             name="inv-logic")
    transistor_view = tech_map(logic_view, "inv-transistors")
    netlist = env.install_data(S.EDITED_NETLIST, transistor_view,
                               name="inv-transistors")
    print(f"logic view:      {registry.view_of(logic)} "
          f"({logic.instance_id})")
    print(f"transistor view: {registry.view_of(netlist)} "
          f"({netlist.instance_id})")

    # Fig. 8a: the synthesis flow, shown before binding
    print()
    print(ascii_graph(synthesis_flow(env.schema).graph,
                      "Fig. 8a: synthesize physical view"))
    pspec = env.install_data(S.PLACEMENT_SPEC, {"seed": 3, "moves": 200},
                             name="inv-place")
    placed = synthesize_physical(env, netlist, pspec, tools[S.PLACER])
    print(f"\nphysical view:   {registry.view_of(placed)} "
          f"({placed.instance_id})")

    # Fig. 8b: the verification flow
    print()
    print(ascii_graph(verification_flow(env.schema).graph,
                      "Fig. 8b: verify physical against transistor view"))
    verification = verify_correspondence(
        env, netlist, placed, tools[S.VERIFIER], tools[S.EXTRACTOR])
    matched = env.db.data(verification).matched
    print(f"\nviews in correspondence: {matched}")

    # which versions were verified against each other? ask the history
    print("\nderivation of the verification result:")
    print(backward_trace(env.db, verification.instance_id).render())

    # browse every instance of the physical view
    print("\nall physical-view instances:")
    for instance in registry.instances_of_view(env.db, "physical"):
        print(f"  {instance.instance_id} ({instance.entity_type})")


if __name__ == "__main__":
    main()
