#!/usr/bin/env python3
"""A scripted Hercules session: the Fig. 9 and Fig. 10 interactions.

Replays the paper's user-interface walkthrough with the text task window:

* section 4.1 — start a task from the entity-catalog, build the flow
  with Expand operations from the pop-up menu, select instances in the
  browser, run;
* section 4.2 / Fig. 10 — select a Performance in a fresh window and use
  the *History* operation to reveal the instances that created it, then
  *Use* to forward-chain.

Run:  python3 examples/hercules_session.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.schema import standard as S
from repro.tools import (default_models, exhaustive,
                         install_standard_tools, tech_map)
from repro.tools.logic import LogicSpec
from repro.ui import HerculesSession


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="jbb")
    install_standard_tools(env)

    spec = LogicSpec.from_equations("lpf-ctl", "y = ~(a & b)")
    netlist = env.install_data(S.EDITED_NETLIST, tech_map(spec),
                               name="Low pass filter",
                               comment="control logic")
    models = env.install_data(S.DEVICE_MODELS, default_models(),
                              name="tech")
    stimuli = env.install_data(S.STIMULI, exhaustive(("a", "b")),
                               name="ab-vectors")

    session = HerculesSession(env)
    print("=" * 64)
    print("Fig. 9: building and running a task from the entity-catalog")
    print("=" * 64)
    print(session.run_script(f"""
        new simulate-performance
        place Performance
        popup n0
        expand n0
        expand n2
        browse n5 low
        bind n5 {netlist.instance_id}
        bind n4 {models.instance_id}
        bind n3 {stimuli.instance_id}
        select-latest n1
        show
        run
    """))

    performance = env.db.browse(S.PERFORMANCE)[-1]
    print()
    print("=" * 64)
    print("Fig. 10: browsing the design history of that performance")
    print("=" * 64)
    print(session.run_script(f"""
        new history-browse
        place-data {performance.instance_id}
        popup n0
        history n0
        show
    """))

    print()
    print("Use Dependencies on the netlist (forward chaining):")
    print(session.run_script(f"""
        new use-deps
        place-data {netlist.instance_id}
        use n0 Performance
    """))


if __name__ == "__main__":
    main()
