#!/usr/bin/env python3
"""Quickstart: build and run a dynamically defined flow.

The goal-based approach from the paper, end to end:

1. create a design environment over the standard (Fig. 1 + Fig. 2) task
   schema and install the mini-CAD tools;
2. install source data (device models, a netlist, stimuli);
3. place the goal entity *Performance*, expand it until the leaves are
   source entities, select instances in the browser;
4. execute, then query the design history.

Run:  python3 examples/quickstart.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.core.render import ascii_graph
from repro.history import backward_trace
from repro.tools import (default_models, exhaustive,
                         install_standard_tools, tech_map)
from repro.tools.logic import LogicSpec


def main() -> None:
    # 1. the environment: schema + history database + tool registry
    env = DesignEnvironment(odyssey_schema(), user="quickstart")
    tools = install_standard_tools(env)

    # 2. source data entering from outside any flow
    spec = LogicSpec.from_equations("mux", "y = (a & ~s) | (b & s)")
    netlist = env.install_data("EditedNetlist", tech_map(spec),
                               name="mux-gates",
                               comment="2:1 mux, gate level")
    models = env.install_data("DeviceModels", default_models(),
                              name="generic-1993")
    stimuli = env.install_data("Stimuli",
                               exhaustive(("a", "b", "s"), name="all"),
                               name="all-vectors")

    # 3. goal-based: start from the entity we want produced
    flow, goal = env.goal_flow("Performance", name="simulate-mux")
    flow.expand(goal)                       # adds Simulator, Circuit, Stimuli
    flow.expand(flow.sole_node_of_type("Circuit"))  # adds Models, Netlist
    flow.bind(flow.sole_node_of_type("Netlist"), netlist.instance_id)
    flow.bind(flow.sole_node_of_type("DeviceModels"), models.instance_id)
    flow.bind(flow.sole_node_of_type("Stimuli"), stimuli.instance_id)
    flow.bind(flow.sole_node_of_type("Simulator"),
              tools["Simulator"].instance_id)

    print(ascii_graph(flow.graph, "the flow, built up on demand"))
    print()

    # 4. execute: automatic task sequencing from the schema
    report = env.run(flow)
    print(f"executed {len(report.results)} invocations, created "
          f"{list(report.created)}")
    performance = env.db.data(goal.produced[0])
    print(f"worst delay: {performance.worst_delay_ns:.2f} ns, "
          f"energy: {performance.total_energy_fj:.1f} fJ")
    print(f"y waveform over all vectors: "
          f"{''.join(performance.waveform('y'))}")
    print()

    # 5. the design history knows where everything came from
    print(backward_trace(env.db, goal.produced[0]).render())


if __name__ == "__main__":
    main()
