#!/usr/bin/env python3
"""Parallel execution of disjoint flow branches (paper Fig. 6).

Section 3.3: disjoint branches in the flow can be executed in parallel,
possibly on different machines.  This demo builds one flow containing
four independent extract-and-analyze branches (one per layout variant),
runs it serially and then on a simulated 4-machine pool, and reports the
wall-clock speedup.  Tool latency is simulated with a small sleep, as the
1993 tools were external processes whose runtime dominated.

Run:  python3 examples/parallel_branches.py
"""

import time

from repro import DesignEnvironment, odyssey_schema
from repro.execution import MachinePool, encapsulation
from repro.schema import standard as S
from repro.tools import extract, install_standard_tools, standard_library
from repro.tools import stdcell_layout
from repro.tools.logic import LogicSpec

TOOL_LATENCY = 0.1  # seconds per tool run (simulated external process)
BRANCHES = 4


def install_slow_extractor(env):
    library = standard_library()

    def slow_extract(ctx, inputs):
        time.sleep(TOOL_LATENCY)
        netlist, statistics = extract(inputs["layout"], library)
        produced = {S.EXTRACTED_NETLIST: netlist,
                    S.EXTRACTION_STATISTICS: statistics}
        return {t: produced[t] for t in ctx.output_types}

    return env.install_tool(S.EXTRACTOR,
                            encapsulation("slow-netex", slow_extract),
                            name="slow-netex")


def build_flow(env, extractor, layouts):
    """One flow, BRANCHES disjoint extract branches (the Fig. 6 shape)."""
    flow = env.new_flow("fig6")
    for layout in layouts:
        netlist_node = flow.place(S.EXTRACTED_NETLIST)
        stats_node = flow.graph.add_node(S.EXTRACTION_STATISTICS)
        tool_node = flow.graph.add_node(S.EXTRACTOR)
        layout_node = flow.graph.add_node(S.LAYOUT)
        layout_node.bind(layout.instance_id)
        tool_node.bind(extractor.instance_id)
        for output in (netlist_node, stats_node):
            flow.connect(output, tool_node)
            flow.connect(output, layout_node, role="layout")
    return flow


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="fig6")
    install_standard_tools(env)
    extractor = install_slow_extractor(env)
    library = standard_library()

    # four layout variants of small functions
    functions = ["y = a & b", "y = a | b", "y = ~(a & b)",
                 "y = (a & ~b) | (~a & b)"]
    layouts = []
    for index, equation in enumerate(functions):
        spec = LogicSpec.from_equations(f"f{index}", equation)
        layout = stdcell_layout(spec, library, {"seed": index})
        layouts.append(env.install_data(S.STD_CELL_LAYOUT, layout,
                                        name=f"variant-{index}"))

    # serial execution
    serial_flow = build_flow(env, extractor, layouts)
    started = time.perf_counter()
    serial_report = env.run(serial_flow)
    serial_time = time.perf_counter() - started

    # parallel execution on a 4-machine pool
    parallel_flow = build_flow(env, extractor, layouts)
    pool = MachinePool.local(BRANCHES)
    executor = env.parallel_executor(pool=pool)
    started = time.perf_counter()
    parallel_report = executor.execute(parallel_flow)
    parallel_time = time.perf_counter() - started

    print(f"{BRANCHES} disjoint branches, "
          f"{TOOL_LATENCY * 1000:.0f} ms per tool run")
    print(f"  serial:   {serial_time * 1000:7.1f} ms "
          f"({serial_report.runs} tool runs)")
    print(f"  parallel: {parallel_time * 1000:7.1f} ms "
          f"({parallel_report.runs} tool runs, "
          f"{len(pool)} machines)")
    print(f"  speedup:  {serial_time / parallel_time:5.2f}x")
    for machine in pool.machines():
        print(f"    {machine.name}: {machine.executed_branches} branch, "
              f"{machine.executed_invocations} invocations")
    # every created instance remembers which machine made it
    sample = env.db.browse(S.EXTRACTION_STATISTICS)[-1]
    print(f"  e.g. {sample.instance_id} made on machine "
          f"{sample.annotation_map().get('machine')!r}")


if __name__ == "__main__":
    main()
