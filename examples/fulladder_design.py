#!/usr/bin/env python3
"""Full-adder design: the complete methodology, with versioning.

A realistic design campaign through the dynamically defined flow manager
(the Fig. 9 browser even lists a "CMOS Full adder" by user *sutton*):

1. capture the logic view of a full adder;
2. implement it with standard cells (synthesis flow, Fig. 8a);
3. extract and verify layout vs. netlist (verification flow, Fig. 8b);
4. compile a COSMOS-style simulator for the extracted netlist (Fig. 2)
   and measure performance;
5. *edit* the device models (a new version appears) — the framework
   detects the stale performance and retraces automatically;
6. tune the circuit with a statistical optimizer that takes the
   simulator as a data input.

Run:  python3 examples/fulladder_design.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.history import backward_trace, lineage
from repro.schema import standard as S
from repro.tools import (default_models, edit_session, exhaustive,
                         install_standard_tools, plot, tech_map)
from repro.tools.logic import LogicSpec
from repro.views import synthesize_physical, verify_correspondence


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="sutton")
    tools = install_standard_tools(env)

    # -- 1. the logic view -------------------------------------------------
    adder = LogicSpec.from_equations(
        "fulladder",
        "sum = (a & ~b & ~cin) | (~a & b & ~cin) | (~a & ~b & cin) "
        "| (a & b & cin)",
        "cout = (a & b) | (a & cin) | (b & cin)")
    logic = env.install_data(S.EDITED_LOGIC_SPEC, adder,
                             name="fa-logic", comment="CMOS Full adder")
    gates = env.install_data(S.EDITED_NETLIST, tech_map(adder),
                             name="fa-gates")
    models = env.install_data(S.DEVICE_MODELS, default_models(),
                              name="tech-a")
    stimuli = env.install_data(
        S.STIMULI, exhaustive(("a", "b", "cin"), name="fa-vec"),
        name="fa-vec")

    # -- 2. synthesis flow: transistor view -> physical view ---------------
    pspec = env.install_data(S.PLACEMENT_SPEC,
                             {"row_width": 6, "seed": 11, "moves": 500},
                             name="fa-place")
    placed = synthesize_physical(env, gates, pspec, tools[S.PLACER])
    layout = env.db.data(placed)
    print(f"placed layout: {layout.cell_count} cells, "
          f"wirelength {layout.wirelength()}, area {layout.area()}")

    # -- 3. verification flow: physical view corresponds? ------------------
    verification = verify_correspondence(
        env, gates, placed, tools[S.VERIFIER], tools[S.EXTRACTOR])
    result = env.db.data(verification)
    print(f"LVS physical-vs-transistor view: "
          f"{'MATCH' if result.matched else 'MISMATCH'}")

    # -- 4. COSMOS: compile a simulator for the extracted netlist ---------
    extracted = env.db.latest(S.EXTRACTED_NETLIST)
    flow, perf_goal = env.goal_flow(S.PERFORMANCE, "fa-sim")
    flow.expand(perf_goal)
    sim_node = flow.sole_node_of_type(S.SIMULATOR)
    flow.specialize(sim_node, S.COMPILED_SIMULATOR)
    flow.expand(sim_node, reuse={})
    flow.expand(flow.sole_node_of_type(S.CIRCUIT))
    for node in flow.nodes_of_type(S.NETLIST):
        if not node.is_bound:
            flow.bind(node, extracted.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI), stimuli.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIM_COMPILER),
              tools[S.SIM_COMPILER].instance_id)
    env.run(flow)
    perf_id = perf_goal.produced[0]
    report = env.db.data(perf_id)
    print(plot(report).text)

    # -- 5. edit the device models: consistency maintenance ----------------
    session = edit_session(env, S.DEVICE_MODEL_EDITOR, [
        {"op": "set", "field": "stage_delay_ns", "value": 0.8},
        {"op": "rename", "name": "tech-b"},
    ], name="process-shrink")
    edit_flow, models_goal = env.goal_flow(S.DEVICE_MODELS, "fa-models2")
    edit_flow.expand(models_goal, include_optional=["previous"])
    previous_node = edit_flow.graph.data_suppliers(
        models_goal.node_id)["previous"]
    edit_flow.bind(edit_flow.node(previous_node), models.instance_id)
    edit_flow.bind(edit_flow.sole_node_of_type(S.DEVICE_MODEL_EDITOR),
                   session.instance_id)
    env.run(edit_flow)
    new_models = models_goal.produced[0]
    print(f"\ndevice models edited: "
          f"{' -> '.join(lineage(env.db, new_models))}")
    print(f"performance {perf_id} stale now? {env.is_stale(perf_id)}")
    retrace_report = env.retrace(perf_id)
    fresh_perf = env.db.browse(S.PERFORMANCE)[-1]
    print(f"automatic retrace created {list(retrace_report.created)}")
    print(f"new worst delay: "
          f"{env.db.data(fresh_perf).worst_delay_ns:.2f} ns "
          f"(was {report.worst_delay_ns:.2f} ns)")

    # -- 6. optimization: the simulator passed as DATA ---------------------
    opt_flow, opt_goal = env.goal_flow(S.OPTIMIZED_NETLIST, "fa-opt")
    opt_flow.expand(opt_goal)
    opt_flow.specialize(opt_flow.sole_node_of_type(S.OPTIMIZER),
                        S.ANNEALING_OPTIMIZER)
    circuit_node = opt_flow.sole_node_of_type(S.CIRCUIT)
    opt_flow.expand(circuit_node)
    input_netlist = next(n for n in opt_flow.nodes_of_type(S.NETLIST)
                         if n.node_id != opt_goal.node_id)
    opt_flow.bind(input_netlist, extracted.instance_id)
    opt_flow.bind(opt_flow.sole_node_of_type(S.DEVICE_MODELS),
                  new_models)
    opt_flow.bind(opt_flow.sole_node_of_type(S.OPTIMIZER),
                  tools[S.ANNEALING_OPTIMIZER].instance_id)
    opt_flow.bind(opt_flow.nodes_of_type(S.SIMULATOR)[0],
                  tools[S.SIMULATOR].instance_id)
    spec_instance = env.install_data(S.OPTIMIZATION_SPEC,
                                     {"iterations": 60, "seed": 9},
                                     name="fa-optspec")
    opt_flow.bind(opt_flow.sole_node_of_type(S.OPTIMIZATION_SPEC),
                  spec_instance.instance_id)
    env.run(opt_flow)
    tuned = env.db.data(opt_goal.produced[0])
    original = env.db.data(extracted)
    print(f"\noptimizer tuned total width "
          f"{original.total_width():.1f} -> {tuned.total_width():.1f}")

    # -- the full derivation story, one query away --------------------------
    print("\nderivation history of the optimized netlist:")
    print(backward_trace(env.db, opt_goal.produced[0]).render())


if __name__ == "__main__":
    main()
