#!/usr/bin/env python3
"""Design-space exploration through instance-set fan-out.

Section 4.1: *"it is possible to select more than one instance, or a set
of instances — causing the task to be run for each data instance
specified."*  This demo explores a full adder across three process
corners (device-model versions made by editing sessions, so the corner
lineage is in the history) times two stimulus regimes, in ONE flow with
multi-instance selections: 3 x 2 = 6 performances from a single Run.

It also exercises the SimArgs optional input — simulator options as an
entity type (section 3.3).

Run:  python3 examples/design_space_exploration.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.history import template_query
from repro.schema import standard as S
from repro.tools import (DeviceModels, edit_session, exhaustive,
                         install_standard_tools, tech_map, walking_ones)
from repro.tools.logic import LogicSpec


def make_corner(env, base_models, name, stage_delay):
    """One device-model corner as an editing-session version."""
    session = edit_session(env, S.DEVICE_MODEL_EDITOR, [
        {"op": "set", "field": "stage_delay_ns", "value": stage_delay},
        {"op": "rename", "name": name},
    ], name=f"corner-{name}")
    flow, goal = env.goal_flow(S.DEVICE_MODELS, f"corner-{name}")
    flow.expand(goal, include_optional=["previous"])
    previous = flow.graph.data_suppliers(goal.node_id)["previous"]
    flow.bind(flow.node(previous), base_models.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODEL_EDITOR),
              session.instance_id)
    env.run(flow)
    return goal.produced[0]


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="explorer")
    tools = install_standard_tools(env)

    adder = LogicSpec.from_equations(
        "fa", "cout = (a & b) | (a & cin) | (b & cin)")
    netlist = env.install_data(S.EDITED_NETLIST, tech_map(adder),
                               name="fa-carry")
    base = env.install_data(S.DEVICE_MODELS, DeviceModels(name="typ"),
                            name="typ")
    corners = [base.instance_id]
    corners.append(make_corner(env, base, "fast", 0.7))
    corners.append(make_corner(env, base, "slow", 2.0))

    stimuli_sets = [
        env.install_data(S.STIMULI,
                         exhaustive(("a", "b", "cin"), name="full"),
                         name="full-sweep"),
        env.install_data(S.STIMULI,
                         walking_ones(("a", "b", "cin"), name="walk"),
                         name="walking-ones"),
    ]
    sim_args = env.install_data(S.SIM_ARGS, {"limit_vectors": 4},
                                name="first-four-only")

    # ONE flow; the corner and stimuli nodes carry instance SETS
    flow, goal = env.goal_flow(S.PERFORMANCE, "explore")
    flow.expand(goal, include_optional=["args"])
    flow.expand(flow.sole_node_of_type(S.CIRCUIT))
    flow.bind(flow.sole_node_of_type(S.NETLIST), netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS), *corners)
    flow.bind(flow.sole_node_of_type(S.STIMULI),
              *[s.instance_id for s in stimuli_sets])
    flow.bind(flow.sole_node_of_type(S.SIM_ARGS), sim_args.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIMULATOR),
              tools[S.SIMULATOR].instance_id)
    report = env.run(flow)
    print(f"one Run: {report.runs} tool invocations, "
          f"{len(goal.produced)} performances\n")

    # the exploration table, reconstructed from derivation records
    print(f"{'corner':>8} {'stimuli':>14} {'vectors':>8} "
          f"{'worst ns':>9} {'energy fJ':>10}")
    for perf_id in goal.produced:
        instance = env.db.get(perf_id)
        inputs = instance.derivation.input_map()
        circuit = env.db.get(inputs["circuit"])
        models_id = circuit.derivation.input_map()["models"]
        corner = env.db.data(models_id).name
        stim = env.db.get(inputs["stimuli"])
        perf = env.db.data(perf_id)
        print(f"{corner:>8} {stim.name:>14} {perf.vector_count:>8} "
              f"{perf.worst_delay_ns:>9.2f} {perf.total_energy_fj:>10.1f}")

    # history question: which performances used the 'fast' corner?
    fast_id = corners[1]
    template = env.new_flow("q")
    perf_node = template.place(S.PERFORMANCE)
    circuit_node = template.graph.add_node(S.CIRCUIT)
    models_node = template.graph.add_node(S.DEVICE_MODELS)
    template.connect(perf_node, circuit_node, role="circuit")
    template.connect(circuit_node, models_node, role="models")
    models_node.bind(fast_id)
    matches = template_query(env.db, template.graph, perf_node.node_id)
    print(f"\nperformances simulated on the 'fast' corner "
          f"(template query): {[m.instance_id for m in matches]}")


if __name__ == "__main__":
    main()
