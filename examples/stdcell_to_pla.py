#!/usr/bin/env python3
"""Re-implementing a circuit: standard cells -> PLA, via the history.

The Chiueh & Katz scenario the paper cites in section 2: *"if a designer
implemented a logic circuit using standard cells and then wished to
re-implement the same circuit using a PLA, he or she could reposition a
cursor to the appropriate point ... and create a new activity branch
using a 'create PLA' task."*

With dynamically defined flows, no cursor gymnastics are needed: the
designer starts *data-based* from the logic spec already in the history
and forward-expands a PLA-layout task above it.  Afterwards the history
shows both implementation branches hanging off the same logic instance,
and a verification flow proves them equivalent.

Run:  python3 examples/stdcell_to_pla.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.history import dependents_of_type, forward_trace
from repro.schema import standard as S
from repro.tools import extract, install_standard_tools, standard_library
from repro.tools import truth_table
from repro.tools.logic import LogicSpec


def implement(env, tools, logic, goal_type, generator_type, name):
    """One implementation branch: logic -> layout via a generator."""
    flow, goal = env.goal_flow(goal_type, name)
    flow.expand(goal)
    flow.bind(flow.sole_node_of_type(S.LOGIC_SPEC), logic.instance_id)
    flow.bind(flow.sole_node_of_type(generator_type),
              tools[generator_type].instance_id)
    env.run(flow)
    return env.db.get(goal.produced[0])


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="designer")
    tools = install_standard_tools(env)
    library = standard_library()

    # the logic view of a 2-of-3 majority voter
    spec = LogicSpec.from_equations(
        "majority", "y = (a & b) | (a & c) | (b & c)")
    logic = env.install_data(S.EDITED_LOGIC_SPEC, spec, name="maj-logic")

    # first implementation: standard cells (goal-based)
    std = implement(env, tools, logic, S.STD_CELL_LAYOUT,
                    S.STD_CELL_GENERATOR, "impl-stdcell")
    # the re-implementation branch: PLA, from the same logic instance
    pla = implement(env, tools, logic, S.PLA_LAYOUT, S.PLA_GENERATOR,
                    "impl-pla")

    std_layout = env.db.data(std)
    pla_layout_data = env.db.data(pla)
    print("two implementations of the same logic:")
    print(f"  stdcell: {std_layout.cell_count:3d} cells, "
          f"area {std_layout.area(library):4d}, "
          f"wirelength {std_layout.wirelength():4d}")
    print(f"  PLA:     {pla_layout_data.cell_count:3d} cells, "
          f"area {pla_layout_data.area(library):4d}, "
          f"wirelength {pla_layout_data.wirelength():4d}")

    # forward-chain from the logic: both branches are visible (Use deps)
    layouts = dependents_of_type(env.db, logic.instance_id, S.LAYOUT)
    print(f"\nlayouts derived from {logic.instance_id}: "
          f"{[i.instance_id for i in layouts]}")

    # prove the implementations equivalent through extraction
    tables = {}
    for instance in (std, pla):
        netlist, stats = extract(env.db.data(instance), library)
        tables[instance.instance_id] = truth_table(netlist)
        print(f"  {instance.instance_id}: "
              f"{stats.transistor_count} transistors after extraction")
    values = list(tables.values())
    print(f"functionally equivalent: {values[0] == values[1]}")

    # the forward trace: the branch structure, tools included
    print("\nforward trace from the logic spec:")
    print(forward_trace(env.db, logic.instance_id).render())


if __name__ == "__main__":
    main()
