#!/usr/bin/env python3
"""A sequential design: 2-bit synchronous counter through the framework.

Demonstrates the switch-level simulator's charge retention (master-slave
flip-flops built from dynamic latches hold state between clock phases)
inside an ordinary simulate-performance flow:

    q0' = ~q0          (toggle)
    q1' = q1 ^ q0      (xor)

The counter is assembled with the circuit editor (an edit session), the
next-state logic uses the xor2 cell, and the clocked stimulus drives 16
half-cycles; the waveform shows the 00 -> 01 -> 10 -> 11 count sequence.

Run:  python3 examples/sequential_counter.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.schema import standard as S
from repro.tools import (default_models, edit_session,
                         install_standard_tools, plot)
from repro.tools.stimuli import from_table


def counter_script():
    """Edit script building the counter netlist."""
    return [
        {"op": "new", "name": "counter2", "inputs": ["clk", "rst"],
         "outputs": ["q0", "q1"]},
        # resettable storage: muxes force next-state to 0 while rst=1
        # next0 = ~q0 & ~rst ; next1 = (q1 ^ q0) & ~rst
        {"op": "add_instance", "name": "rinv", "cell": "inv",
         "connections": {"a": "rst", "y": "rstb"}},
        {"op": "add_instance", "name": "tinv", "cell": "inv",
         "connections": {"a": "q0", "y": "q0b"}},
        {"op": "add_instance", "name": "tand", "cell": "nand2",
         "connections": {"a": "q0b", "b": "rstb", "y": "n0b"}},
        {"op": "add_instance", "name": "tand2", "cell": "inv",
         "connections": {"a": "n0b", "y": "next0"}},
        {"op": "add_instance", "name": "x1", "cell": "xor2",
         "connections": {"a": "q1", "b": "q0", "y": "t1"}},
        {"op": "add_instance", "name": "gand", "cell": "nand2",
         "connections": {"a": "t1", "b": "rstb", "y": "n1b"}},
        {"op": "add_instance", "name": "gand2", "cell": "inv",
         "connections": {"a": "n1b", "y": "next1"}},
        {"op": "add_instance", "name": "ff0", "cell": "dff",
         "connections": {"d": "next0", "clk": "clk", "q": "q0"}},
        {"op": "add_instance", "name": "ff1", "cell": "dff",
         "connections": {"d": "next1", "clk": "clk", "q": "q1"}},
    ]


def clocked_vectors(cycles: int):
    """Reset pulse, then free-running count: one vector per half cycle."""
    rows = [{"clk": 0, "rst": 1}, {"clk": 1, "rst": 1}]  # sync reset
    for _ in range(cycles):
        rows.append({"clk": 0, "rst": 0})
        rows.append({"clk": 1, "rst": 0})
    return from_table(("clk", "rst"), rows, name="clocked")


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="sequential")
    tools = install_standard_tools(env)

    session = edit_session(env, S.CIRCUIT_EDITOR, counter_script(),
                           name="counter-editor")
    edit_flow, netlist_goal = env.goal_flow(S.EDITED_NETLIST, "build")
    edit_flow.expand(netlist_goal)
    edit_flow.bind(edit_flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                   session.instance_id)
    env.run(edit_flow)
    netlist_id = netlist_goal.produced[0]

    models = env.install_data(S.DEVICE_MODELS, default_models(),
                              name="tech")
    stimuli = env.install_data(S.STIMULI, clocked_vectors(6),
                               name="clock-16")

    flow, goal = env.goal_flow(S.PERFORMANCE, "count")
    flow.expand(goal)
    flow.expand(flow.sole_node_of_type(S.CIRCUIT))
    flow.bind(flow.sole_node_of_type(S.NETLIST), netlist_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI), stimuli.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIMULATOR),
              tools[S.SIMULATOR].instance_id)
    env.run(flow)
    report = env.db.data(goal.produced[0])
    print(plot(report).text)

    # decode the count at each rising edge (odd vectors, post-reset)
    q0 = report.waveform("q0")
    q1 = report.waveform("q1")
    counts = []
    for index in range(3, report.vector_count, 2):
        counts.append(f"{q1[index]}{q0[index]}")
    print(f"\ncount sequence at rising edges: {' -> '.join(counts)}")
    assert counts[:4] == ["01", "10", "11", "00"], counts


if __name__ == "__main__":
    main()
