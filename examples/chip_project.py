#!/usr/bin/env python3
"""A small chip project on the Design Process Level.

Combines the extension subsystems with the paper's core:

* a design hierarchy (chip -> alu / control) with per-cell goals,
  evaluated live against the history database (Minerva's role in the
  Odyssey framework, referenced in section 3.1);
* goal-driven work: the process manager hands back dynamically defined
  flows for whatever is still open, the designer binds and runs them;
* consistency: an upstream logic edit flips a goal from ACHIEVED to
  STALE, and the manager's next_tasks() returns the retrace plan;
* invocation-level scheduling of a connected flow on two machines.

Run:  python3 examples/chip_project.py
"""

from repro import DesignEnvironment, odyssey_schema
from repro.execution import DurationModel, plan_schedule
from repro.process import (DesignObject, DesignProcessManager, Goal,
                           GoalStatus, verified_predicate)
from repro.schema import standard as S
from repro.tools import (default_models, edit_session, exhaustive,
                         install_standard_tools, tech_map)
from repro.tools.logic import LogicSpec
from repro.views import synthesize_physical, verify_correspondence


def achieve_performance(env, tools, netlist, models, stimuli):
    flow, goal = env.goal_flow(S.PERFORMANCE)
    flow.expand(goal)
    flow.expand(flow.sole_node_of_type(S.CIRCUIT))
    flow.bind(flow.sole_node_of_type(S.NETLIST), netlist.instance_id)
    flow.bind(flow.sole_node_of_type(S.DEVICE_MODELS),
              models.instance_id)
    flow.bind(flow.sole_node_of_type(S.STIMULI), stimuli.instance_id)
    flow.bind(flow.sole_node_of_type(S.SIMULATOR),
              tools[S.SIMULATOR].instance_id)
    report = env.run(flow)
    return report.created_of_node(goal.node_id)[0]


def main() -> None:
    env = DesignEnvironment(odyssey_schema(), user="jacome")
    tools = install_standard_tools(env)

    # -- hierarchy and goals ------------------------------------------------
    chip = DesignObject("chip", owner="director")
    alu = chip.add_child("alu", owner="sutton")
    control = chip.add_child("control", owner="brockman")
    manager = DesignProcessManager(env, chip)
    for cell in (alu, control):
        manager.add_goal(cell, Goal("netlist", S.NETLIST,
                                    require_fresh=False))
        manager.add_goal(cell, Goal("physical", S.LAYOUT))
        manager.add_goal(cell, Goal("verified", S.VERIFICATION,
                                    predicate=verified_predicate))
        manager.add_goal(cell, Goal("performance", S.PERFORMANCE))
    print(manager.report())

    # -- work the alu until its goals close ---------------------------------
    models = env.install_data(S.DEVICE_MODELS, default_models(),
                              name="tech")
    alu_spec = LogicSpec.from_equations("alu-slice",
                                        "y = (a & b) | (a & c)")
    alu_netlist = env.install_data(S.EDITED_NETLIST, tech_map(alu_spec),
                                   name="alu-net")
    alu.attach(alu_netlist.instance_id)
    placement = env.install_data(S.PLACEMENT_SPEC,
                                 {"seed": 5, "moves": 200}, name="ps")
    placed = synthesize_physical(env, alu_netlist, placement,
                                 tools[S.PLACER])
    alu.attach(placed.instance_id)
    verification = verify_correspondence(env, alu_netlist, placed,
                                         tools[S.VERIFIER],
                                         tools[S.EXTRACTOR])
    alu.attach(verification.instance_id)
    stimuli = env.install_data(S.STIMULI,
                               exhaustive(("a", "b", "c"), name="v"),
                               name="v")
    perf_id = achieve_performance(env, tools, alu_netlist, models,
                                  stimuli)
    alu.attach(perf_id)
    print()
    print(manager.report())
    print(f"chip progress: {manager.progress().fraction:.0%}")

    # -- consistency: an edit makes the performance goal stale --------------
    session = edit_session(env, S.CIRCUIT_EDITOR, [
        {"op": "rename", "name": "alu-net-v2"}], name="tweak")
    edit_flow, edit_goal = env.goal_flow(S.EDITED_NETLIST)
    edit_flow.expand(edit_goal, include_optional=["previous"])
    previous = edit_flow.graph.data_suppliers(edit_goal.node_id)[
        "previous"]
    edit_flow.bind(edit_flow.node(previous), alu_netlist.instance_id)
    edit_flow.bind(edit_flow.sole_node_of_type(S.CIRCUIT_EDITOR),
                   session.instance_id)
    env.run(edit_flow)
    print("\nafter editing the alu netlist:")
    stale = [r for r in manager.status()
             if r.status is GoalStatus.STALE]
    for report in stale:
        print(f"  STALE: {report.design} / {report.goal.name} "
              f"({report.instance_id})")
    # the manager hands back retrace plans for the stale goals
    for report, flow in manager.next_tasks("alu"):
        if report.status is GoalStatus.STALE:
            schedule = plan_schedule(flow, 2,
                                     DurationModel(default=0.01))
            print(f"  retrace plan for {report.goal.name}: "
                  f"{len(flow.nodes())} nodes, predicted speedup on 2 "
                  f"machines {schedule.predicted_speedup:.2f}x")
            execution = env.executor().execute(flow)
            for instance_id in execution.created:
                alu.attach(instance_id)  # fresh artifacts replace stale
    print()
    print(manager.report())
    print(f"chip progress: {manager.progress().fraction:.0%} "
          "(control cell still untouched)")


if __name__ == "__main__":
    main()
