"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
uses this shim instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
