"""The task schema: construction rules for flows and data schema for history.

Section 3.1 of the paper: *"A task schema is a graph that specifies the
dependencies between design entities (both tools and data).  The dependency
relationships described in a task schema serve two purposes.  First, they
state the construction rules by which tasks (tool independent design
functions) can be built.  Second, they specify the data schema for a
database that stores the design derivation history."*

:class:`TaskSchema` therefore answers two families of questions:

* construction — what tool and what data inputs produce an entity of a given
  type (:meth:`TaskSchema.construction`), which subtypes a designer may
  *specialize* to (:meth:`TaskSchema.subtypes_of`), and which entities could
  *consume* a given entity (:meth:`TaskSchema.consumers_of`, used for
  forward expansion of a flow);
* validity — whether a set of entity types and dependency arcs forms a legal
  schema (:meth:`TaskSchema.validate`), enforcing the paper's rules: at most
  one functional dependency per entity, composed entities have no functional
  dependency, functional dependencies point at tools, and every dependency
  cycle is broken by an optional arc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import DependencyError, SubtypeError, UnknownEntityError
from .dependency import Dependency
from .entity import EntityType


@dataclass(frozen=True)
class ConstructionMethod:
    """How instances of one entity type are created.

    A *primitive task* in the paper: the tool given by the entity's
    functional dependency plus the data inputs given by its data
    dependencies.  ``tool`` is ``None`` for composed entities, whose
    implicit composition function groups the inputs instead of running a
    tool.
    """

    produced: str
    tool: str | None
    inputs: tuple[Dependency, ...]

    @property
    def required_inputs(self) -> tuple[Dependency, ...]:
        """Data dependencies that must be present in a flow."""
        return tuple(dep for dep in self.inputs if not dep.optional)

    @property
    def optional_inputs(self) -> tuple[Dependency, ...]:
        """Optional (cycle-breaking) data dependencies."""
        return tuple(dep for dep in self.inputs if dep.optional)

    @property
    def is_composed(self) -> bool:
        return self.tool is None

    def input_role(self, role: str) -> Dependency:
        for dep in self.inputs:
            if dep.role == role:
                return dep
        raise DependencyError(
            f"entity {self.produced!r} has no input role {role!r}"
        )


class TaskSchema:
    """A validated graph of entity types and dependencies.

    The schema is mutable while being built (via :meth:`add_entity` and
    :meth:`add_dependency` or the :class:`~repro.schema.builder.SchemaBuilder`)
    and is checked by :meth:`validate`, which all higher layers call before
    trusting it.
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._entities: dict[str, EntityType] = {}
        self._deps: list[Dependency] = []
        self._children: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityType) -> EntityType:
        """Add an entity type; names are unique within the schema."""
        if entity.name in self._entities:
            raise SubtypeError(f"duplicate entity type {entity.name!r}")
        self._entities[entity.name] = entity
        if entity.parent is not None:
            self._children.setdefault(entity.parent, []).append(entity.name)
        return entity

    def add_entities(self, entities: Iterable[EntityType]) -> None:
        for entity in entities:
            self.add_entity(entity)

    def add_dependency(self, dep: Dependency) -> Dependency:
        """Add a dependency arc between two declared entity types."""
        for endpoint in (dep.source, dep.target):
            if endpoint not in self._entities:
                raise UnknownEntityError(endpoint)
        if dep.is_functional:
            existing = [d for d in self._deps
                        if d.source == dep.source and d.is_functional]
            if existing:
                raise DependencyError(
                    f"entity {dep.source!r} already has a functional "
                    f"dependency on {existing[0].target!r}; at most one is "
                    "allowed"
                )
            if not self._entities[dep.target].is_tool:
                raise DependencyError(
                    f"{dep}: functional dependencies must point at a tool "
                    "entity"
                )
            if self._entities[dep.source].composed:
                raise DependencyError(
                    f"{dep}: composed entities have no functional dependency"
                )
        else:
            same_role = [d for d in self._deps
                         if d.source == dep.source and d.is_data
                         and d.role == dep.role]
            if same_role:
                raise DependencyError(
                    f"{dep}: role {dep.role!r} already used by "
                    f"{same_role[0]}"
                )
        self._deps.append(dep)
        return dep

    def add_dependencies(self, deps: Iterable[Dependency]) -> None:
        for dep in deps:
            self.add_dependency(dep)

    # ------------------------------------------------------------------
    # basic lookups
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def entity(self, name: str) -> EntityType:
        try:
            return self._entities[name]
        except KeyError:
            raise UnknownEntityError(name) from None

    def entities(self) -> tuple[EntityType, ...]:
        return tuple(self._entities.values())

    def entity_names(self) -> tuple[str, ...]:
        return tuple(self._entities)

    def dependencies(self) -> tuple[Dependency, ...]:
        return tuple(self._deps)

    def tools(self) -> tuple[EntityType, ...]:
        """All tool entity types (the paper's tool-catalog)."""
        return tuple(e for e in self._entities.values() if e.is_tool)

    def data_entities(self) -> tuple[EntityType, ...]:
        """All data entity types (the data side of the entity-catalog)."""
        return tuple(e for e in self._entities.values() if e.is_data)

    # ------------------------------------------------------------------
    # subtype relation
    # ------------------------------------------------------------------
    def subtypes_of(self, name: str) -> tuple[str, ...]:
        """Direct subtypes of an entity type (specialization choices)."""
        self.entity(name)
        return tuple(self._children.get(name, ()))

    def descendants_of(self, name: str) -> tuple[str, ...]:
        """All transitive subtypes, in breadth-first order."""
        self.entity(name)
        out: list[str] = []
        frontier = list(self._children.get(name, ()))
        while frontier:
            child = frontier.pop(0)
            out.append(child)
            frontier.extend(self._children.get(child, ()))
        return tuple(out)

    def ancestors_of(self, name: str) -> tuple[str, ...]:
        """Chain of supertypes from direct parent to the root."""
        entity = self.entity(name)
        out: list[str] = []
        seen = {name}
        while entity.parent is not None:
            if entity.parent in seen:
                raise SubtypeError(f"subtype cycle through {entity.parent!r}")
            seen.add(entity.parent)
            out.append(entity.parent)
            entity = self.entity(entity.parent)
        return tuple(out)

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """True if ``name`` equals ``ancestor`` or specializes it."""
        return name == ancestor or ancestor in self.ancestors_of(name)

    def root_of(self, name: str) -> str:
        """The top of the subtype chain containing ``name``."""
        ancestors = self.ancestors_of(name)
        return ancestors[-1] if ancestors else name

    # ------------------------------------------------------------------
    # effective dependencies and construction methods
    # ------------------------------------------------------------------
    def own_dependencies(self, name: str) -> tuple[Dependency, ...]:
        """Dependencies declared directly on an entity type."""
        self.entity(name)
        return tuple(d for d in self._deps if d.source == name)

    def effective_dependencies(self, name: str) -> tuple[Dependency, ...]:
        """Dependencies of a type including those inherited from supertypes.

        A functional dependency declared on a subtype *replaces* an
        inherited one (it is a different construction method); a data
        dependency with the same role as an inherited one overrides it;
        other inherited data dependencies accumulate.
        """
        chain = [name, *self.ancestors_of(name)]
        functional_dep: Dependency | None = None
        data_by_role: dict[str, Dependency] = {}
        # Walk from the root down so more-derived declarations win.
        for type_name in reversed(chain):
            own = self.own_dependencies(type_name)
            own_functional = [d for d in own if d.is_functional]
            if own_functional:
                functional_dep = own_functional[0]
            for dep in own:
                if dep.is_data:
                    data_by_role[dep.role] = dep
        deps: list[Dependency] = []
        if functional_dep is not None:
            deps.append(functional_dep)
        deps.extend(data_by_role.values())
        return tuple(deps)

    def functional_dependency(self, name: str) -> Dependency | None:
        """The (possibly inherited) functional dependency of a type."""
        for dep in self.effective_dependencies(name):
            if dep.is_functional:
                return dep
        return None

    def data_dependencies(self, name: str) -> tuple[Dependency, ...]:
        """The (possibly inherited) data dependencies of a type."""
        return tuple(d for d in self.effective_dependencies(name)
                     if d.is_data)

    def construction(self, name: str) -> ConstructionMethod | None:
        """The primitive task that produces entities of this type.

        Returns ``None`` for *source* entities (no dependencies at all:
        they enter the design from outside, like raw Stimuli).  Composed
        entities return a method with ``tool is None``.  Abstract entities
        (no construction of their own but constructible subtypes) also
        return ``None`` — the designer must specialize first.
        """
        entity = self.entity(name)
        functional_dep = self.functional_dependency(name)
        inputs = self.data_dependencies(name)
        if functional_dep is not None:
            return ConstructionMethod(name, functional_dep.target, inputs)
        if entity.composed or self._entity_is_composed_via_parent(name):
            return ConstructionMethod(name, None, inputs)
        return None

    def _entity_is_composed_via_parent(self, name: str) -> bool:
        entity = self.entity(name)
        if entity.composed:
            return True
        return any(self.entity(a).composed for a in self.ancestors_of(name))

    def is_abstract(self, name: str) -> bool:
        """True if the type cannot be constructed without specialization.

        An abstract type has no construction method of its own (and none
        inherited) but at least one descendant that has one.
        """
        if self.construction(name) is not None:
            return False
        return any(self.construction(d) is not None
                   for d in self.descendants_of(name))

    def is_source(self, name: str) -> bool:
        """True if instances enter the design from outside any flow."""
        return (self.construction(name) is None
                and not self.is_abstract(name))

    def constructible_specializations(self, name: str) -> tuple[str, ...]:
        """Descendants of an abstract type that have a construction method."""
        return tuple(d for d in self.descendants_of(name)
                     if self.construction(d) is not None)

    # ------------------------------------------------------------------
    # navigation used by flow expansion
    # ------------------------------------------------------------------
    def consumers_of(self, name: str) -> tuple[Dependency, ...]:
        """Dependencies whose target is ``name`` or a supertype of it.

        Used by *forward* expansion: given a node of type ``name``, which
        entity types could be produced from it?  A dependency on a
        supertype accepts a subtype instance (an Extracted Netlist may be
        used wherever a Netlist is required).
        """
        acceptable = {name, *self.ancestors_of(name)}
        return tuple(d for d in self._deps if d.target in acceptable)

    def producible_from(self, name: str) -> tuple[str, ...]:
        """Entity types that can take a ``name`` entity as input or tool."""
        seen: list[str] = []
        for dep in self.consumers_of(name):
            if dep.source not in seen:
                seen.append(dep.source)
        return tuple(seen)

    def outputs_of_tool(self, tool_name: str) -> tuple[str, ...]:
        """Entity types functionally dependent on a tool type.

        A tool producing several of these from the same inputs is the
        paper's 'multiple outputs from the same subtask' (Fig. 5).
        """
        entity = self.entity(tool_name)
        if not entity.is_tool:
            raise DependencyError(f"{tool_name!r} is not a tool entity")
        acceptable = {tool_name, *self.descendants_of(tool_name)}
        return tuple(d.source for d in self._deps
                     if d.is_functional and d.target in acceptable)

    def editing_entities(self) -> tuple[str, ...]:
        """Entity types whose construction edits data of their own family.

        Section 4.2: *"Versioning is closely associated with editing tasks
        which, in a task schema, are characterized by having a data
        dependency whose source and target are of the same entity type."*
        Subtype families count: *Edited Layout --d--> Layout* is an edit.
        """
        out: list[str] = []
        for dep in self._deps:
            if not dep.is_data:
                continue
            if self.root_of(dep.source) == self.root_of(dep.target):
                if dep.source not in out:
                    out.append(dep.source)
        return tuple(out)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every schema rule; raise :class:`SchemaError` on violation."""
        self._validate_subtype_relation()
        self._validate_dependency_endpoints()
        self._validate_functional_rules()
        self._validate_acyclicity()

    def _validate_subtype_relation(self) -> None:
        for entity in self._entities.values():
            if entity.parent is None:
                continue
            if entity.parent not in self._entities:
                raise SubtypeError(
                    f"entity {entity.name!r} has unknown parent "
                    f"{entity.parent!r}"
                )
            parent = self._entities[entity.parent]
            if parent.kind is not entity.kind:
                raise SubtypeError(
                    f"entity {entity.name!r} ({entity.kind}) cannot "
                    f"specialize {parent.name!r} ({parent.kind})"
                )
            # ancestors_of raises on cycles
            self.ancestors_of(entity.name)

    def _validate_dependency_endpoints(self) -> None:
        for dep in self._deps:
            for endpoint in (dep.source, dep.target):
                if endpoint not in self._entities:
                    raise UnknownEntityError(endpoint)

    def _validate_functional_rules(self) -> None:
        for entity in self._entities.values():
            own_functional = [d for d in self.own_dependencies(entity.name)
                              if d.is_functional]
            if len(own_functional) > 1:
                raise DependencyError(
                    f"entity {entity.name!r} declares "
                    f"{len(own_functional)} functional dependencies"
                )
            if entity.composed and self.functional_dependency(entity.name):
                raise DependencyError(
                    f"composed entity {entity.name!r} must not have a "
                    "functional dependency"
                )
            for dep in own_functional:
                if not self._entities[dep.target].is_tool:
                    raise DependencyError(
                        f"{dep}: functional target must be a tool"
                    )

    def _validate_acyclicity(self) -> None:
        """Every cycle must contain at least one optional dependency.

        Equivalently: the subgraph of *mandatory* effective dependencies
        must be acyclic.  (Section 3.1: loops 'are broken by considering
        the data dependency as optional'.)
        """
        adjacency: dict[str, list[str]] = {n: [] for n in self._entities}
        for name in self._entities:
            for dep in self.effective_dependencies(name):
                if dep.is_data and dep.optional:
                    continue
                adjacency[name].append(dep.target)
        state: dict[str, int] = {}

        def visit(node: str, stack: list[str]) -> None:
            state[node] = 1
            stack.append(node)
            for succ in adjacency[node]:
                if state.get(succ, 0) == 1:
                    cycle = stack[stack.index(succ):] + [succ]
                    raise DependencyError(
                        "mandatory dependency cycle (mark one arc optional "
                        "to break it): " + " -> ".join(cycle)
                    )
                if state.get(succ, 0) == 0:
                    visit(succ, stack)
            stack.pop()
            state[node] = 2

        for name in self._entities:
            if state.get(name, 0) == 0:
                visit(name, [])

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[EntityType]:
        return iter(self._entities.values())

    def __repr__(self) -> str:
        return (f"TaskSchema({self.name!r}, {len(self._entities)} entities, "
                f"{len(self._deps)} dependencies)")
