"""Fluent construction of task schemas.

A :class:`SchemaBuilder` lets the full Fig. 1 schema be written as a short,
readable program::

    schema = (SchemaBuilder("fig1")
              .tool("Simulator")
              .data("Netlist")
              .data("ExtractedNetlist", parent="Netlist")
              .produced_by("ExtractedNetlist", "Extractor", inputs=["Layout"])
              ...
              .build())

``produced_by`` declares the functional dependency plus the data
dependencies of one construction method in a single call, which is how a
methodology manager would naturally think about a task.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SchemaError
from .dependency import data_dep, functional
from .entity import (EntityType, composed as composed_entity,
                     data as data_entity)
from .entity import tool as tool_entity
from .schema import TaskSchema

InputSpec = str | tuple[str, str] | dict


class SchemaBuilder:
    """Incrementally assemble and validate a :class:`TaskSchema`."""

    def __init__(self, name: str = "schema") -> None:
        self._schema = TaskSchema(name)

    # -- entity declarations -------------------------------------------
    def tool(self, name: str, *, parent: str | None = None,
             description: str = "") -> "SchemaBuilder":
        """Declare a tool entity type."""
        self._schema.add_entity(
            tool_entity(name, parent=parent, description=description))
        return self

    def data(self, name: str, *, parent: str | None = None,
             description: str = "") -> "SchemaBuilder":
        """Declare a data entity type."""
        self._schema.add_entity(
            data_entity(name, parent=parent, description=description))
        return self

    def composed(self, name: str, of: Sequence[InputSpec] = (),
                 *, description: str = "") -> "SchemaBuilder":
        """Declare a composed entity grouping the given component types."""
        self._schema.add_entity(
            composed_entity(name, description=description))
        for spec in of:
            self._add_input(name, spec)
        return self

    def entity(self, entity: EntityType) -> "SchemaBuilder":
        """Declare a pre-built entity type."""
        self._schema.add_entity(entity)
        return self

    # -- dependency declarations ---------------------------------------
    def produced_by(self, produced: str, tool: str,
                    inputs: Iterable[InputSpec] = ()) -> "SchemaBuilder":
        """Declare a construction method: ``produced`` = ``tool``(inputs).

        Each input may be a type name, a ``(role, type)`` tuple, or a dict
        with keys ``type``, and optionally ``role`` and ``optional``.
        """
        self._schema.add_dependency(functional(produced, tool))
        for spec in inputs:
            self._add_input(produced, spec)
        return self

    def needs(self, source: str, target: str, *, optional: bool = False,
              role: str = "") -> "SchemaBuilder":
        """Declare one extra data dependency outside ``produced_by``."""
        self._schema.add_dependency(
            data_dep(source, target, optional=optional, role=role))
        return self

    def _add_input(self, source: str, spec: InputSpec) -> None:
        if isinstance(spec, str):
            self._schema.add_dependency(data_dep(source, spec))
        elif isinstance(spec, tuple):
            role, target = spec
            self._schema.add_dependency(data_dep(source, target, role=role))
        elif isinstance(spec, dict):
            self._schema.add_dependency(data_dep(
                source, spec["type"],
                optional=bool(spec.get("optional", False)),
                role=spec.get("role", "")))
        else:
            raise SchemaError(f"bad input spec for {source!r}: {spec!r}")

    # -- finalization ----------------------------------------------------
    def build(self, validate: bool = True) -> TaskSchema:
        """Return the schema, validated unless ``validate=False``."""
        if validate:
            self._schema.validate()
        return self._schema
