"""Schema evolution: diffing two task schemas.

Under the dynamic approach the task schema is the *only* methodology
artifact a site maintains (section 3.3), so methodology evolution is
schema evolution.  :func:`diff_schemas` computes a structured delta
between two schema versions, and :meth:`SchemaDiff.impact` reports which
entity types' construction methods changed — exactly the information a
methodology manager needs to announce to designers (and the information
the CLAIM-C maintenance benchmark counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dependency import Dependency
from .entity import EntityType
from .schema import TaskSchema


@dataclass(frozen=True)
class EntityChange:
    """A modified entity type (same name, different definition)."""

    name: str
    before: EntityType
    after: EntityType

    def describe(self) -> str:
        parts = []
        if self.before.kind is not self.after.kind:
            parts.append(f"kind {self.before.kind} -> {self.after.kind}")
        if self.before.parent != self.after.parent:
            parts.append(f"parent {self.before.parent!r} -> "
                         f"{self.after.parent!r}")
        if self.before.composed != self.after.composed:
            parts.append(f"composed {self.before.composed} -> "
                         f"{self.after.composed}")
        if self.before.description != self.after.description:
            parts.append("description changed")
        return f"{self.name}: " + ", ".join(parts or ["metadata changed"])


@dataclass
class SchemaDiff:
    """The structured delta between two schemas."""

    added_entities: tuple[EntityType, ...] = ()
    removed_entities: tuple[EntityType, ...] = ()
    changed_entities: tuple[EntityChange, ...] = ()
    added_dependencies: tuple[Dependency, ...] = ()
    removed_dependencies: tuple[Dependency, ...] = ()
    _impacted: tuple[str, ...] = field(default=(), repr=False)

    @property
    def is_empty(self) -> bool:
        return not (self.added_entities or self.removed_entities
                    or self.changed_entities or self.added_dependencies
                    or self.removed_dependencies)

    def artifact_count(self) -> int:
        """Maintenance artifacts touched: 1 if anything changed, else 0.

        The schema is one artifact; this is the CLAIM-C observable for
        the dynamic approach.
        """
        return 0 if self.is_empty else 1

    def impact(self) -> tuple[str, ...]:
        """Entity types whose construction method changed."""
        return self._impacted

    def render(self) -> str:
        lines = ["schema diff:"]
        for entity in self.added_entities:
            lines.append(f"  + entity {entity.name} ({entity.kind})")
        for entity in self.removed_entities:
            lines.append(f"  - entity {entity.name}")
        for change in self.changed_entities:
            lines.append(f"  ~ {change.describe()}")
        for dep in self.added_dependencies:
            lines.append(f"  + dependency {dep}")
        for dep in self.removed_dependencies:
            lines.append(f"  - dependency {dep}")
        if self.impact():
            lines.append("  construction methods affected: "
                         + ", ".join(self.impact()))
        if self.is_empty:
            lines.append("  (no changes)")
        return "\n".join(lines)


def diff_schemas(before: TaskSchema, after: TaskSchema) -> SchemaDiff:
    """Compute the structured delta between two schema versions."""
    before_entities = {e.name: e for e in before.entities()}
    after_entities = {e.name: e for e in after.entities()}
    added = tuple(after_entities[n]
                  for n in sorted(set(after_entities) -
                                  set(before_entities)))
    removed = tuple(before_entities[n]
                    for n in sorted(set(before_entities) -
                                    set(after_entities)))
    changed = tuple(
        EntityChange(n, before_entities[n], after_entities[n])
        for n in sorted(set(before_entities) & set(after_entities))
        if before_entities[n] != after_entities[n])
    before_deps = set(before.dependencies())
    after_deps = set(after.dependencies())
    added_deps = tuple(sorted(after_deps - before_deps,
                              key=lambda d: (d.source, d.role, d.target)))
    removed_deps = tuple(sorted(before_deps - after_deps,
                                key=lambda d: (d.source, d.role,
                                               d.target)))
    impacted: set[str] = set()
    for dep in (*added_deps, *removed_deps):
        if dep.source in after_entities or dep.source in before_entities:
            impacted.add(dep.source)
    # subtype retargeting changes effective construction of descendants
    for change in changed:
        if change.before.parent != change.after.parent:
            impacted.add(change.name)
            schema = after if change.name in after_entities else before
            impacted.update(schema.descendants_of(change.name))
    return SchemaDiff(added, removed, changed, added_deps, removed_deps,
                      tuple(sorted(impacted)))
