"""Dependency arcs for task schemas.

The paper distinguishes two arc labels (Fig. 1):

* ``f`` — a *functional dependency*: the entity is produced by the tool the
  arc points at.  At most one per entity type.
* ``d`` — a *data dependency*: producing the entity consumes data of the
  pointed-at type.  Unlimited in number; may be *optional* (drawn dashed in
  the paper) which is how cycles such as *Edited Layout --d--> Layout* are
  broken.

Each dependency additionally carries a ``role`` name so that a tool
encapsulation can map inputs to arguments (e.g. a Verifier consumes two
Netlists under roles ``"reference"`` and ``"candidate"``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DepKind(enum.Enum):
    """Arc label from the paper's task schema: ``f`` or ``d``."""

    FUNCTIONAL = "f"
    DATA = "d"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dependency:
    """A directed dependency arc ``source --kind--> target``.

    ``source`` is the produced entity; ``target`` is the tool (functional)
    or the consumed data entity (data).  Both are entity type *names*;
    resolution happens against a :class:`~repro.schema.schema.TaskSchema`.

    Parameters
    ----------
    source:
        Name of the dependent (produced) entity type.
    target:
        Name of the entity type depended upon.
    kind:
        Functional (``f``) or data (``d``).
    optional:
        Only meaningful for data dependencies; optional arcs break schema
        cycles and need not be present in a flow.
    role:
        Input-role label; defaults to the target type name.  Roles must be
        unique among the data dependencies of one source entity.
    """

    source: str
    target: str
    kind: DepKind = DepKind.DATA
    optional: bool = False
    role: str = ""

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValueError("dependency endpoints must be non-empty names")
        if self.kind is DepKind.FUNCTIONAL and self.optional:
            raise ValueError(
                f"{self.source} --f--> {self.target}: "
                "a functional dependency cannot be optional"
            )
        if not self.role:
            object.__setattr__(self, "role", self.target)

    @property
    def is_functional(self) -> bool:
        return self.kind is DepKind.FUNCTIONAL

    @property
    def is_data(self) -> bool:
        return self.kind is DepKind.DATA

    def arc_label(self) -> str:
        """The arc label the paper draws (``f``, ``d`` or ``d?``)."""
        if self.is_functional:
            return "f"
        return "d?" if self.optional else "d"

    def __str__(self) -> str:
        return f"{self.source} --{self.arc_label()}--> {self.target}"


def functional(source: str, target: str) -> Dependency:
    """Shorthand for a functional dependency ``source --f--> target``."""
    return Dependency(source, target, DepKind.FUNCTIONAL)


def data_dep(source: str, target: str, *, optional: bool = False,
             role: str = "") -> Dependency:
    """Shorthand for a data dependency ``source --d--> target``."""
    return Dependency(source, target, DepKind.DATA, optional=optional,
                      role=role)
