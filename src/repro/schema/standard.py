"""The task schemas used throughout the paper, reconstructed.

Three schemas are provided:

* :func:`fig1_schema` — the example task schema of Fig. 1: editors,
  placer, extractor, simulator, verifier and plotter over device models,
  netlists, layouts, circuits, stimuli, performances, plots and
  verifications.  It exhibits every schema feature the paper names:
  functional and data dependencies, subtyping (*Extracted Netlist* /
  *Edited Netlist*), an optional cycle-breaking dependency (*Edited
  Netlist --d?--> Netlist*), and a composed entity (*Circuit* = *Device
  Models* + *Netlist*).
* :func:`fig2_schema` — Fig. 1 extended with the Fig. 2 subgraph for a
  tool created during the design: a *Compiled Simulator* is produced by a
  *Sim Compiler* from a *Netlist* (the COSMOS example) and can then be run
  on different stimuli.
* :func:`odyssey_schema` — the full demo schema used by the examples: the
  above plus logic specifications, standard-cell and PLA layout
  generators (the Chiueh & Katz re-implementation scenario from section
  2), and three statistical optimizers that share one tool signature and
  take a *Simulator* as a **data** input (section 3.3: "tools themselves
  may serve as data input to other tools").

The exact arc set of the paper's Fig. 1 cannot be recovered verbatim from
the scanned text, so this is a faithful reconstruction covering every
relationship the prose describes; DESIGN.md records this substitution.
"""

from __future__ import annotations

from .builder import SchemaBuilder
from .schema import TaskSchema

# Canonical entity type names, exported so that examples, tools and tests
# never spell a type name twice.
DEVICE_MODEL_EDITOR = "DeviceModelEditor"
CIRCUIT_EDITOR = "CircuitEditor"
LAYOUT_EDITOR = "LayoutEditor"
PLACER = "Placer"
EXTRACTOR = "Extractor"
SIMULATOR = "Simulator"
VERIFIER = "Verifier"
PLOTTER = "Plotter"
SIM_COMPILER = "SimCompiler"
COMPILED_SIMULATOR = "CompiledSimulator"
LOGIC_EDITOR = "LogicEditor"
STD_CELL_GENERATOR = "StdCellGenerator"
PLA_GENERATOR = "PLAGenerator"
ROUTER = "Router"
DRC_CHECKER = "DrcChecker"
ERC_CHECKER = "ErcChecker"
OPTIMIZER = "Optimizer"
RANDOM_OPTIMIZER = "RandomSearchOptimizer"
COORDINATE_OPTIMIZER = "CoordinateDescentOptimizer"
ANNEALING_OPTIMIZER = "AnnealingOptimizer"

DEVICE_MODELS = "DeviceModels"
NETLIST = "Netlist"
EXTRACTED_NETLIST = "ExtractedNetlist"
EDITED_NETLIST = "EditedNetlist"
OPTIMIZED_NETLIST = "OptimizedNetlist"
LAYOUT = "Layout"
EDITED_LAYOUT = "EditedLayout"
PLACED_LAYOUT = "PlacedLayout"
STD_CELL_LAYOUT = "StdCellLayout"
PLA_LAYOUT = "PLALayout"
CIRCUIT = "Circuit"
STIMULI = "Stimuli"
SIM_ARGS = "SimArgs"
PLACEMENT_SPEC = "PlacementSpec"
OPTIMIZATION_SPEC = "OptimizationSpec"
PERFORMANCE = "Performance"
PERFORMANCE_PLOT = "PerformancePlot"
VERIFICATION = "Verification"
EXTRACTION_STATISTICS = "ExtractionStatistics"
LOGIC_SPEC = "LogicSpec"
EDITED_LOGIC_SPEC = "EditedLogicSpec"
DRC_REPORT = "DrcReport"
ERC_REPORT = "ErcReport"
ROUTED_LAYOUT = "RoutedLayout"


def _fig1_builder(name: str) -> SchemaBuilder:
    builder = (
        SchemaBuilder(name)
        # -- tools ------------------------------------------------------
        .tool(DEVICE_MODEL_EDITOR,
              description="interactive editor for device model sets")
        .tool(CIRCUIT_EDITOR,
              description="schematic/netlist editor")
        .tool(LAYOUT_EDITOR,
              description="mask layout editor")
        .tool(PLACER, description="cell placement tool")
        .tool(EXTRACTOR,
              description="extracts a netlist and statistics from a layout")
        .tool(SIMULATOR, description="circuit simulator")
        .tool(VERIFIER, description="netlist-vs-netlist (LVS) verifier")
        .tool(PLOTTER, description="performance plotter")
        # -- data -------------------------------------------------------
        .data(DEVICE_MODELS, description="device model parameter set")
        .data(NETLIST, description="circuit connectivity (abstract)")
        .data(EXTRACTED_NETLIST, parent=NETLIST,
              description="netlist extracted from a layout")
        .data(EDITED_NETLIST, parent=NETLIST,
              description="netlist produced with the circuit editor")
        .data(LAYOUT, description="mask geometry (abstract)")
        .data(EDITED_LAYOUT, parent=LAYOUT,
              description="layout produced with the layout editor")
        .data(PLACED_LAYOUT, parent=LAYOUT,
              description="layout produced by the placer")
        .data(STIMULI, description="simulation input vectors")
        .data(SIM_ARGS, description="simulator options as an entity type")
        .data(PLACEMENT_SPEC, description="placement constraints")
        .data(PERFORMANCE, description="simulated circuit performance")
        .data(PERFORMANCE_PLOT, description="plot of a performance")
        .data(VERIFICATION, description="result of an LVS comparison")
        .data(EXTRACTION_STATISTICS,
              description="area/device statistics from extraction")
        # -- composed ---------------------------------------------------
        .composed(CIRCUIT,
                  of=[("models", DEVICE_MODELS), ("netlist", NETLIST)],
                  description="device models grouped with a netlist")
        # -- construction methods ----------------------------------------
        .produced_by(DEVICE_MODELS, DEVICE_MODEL_EDITOR,
                     inputs=[{"type": DEVICE_MODELS, "role": "previous",
                              "optional": True}])
        .produced_by(EDITED_NETLIST, CIRCUIT_EDITOR,
                     inputs=[{"type": NETLIST, "role": "previous",
                              "optional": True}])
        .produced_by(EDITED_LAYOUT, LAYOUT_EDITOR,
                     inputs=[{"type": LAYOUT, "role": "previous",
                              "optional": True}])
        .produced_by(PLACED_LAYOUT, PLACER,
                     inputs=[("netlist", NETLIST),
                             ("spec", PLACEMENT_SPEC)])
        .produced_by(EXTRACTED_NETLIST, EXTRACTOR,
                     inputs=[("layout", LAYOUT)])
        .produced_by(EXTRACTION_STATISTICS, EXTRACTOR,
                     inputs=[("layout", LAYOUT)])
        .produced_by(PERFORMANCE, SIMULATOR,
                     inputs=[("circuit", CIRCUIT), ("stimuli", STIMULI),
                             {"type": SIM_ARGS, "role": "args",
                              "optional": True}])
        .produced_by(PERFORMANCE_PLOT, PLOTTER,
                     inputs=[("performance", PERFORMANCE)])
        .produced_by(VERIFICATION, VERIFIER,
                     inputs=[("reference", NETLIST),
                             ("candidate", NETLIST)])
    )
    return builder


def fig1_schema() -> TaskSchema:
    """The example task schema of the paper's Fig. 1."""
    return _fig1_builder("fig1").build()


def _add_cosmos(builder: SchemaBuilder) -> SchemaBuilder:
    return (
        builder
        .tool(SIM_COMPILER,
              description="compiles a netlist into an executable simulator "
                          "(the COSMOS example, Fig. 2)")
        .tool(COMPILED_SIMULATOR, parent=SIMULATOR,
              description="simulator compiled for one netlist; a tool "
                          "created during the design")
        .produced_by(COMPILED_SIMULATOR, SIM_COMPILER,
                     inputs=[("netlist", NETLIST)])
    )


def fig2_schema() -> TaskSchema:
    """Fig. 1 plus the Fig. 2 subgraph for a tool created during design."""
    return _add_cosmos(_fig1_builder("fig2")).build()


def odyssey_schema() -> TaskSchema:
    """The full demo schema: Fig. 1 + Fig. 2 + generators + optimizers."""
    builder = _add_cosmos(_fig1_builder("odyssey"))
    builder = (
        builder
        # logic view and its editor (Fig. 7's logic view of a cell)
        .tool(LOGIC_EDITOR, description="logic/boolean specification editor")
        .data(LOGIC_SPEC, description="gate-level logic view (abstract)")
        .data(EDITED_LOGIC_SPEC, parent=LOGIC_SPEC,
              description="logic specification from the logic editor")
        .produced_by(EDITED_LOGIC_SPEC, LOGIC_EDITOR,
                     inputs=[{"type": LOGIC_SPEC, "role": "previous",
                              "optional": True}])
        # alternative layout implementations (Chiueh & Katz scenario)
        .tool(STD_CELL_GENERATOR,
              description="standard-cell layout generator")
        .tool(PLA_GENERATOR, description="PLA layout generator")
        .data(STD_CELL_LAYOUT, parent=LAYOUT,
              description="layout implemented with standard cells")
        .data(PLA_LAYOUT, parent=LAYOUT,
              description="layout implemented as a PLA")
        .produced_by(STD_CELL_LAYOUT, STD_CELL_GENERATOR,
                     inputs=[("logic", LOGIC_SPEC)])
        .produced_by(PLA_LAYOUT, PLA_GENERATOR,
                     inputs=[("logic", LOGIC_SPEC)])
        # geometric routing of the physical view
        .tool(ROUTER, description="channel/track router")
        .data(ROUTED_LAYOUT, parent=LAYOUT,
              description="layout with geometric track wiring")
        .produced_by(ROUTED_LAYOUT, ROUTER,
                     inputs=[("layout", LAYOUT)])
        # design rule checking of the physical view
        .tool(DRC_CHECKER, description="layout design-rule checker")
        .data(DRC_REPORT, description="result of a DRC run")
        .produced_by(DRC_REPORT, DRC_CHECKER,
                     inputs=[("layout", LAYOUT)])
        # electrical rule checking of the transistor view
        .tool(ERC_CHECKER, description="netlist electrical-rule checker")
        .data(ERC_REPORT, description="result of an ERC run")
        .produced_by(ERC_REPORT, ERC_CHECKER,
                     inputs=[("netlist", NETLIST)])
        # statistical optimizers sharing one signature; note the Simulator
        # appearing as a *data* input to the optimization task
        .tool(OPTIMIZER, description="statistical circuit optimizer "
                                     "(abstract tool family)")
        .tool(RANDOM_OPTIMIZER, parent=OPTIMIZER,
              description="random-search optimizer")
        .tool(COORDINATE_OPTIMIZER, parent=OPTIMIZER,
              description="coordinate-descent optimizer")
        .tool(ANNEALING_OPTIMIZER, parent=OPTIMIZER,
              description="annealing optimizer")
        .data(OPTIMIZATION_SPEC, description="optimization goal/limits")
        .data(OPTIMIZED_NETLIST, parent=NETLIST,
              description="netlist tuned by an optimizer")
        .produced_by(OPTIMIZED_NETLIST, OPTIMIZER,
                     inputs=[("circuit", CIRCUIT),
                             ("simulator", SIMULATOR),
                             ("spec", OPTIMIZATION_SPEC)])
    )
    return builder.build()
