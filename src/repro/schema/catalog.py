"""Catalogs: the four starting points of the Hercules UI (Fig. 9).

Section 4.1: *"To start the task, the designer may select a predefined
flow from the flow-catalog, a design entity type from the entity-catalog,
a tool from the tool-catalog, or a piece of data from the data-catalog."*

* :class:`EntityCatalog` and :class:`ToolCatalog` are views over a task
  schema;
* :class:`FlowCatalog` is the library of predefined flows used by the
  plan-based design approach (flows stored here remain dynamically
  *defined* — they were built up by some designer earlier — they are just
  reused as prototypes);
* the data-catalog is the history database itself, browsed through
  :class:`repro.ui.browser.InstanceBrowser`.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, TypeVar

from ..errors import SchemaError
from .entity import EntityType
from .schema import TaskSchema

FlowT = TypeVar("FlowT")


class EntityCatalog:
    """Read-only listing of all entity types in a schema."""

    def __init__(self, schema: TaskSchema) -> None:
        self._schema = schema

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._schema.entity_names()))

    def entries(self) -> tuple[EntityType, ...]:
        return tuple(sorted(self._schema.entities(), key=lambda e: e.name))

    def lookup(self, name: str) -> EntityType:
        return self._schema.entity(name)

    def __iter__(self) -> Iterator[EntityType]:
        return iter(self.entries())

    def __len__(self) -> int:
        return len(self._schema)


class ToolCatalog(EntityCatalog):
    """Listing restricted to tool entity types."""

    def entries(self) -> tuple[EntityType, ...]:
        return tuple(sorted(self._schema.tools(), key=lambda e: e.name))

    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.entries())

    def __len__(self) -> int:
        return len(self._schema.tools())


class DataTypeCatalog(EntityCatalog):
    """Listing restricted to data entity types."""

    def entries(self) -> tuple[EntityType, ...]:
        return tuple(sorted(self._schema.data_entities(),
                            key=lambda e: e.name))

    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.entries())

    def __len__(self) -> int:
        return len(self._schema.data_entities())


class FlowCatalog(Generic[FlowT]):
    """Named library of predefined flows (the plan-based approach).

    Entries are stored as zero-argument factories so that each selection
    yields a *fresh* flow the designer can keep expanding — selecting a
    catalog flow must never mutate the stored prototype.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], FlowT]] = {}
        self._descriptions: dict[str, str] = {}

    def register(self, name: str, factory: Callable[[], FlowT],
                 description: str = "") -> None:
        """Store a flow factory under a unique name."""
        if name in self._factories:
            raise SchemaError(f"flow {name!r} already in catalog")
        self._factories[name] = factory
        self._descriptions[name] = description

    def register_flow(self, name: str, flow: Any, description: str = "",
                      copier: Callable[[Any], FlowT] | None = None) -> None:
        """Store a concrete flow; ``copier`` clones it on each selection.

        Without a copier the flow object itself must supply a ``copy()``
        method (as :class:`repro.core.flow.DynamicFlow` does).
        """
        if copier is None:
            self.register(name, flow.copy, description)
        else:
            self.register(name, lambda: copier(flow), description)

    def select(self, name: str) -> FlowT:
        """Return a fresh instance of the named flow."""
        if name not in self._factories:
            raise SchemaError(f"no flow named {name!r} in catalog")
        return self._factories[name]()

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._factories))

    def description(self, name: str) -> str:
        if name not in self._descriptions:
            raise SchemaError(f"no flow named {name!r} in catalog")
        return self._descriptions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)
