"""Task schemas: entity types, dependencies, catalogs and serialization.

The task schema (paper section 3.1) states the construction rules by which
tasks can be built and doubles as the data schema of the design history
database.  See :mod:`repro.schema.standard` for the schemas of the paper's
Figs. 1 and 2.
"""

from .builder import SchemaBuilder
from .catalog import (DataTypeCatalog, EntityCatalog, FlowCatalog,
                      ToolCatalog)
from .dependency import DepKind, Dependency, data_dep, functional
from .entity import EntityKind, EntityType, composed, data, tool
from .schema import ConstructionMethod, TaskSchema
from .serialize import (dumps, load, loads, save, schema_from_dict,
                        schema_to_dict)

__all__ = [
    "ConstructionMethod",
    "DataTypeCatalog",
    "DepKind",
    "Dependency",
    "EntityCatalog",
    "EntityKind",
    "EntityType",
    "FlowCatalog",
    "SchemaBuilder",
    "TaskSchema",
    "ToolCatalog",
    "composed",
    "data",
    "data_dep",
    "dumps",
    "functional",
    "load",
    "loads",
    "save",
    "schema_from_dict",
    "schema_to_dict",
    "tool",
]
