"""Entity types for task schemas.

In the paper (section 3.1) a task schema is a graph over *design entities*,
where both tools and data are entities.  An entity type carries:

* a ``kind`` — :attr:`EntityKind.TOOL` for entities whose instances are
  executable tools (simulators, editors, placers, ...) and
  :attr:`EntityKind.DATA` for design data (netlists, layouts, plots, ...).
  Tools being plain entities is what lets the schema describe tools that are
  *created during the design* (the COSMOS example, Fig. 2) and tools passed
  as *data* to other tools (an optimizer taking a simulator as an argument);
* an optional ``parent`` — subtyping separates alternative construction
  methods (an *Extracted Netlist* and an *Edited Netlist* are subtypes of
  *Netlist*, Fig. 1);
* a ``composed`` flag — composed entities have only data dependencies and
  carry implicit composition / decomposition functions (a *Circuit* groups
  *Device Models* and a *Netlist*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EntityKind(enum.Enum):
    """Whether an entity's instances are executable tools or design data."""

    TOOL = "tool"
    DATA = "data"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class EntityType:
    """A node of the task schema.

    Parameters
    ----------
    name:
        Unique name within the schema (e.g. ``"Netlist"``).
    kind:
        Tool or data entity.
    parent:
        Name of the supertype, if this type is a specialization.
    composed:
        True for composed entities: data dependencies only, with implicit
        compose/decompose functions instead of a tool invocation.
    description:
        Free-text documentation shown in entity catalogs.
    attributes:
        Optional declared metadata attribute names for instances of this
        type (beyond the standard user/timestamp/comment meta-data).
    """

    name: str
    kind: EntityKind = EntityKind.DATA
    parent: str | None = None
    composed: bool = False
    description: str = ""
    attributes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("entity type name must be non-empty")
        if self.composed and self.kind is EntityKind.TOOL:
            raise ValueError(
                f"entity {self.name!r}: a composed entity cannot be a tool"
            )

    @property
    def is_tool(self) -> bool:
        """True if instances of this type are executable tools."""
        return self.kind is EntityKind.TOOL

    @property
    def is_data(self) -> bool:
        """True if instances of this type are design data."""
        return self.kind is EntityKind.DATA

    def __str__(self) -> str:
        return self.name


def tool(name: str, *, parent: str | None = None, description: str = "",
         attributes: tuple[str, ...] = ()) -> EntityType:
    """Shorthand constructor for a tool entity type."""
    return EntityType(name, EntityKind.TOOL, parent=parent,
                      description=description, attributes=attributes)


def data(name: str, *, parent: str | None = None, description: str = "",
         attributes: tuple[str, ...] = ()) -> EntityType:
    """Shorthand constructor for a data entity type."""
    return EntityType(name, EntityKind.DATA, parent=parent,
                      description=description, attributes=attributes)


def composed(name: str, *, parent: str | None = None,
             description: str = "") -> EntityType:
    """Shorthand constructor for a composed (grouping) entity type."""
    return EntityType(name, EntityKind.DATA, parent=parent, composed=True,
                      description=description)
