"""JSON (de)serialization of task schemas.

A schema is the *only* methodology artifact a site has to maintain
(section 3.3), so it must be storable, diffable and shippable.  The format
is a plain dict with ``entities`` and ``dependencies`` lists; round-trips
are exact and tested property-style.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SchemaError
from .dependency import DepKind, Dependency
from .entity import EntityKind, EntityType
from .schema import TaskSchema

FORMAT_VERSION = 1


def schema_to_dict(schema: TaskSchema) -> dict[str, Any]:
    """Convert a schema to a JSON-safe dict."""
    return {
        "format": FORMAT_VERSION,
        "name": schema.name,
        "entities": [
            {
                "name": e.name,
                "kind": e.kind.value,
                "parent": e.parent,
                "composed": e.composed,
                "description": e.description,
                "attributes": list(e.attributes),
            }
            for e in schema.entities()
        ],
        "dependencies": [
            {
                "source": d.source,
                "target": d.target,
                "kind": d.kind.value,
                "optional": d.optional,
                "role": d.role,
            }
            for d in schema.dependencies()
        ],
    }


def schema_from_dict(payload: dict[str, Any],
                     validate: bool = True) -> TaskSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported schema format: {payload.get('format')!r}"
        )
    schema = TaskSchema(payload.get("name", "schema"))
    for spec in payload.get("entities", ()):
        schema.add_entity(EntityType(
            name=spec["name"],
            kind=EntityKind(spec.get("kind", "data")),
            parent=spec.get("parent"),
            composed=bool(spec.get("composed", False)),
            description=spec.get("description", ""),
            attributes=tuple(spec.get("attributes", ())),
        ))
    for spec in payload.get("dependencies", ()):
        schema.add_dependency(Dependency(
            source=spec["source"],
            target=spec["target"],
            kind=DepKind(spec.get("kind", "d")),
            optional=bool(spec.get("optional", False)),
            role=spec.get("role", ""),
        ))
    if validate:
        schema.validate()
    return schema


def dumps(schema: TaskSchema, indent: int | None = 2) -> str:
    """Serialize a schema to a JSON string."""
    return json.dumps(schema_to_dict(schema), indent=indent, sort_keys=True)


def loads(text: str, validate: bool = True) -> TaskSchema:
    """Deserialize a schema from a JSON string."""
    return schema_from_dict(json.loads(text), validate=validate)


def save(schema: TaskSchema, path: str) -> None:
    """Write a schema to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(schema))


def load(path: str, validate: bool = True) -> TaskSchema:
    """Read a schema from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), validate=validate)
