"""Exception hierarchy for the flow-management framework.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch framework failures with a single ``except`` clause while
still being able to distinguish schema problems from flow-construction
problems, execution failures, or history-database inconsistencies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


class SchemaError(ReproError):
    """A task schema is malformed or an operation violates it."""


class UnknownEntityError(SchemaError):
    """An entity type name does not exist in the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown entity type: {name!r}")
        self.name = name


class DependencyError(SchemaError):
    """A dependency declaration violates the schema rules.

    The paper (section 3.1) requires that an entity has at most one
    functional dependency, that composed entities have no functional
    dependency, and that every dependency cycle contains at least one
    optional data dependency.
    """


class SubtypeError(SchemaError):
    """An invalid subtype relation (cycle, unknown parent, kind mismatch)."""


class FlowError(ReproError):
    """A task-graph (dynamically defined flow) operation is invalid."""


class SpecializationError(FlowError):
    """Expansion requested on an abstract node that must be specialized first.

    Section 3.2: 'Specialization is the selection of an entity subtype so
    that an expand operation can be performed.'
    """


class ExpansionError(FlowError):
    """An expand/unexpand operation cannot be applied to the given node."""


class BindingError(FlowError):
    """Instance binding is missing or inconsistent with the node's type."""


class ExecutionError(ReproError):
    """A flow (or sub-flow) could not be executed."""


class EncapsulationError(ExecutionError):
    """No tool encapsulation is registered, or the encapsulation misbehaved."""


class ToolError(ExecutionError):
    """A CAD tool in the substrate failed on its inputs."""


class TransientToolError(ToolError):
    """A tool failure that a retry may well cure (network blip, license
    server hiccup, scratch-disk contention).  The resilience layer
    retries these; everything else is treated as permanent."""


class InvocationTimeoutError(TransientToolError):
    """A tool invocation exceeded its per-invocation timeout and was
    abandoned by the watchdog.  Transient by default: the next attempt
    runs against a fresh watchdog budget."""


class ToolQuarantinedError(ToolError):
    """The circuit breaker has quarantined this tool type after repeated
    consecutive failures; invocations fail fast until it is reset."""


class HistoryError(ReproError):
    """The design history database rejected an operation."""


class UnknownInstanceError(HistoryError):
    """An instance identifier does not exist in the history database."""

    def __init__(self, instance_id: str) -> None:
        super().__init__(f"unknown instance: {instance_id!r}")
        self.instance_id = instance_id


class ConsistencyError(HistoryError):
    """Design data is out of date and cannot be reconciled automatically."""


class QueryError(HistoryError):
    """A history query (template, chain, or browse) is malformed."""


class ObservabilityError(ReproError):
    """An event-bus, sink, or metrics operation is invalid."""


class BaselineError(ReproError):
    """A baseline manager (static flows, traces, version trees) failed."""


class UIError(ReproError):
    """The scriptable Hercules-style user interface rejected an operation."""
