"""Flow execution: turning bound task graphs into design history.

Section 3.3: *"Dynamically defined flows easily allow for automatic task
sequencing (flow automation) because tool and data dependencies are
specified in the task schema."*  The executor walks a task graph in
topological order, runs one tool call per coalesced
:class:`~repro.core.taskgraph.TaskInvocation` (Fig. 5's multi-output
subtasks), fans out over multi-instance selections (section 4.1), and
records every created object in the history database with its derivation
record — which is the entire persistence story of the paper.

Sub-flows run by passing ``targets``: only the invocations in the targets'
supplier subtrees execute (*"a subflow may be run at any stage as long as
its dependencies are satisfied independently of the remainder of the
flow"*).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.flow import DynamicFlow
from ..core.taskgraph import TaskGraph, TaskInvocation
from ..errors import ExecutionError
from ..history.database import HistoryDatabase
from ..history.instance import DerivationRecord
from ..obs import (CACHE_HIT, CACHE_MISS, CACHE_SPAN, COMPOSE_SPAN,
                   COMPOSE_TOOL, COMPOSITION_RUN, EXECUTION_FAILED,
                   FLOW_FINISHED, FLOW_STARTED, NO_OP_BUS, NO_OP_TRACER,
                   NODE_READY, NULL_SPAN, RUN_SPAN, SEQUENTIAL_EXECUTOR,
                   TASK_SPAN, TOOL_FINISHED, TOOL_INVOKED,
                   TOOL_QUARANTINED, TOOL_RETRIED, TOOL_SPAN,
                   TOOL_TIMED_OUT, EventBus, RunLedger, Tracer)
from .cache import (CACHE_OFF, CACHE_READWRITE, CACHE_REUSE,
                    DerivationCache, normalize_policy)
from .encapsulation import EncapsulationRegistry, ToolContext
from .faults import FaultPlan
from .resilience import (UPSTREAM, CallStats, InvocationFailure,
                         ResiliencePolicy, annotate_error, failure_entry)


@dataclass
class InvocationResult:
    """Report entry for one executed task invocation."""

    invocation_id: str
    tool_type: str | None
    tool_instances: tuple[str, ...]
    encapsulation: str
    runs: int
    created: tuple[str, ...]
    outputs_by_node: dict[str, tuple[str, ...]]
    duration: float
    machine: str = "local"
    #: Time the invocation sat ready (dependencies satisfied) before a
    #: machine picked it up — nonzero only under scheduled/parallel
    #: execution, and always separate from ``duration``.
    queue_wait: float = 0.0
    #: Transient failures cured by the resilience policy before this
    #: invocation succeeded (``timeouts`` counts how many of those
    #: attempts were watchdog abandonments).
    retries: int = 0
    timeouts: int = 0


@dataclass
class CachedInvocation:
    """Report entry for a task invocation coalesced from the cache.

    ``hits`` counts the remembered tool runs reused (one per input
    combination); ``saved`` estimates the tool time those runs cost when
    first executed, and ``bytes_saved`` the canonical size of the design
    data that did not have to be recreated.
    """

    tool_type: str | None
    outputs: tuple[str, ...]
    hits: int
    instances: tuple[str, ...]
    outputs_by_node: dict[str, tuple[str, ...]]
    saved: float
    bytes_saved: int
    machine: str = "local"


@dataclass
class ExecutionReport:
    """Everything that happened during one ``execute()`` call.

    ``wall_time`` is the elapsed clock time of the whole ``execute()``
    call; ``serial_time`` sums the individual invocation durations.  For
    a sequential run the two are close; for parallel lanes the gap is
    the realized speedup.
    """

    flow_name: str
    results: list[InvocationResult] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    cached: list[CachedInvocation] = field(default_factory=list)
    wall_time: float = 0.0
    #: Invocations that failed for good under graceful degradation —
    #: empty unless a :class:`ResiliencePolicy` with ``degrade=True``
    #: turned a fatal error into a partial report.
    failures: list[InvocationFailure] = field(default_factory=list)
    #: Tool types the circuit breaker had quarantined by run end.
    quarantined: list[str] = field(default_factory=list)

    @property
    def created(self) -> tuple[str, ...]:
        return tuple(itertools.chain.from_iterable(
            r.created for r in self.results))

    @property
    def runs(self) -> int:
        return sum(r.runs for r in self.results)

    @property
    def cache_hits(self) -> int:
        """Tool runs coalesced from the derivation cache."""
        return sum(c.hits for c in self.cached)

    @property
    def reused(self) -> tuple[str, ...]:
        """Instance ids served from the cache instead of re-derived."""
        return tuple(itertools.chain.from_iterable(
            c.instances for c in self.cached))

    @property
    def time_saved(self) -> float:
        """Estimated tool time the cache hits avoided."""
        return sum(c.saved for c in self.cached)

    @property
    def bytes_saved(self) -> int:
        """Canonical data bytes the cache hits avoided recreating."""
        return sum(c.bytes_saved for c in self.cached)

    @property
    def serial_time(self) -> float:
        """Total tool/composition time, as if run on one machine."""
        return sum(r.duration for r in self.results)

    @property
    def queue_wait_time(self) -> float:
        """Total time invocations spent ready but waiting for a machine.

        Reported separately from execute time: ``serial_time`` counts
        only the work itself, so scheduling pressure is visible instead
        of being conflated into tool durations.
        """
        return sum(r.queue_wait for r in self.results)

    @property
    def speedup(self) -> float:
        """Realized serial-time / wall-time ratio (1.0 when unknown)."""
        return self.serial_time / self.wall_time if self.wall_time else 1.0

    @property
    def retries(self) -> int:
        """Transient failures retried away across all invocations."""
        return (sum(r.retries for r in self.results)
                + sum(f.retries for f in self.failures))

    @property
    def timeouts(self) -> int:
        """Watchdog abandonments across all invocations."""
        return (sum(r.timeouts for r in self.results)
                + sum(f.timeouts for f in self.failures))

    @property
    def failed(self) -> bool:
        """True when a degraded run left invocations unexecuted."""
        return bool(self.failures)

    def created_of_node(self, node_id: str) -> tuple[str, ...]:
        out: tuple[str, ...] = ()
        for cached in self.cached:
            if node_id in cached.outputs_by_node:
                out += cached.outputs_by_node[node_id]
        for result in self.results:
            if node_id in result.outputs_by_node:
                out += result.outputs_by_node[node_id]
        return out

    def merge(self, other: "ExecutionReport") -> None:
        """Fold another report (e.g. one parallel lane) into this one.

        Lanes overlap in time, so wall-clock aggregates by ``max`` —
        summing would silently report serial time and erase the very
        speedup the parallel executors exist to deliver.  (Serial time
        needs no special handling: it derives from the merged results.)
        """
        self.results.extend(other.results)
        self.skipped.extend(other.skipped)
        self.cached.extend(other.cached)
        self.failures.extend(other.failures)
        self.quarantined = sorted(
            set(self.quarantined) | set(other.quarantined))
        self.wall_time = max(self.wall_time, other.wall_time)


class FlowExecutor:
    """Executes dynamically defined flows against a history database."""

    def __init__(self, db: HistoryDatabase,
                 registry: EncapsulationRegistry, *, user: str = "",
                 machine: str = "local",
                 lock: threading.Lock | None = None,
                 bus: EventBus | None = None,
                 cache: DerivationCache | None = None,
                 cache_policy: str = CACHE_READWRITE,
                 tracer: Tracer | None = None,
                 ledger: RunLedger | None = None,
                 resilience: ResiliencePolicy | None = None,
                 faults: FaultPlan | None = None,
                 profiler=None) -> None:
        self.db = db
        self.registry = registry
        self.user = user
        self.machine = machine
        # The lock serializes history-database access when several
        # executors share one database across threads (Fig. 6 parallel
        # branches); tool code runs outside it.
        self._lock = lock if lock is not None else threading.Lock()
        # Without sinks the shared no-op bus makes every emit an early
        # return, so uninstrumented execution stays on the fast path.
        self.bus = bus if bus is not None else NO_OP_BUS
        # Likewise for spans: without sinks the tracer hands out the
        # shared null span and tracing costs one truth test.
        self.tracer = tracer if tracer is not None else NO_OP_TRACER
        # Incremental re-execution: with a cache attached, remembered
        # tool runs (same tool, code and input content) are reused
        # instead of re-executed, subject to the policy.
        self.cache = cache
        self.cache_policy = normalize_policy(
            cache_policy if cache is not None else CACHE_OFF)
        self._force = False
        # Longitudinal observability: with a ledger attached, every
        # execute() call appends one RunRecord.  Coordinators keep the
        # ledger for themselves (their worker executors get none), so
        # one coordinated run is one record, never one per lane.
        self.ledger = ledger
        # Resilience: with a policy attached, every encapsulation and
        # composition call runs under its retry/timeout/quarantine
        # machinery.  Coordinators share ONE policy object with their
        # worker executors so breaker state is global to the run.
        # Without a policy, execution behaves exactly as before: the
        # first tool exception aborts the flow.
        self.resilience = resilience
        # Fault injection: a FaultPlan scripts failures at the same
        # boundary the policy guards, so chaos drills exercise the real
        # retry path.  None in production.
        self.faults = faults
        # Profiling: a SamplingProfiler brackets every tool body so
        # the sweep thread can attribute stacks (and busy time) to the
        # tool type, whatever thread ends up executing the call.
        self.profiler = profiler
        # Coordinators (parallel/scheduled executors) open the run span
        # themselves and clear this on their worker-facing executors so
        # tasks attach to the coordinator's trace, not a second root.
        self._trace_run_span = True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, flow: TaskGraph | DynamicFlow,
                targets: Sequence[str] | None = None, *,
                force: bool = False,
                cache: str | None = None) -> ExecutionReport:
        """Run a flow (or the sub-flow reaching ``targets``).

        Already-executed nodes (with ``produced`` results) and bound
        nodes are reused unless ``force`` re-runs every invocation.
        ``cache`` overrides the executor's cache policy for this call
        (``"off"`` / ``"reuse"`` / ``"readwrite"``).
        """
        graph = flow.graph if isinstance(flow, DynamicFlow) else flow
        graph.validate()
        if cache is not None:
            if self.cache is None and normalize_policy(cache) != CACHE_OFF:
                raise ExecutionError(
                    f"cache policy {cache!r} requires a DerivationCache; "
                    "construct the executor with cache=... (or use "
                    "DesignEnvironment.run)")
            self.cache_policy = normalize_policy(cache)
        # Root span of the trace.  Coordinators (parallel/scheduled)
        # open it themselves, so their per-branch executors skip this.
        span_cm = (
            self.tracer.span(
                f"run:{graph.name}", RUN_SPAN,
                attributes={"flow": graph.name, "machine": self.machine,
                            "cache": self.cache_policy,
                            "targets": sorted(targets or ()),
                            "force": force})
            if self._trace_run_span else nullcontext(NULL_SPAN))
        with span_cm as run_span:
            try:
                report = self._execute_graph(graph, targets, force=force)
            except Exception as error:
                self._ledger_record(ExecutionReport(graph.name),
                                    error=error)
                raise
            run_span.set(runs=report.runs,
                         created=len(report.created),
                         skipped=len(report.skipped),
                         cache_hits=report.cache_hits)
        self._ledger_record(report)
        return report

    def _ledger_record(self, report: ExecutionReport,
                       error: BaseException | None = None) -> None:
        """Append this run to the ledger, when one is attached."""
        if self.ledger is None:
            return
        trace_id = ""
        if self.tracer.enabled and self._trace_run_span:
            trace_id = self.tracer.last_trace_id or ""
        self.ledger.record_run(
            report, executor=SEQUENTIAL_EXECUTOR,
            cache_policy=self.cache_policy, trace_id=trace_id,
            error=error,
            profile=(self.profiler.summary()
                     if self.profiler is not None else None),
            pool_size=1)

    def _execute_graph(self, graph: TaskGraph,
                       targets: Sequence[str] | None, *,
                       force: bool) -> ExecutionReport:
        started = time.perf_counter()
        emitting = self.bus.enabled
        needed = self._needed_nodes(graph, targets)
        self._check_ready(graph, needed)
        if emitting:
            self.bus.emit(FLOW_STARTED, flow=graph.name,
                          machine=self.machine,
                          payload={"nodes": len(needed),
                                   "targets": sorted(targets or ()),
                                   "force": force})
        if force:
            # drop previous results so re-runs do not fan out over them
            for node_id in needed:
                if graph.suppliers(node_id):
                    graph.node(node_id).produced = ()
        self._force = force
        report = ExecutionReport(graph.name)
        invocation_of: dict[str, TaskInvocation] = {}
        for invocation in graph.invocations():
            for output in invocation.outputs:
                invocation_of[output] = invocation
        done: set[int] = set()
        degrade = (self.resilience is not None
                   and self.resilience.degrade)
        failed_nodes: set[str] = set()
        try:
            for node_id in graph.topological_order():
                if node_id not in needed:
                    continue
                invocation = invocation_of.get(node_id)
                if invocation is None:
                    continue  # leaf (bound) node
                if id(invocation) in done:
                    continue
                done.add(id(invocation))
                outputs = [graph.node(o) for o in invocation.outputs]
                if not force and all(o.results() for o in outputs):
                    report.skipped.extend(invocation.outputs)
                    continue
                if degrade and self._record_upstream_failure(
                        graph, invocation, report, failed_nodes):
                    continue
                try:
                    result, cached = self._run_invocation(graph,
                                                          invocation)
                except Exception as error:
                    if not degrade:
                        raise
                    # Graceful degradation: record the loss, skip the
                    # dependents, keep executing independent work.
                    report.failures.append(
                        self._failure_entry(error, invocation.outputs))
                    failed_nodes.update(invocation.outputs)
                    if emitting:
                        self.bus.emit(
                            EXECUTION_FAILED, flow=graph.name,
                            node=",".join(invocation.outputs),
                            machine=self.machine,
                            payload={"error": str(error),
                                     "degraded": True})
                    continue
                if result is not None:
                    report.results.append(result)
                if cached is not None:
                    report.cached.append(cached)
        except Exception as error:
            if emitting:
                self.bus.emit(EXECUTION_FAILED, flow=graph.name,
                              machine=self.machine,
                              payload={"error": str(error)})
            raise
        if self.resilience is not None:
            report.quarantined = sorted(
                set(report.quarantined)
                | set(self.resilience.quarantined()))
        report.wall_time = time.perf_counter() - started
        if emitting:
            payload: dict[str, Any] = {
                "created": len(report.created),
                "runs": report.runs,
                "skipped": len(report.skipped),
                "cache_hits": report.cache_hits}
            if report.failures:
                payload["failures"] = len(report.failures)
            self.bus.emit(FLOW_FINISHED, flow=graph.name,
                          machine=self.machine,
                          duration=report.wall_time,
                          payload=payload)
        return report

    def _record_upstream_failure(self, graph: TaskGraph,
                                 invocation: TaskInvocation,
                                 report: ExecutionReport,
                                 failed_nodes: set[str]) -> bool:
        """Under degradation, skip invocations whose suppliers failed.

        Returns True (and records an ``upstream``-classified failure)
        when any input node is in ``failed_nodes``; the invocation's
        own outputs join the failed set so the loss propagates down
        the subtree without ever invoking a tool on missing inputs.
        """
        upstream = sorted({supplier_id for _, supplier_id
                           in invocation.inputs
                           if supplier_id in failed_nodes})
        if invocation.tool_node is not None \
                and invocation.tool_node in failed_nodes:
            upstream.append(invocation.tool_node)
        if not upstream:
            return False
        tool_type = (graph.node(invocation.tool_node).entity_type
                     if invocation.tool_node is not None
                     else COMPOSE_TOOL)
        report.failures.append(InvocationFailure(
            outputs=tuple(invocation.outputs),
            tool_type=tool_type,
            error="inputs unavailable: upstream invocation(s) failed: "
                  + ", ".join(upstream),
            error_class="ExecutionError",
            classification=UPSTREAM,
            attempts=0,
            machine=self.machine))
        failed_nodes.update(invocation.outputs)
        return True

    def execute_node(self, flow: TaskGraph | DynamicFlow,
                     node_id: str, *, force: bool = False
                     ) -> ExecutionReport:
        """Run just the sub-flow producing one node."""
        return self.execute(flow, targets=[node_id], force=force)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _needed_nodes(self, graph: TaskGraph,
                      targets: Sequence[str] | None) -> set[str]:
        if targets is None:
            return set(graph.node_ids())
        needed: set[str] = set()
        for target in targets:
            needed |= graph.subtree(target)
        return needed

    def _check_ready(self, graph: TaskGraph, needed: set[str]) -> None:
        unbound = [
            str(graph.node(node_id)) for node_id in sorted(needed)
            if not graph.suppliers(node_id)
            and not graph.node(node_id).results()
        ]
        if unbound:
            raise ExecutionError(
                "flow is not ready: select instances for leaf nodes "
                + ", ".join(unbound))

    def _cache_for_run(self) -> DerivationCache | None:
        if self.cache is None or self.cache_policy == CACHE_OFF:
            return None
        return self.cache

    @property
    def _cache_reads(self) -> bool:
        return self.cache_policy in (CACHE_REUSE, CACHE_READWRITE) \
            and not self._force

    @property
    def _cache_writes(self) -> bool:
        return self.cache_policy == CACHE_READWRITE

    def _emit_cache_hit(self, graph: TaskGraph,
                        invocation: TaskInvocation, tool_type: str,
                        hit) -> None:
        self.bus.emit(CACHE_HIT, flow=graph.name,
                      node=",".join(invocation.outputs),
                      tool_type=tool_type, machine=self.machine,
                      payload={"instances": list(hit.instance_ids),
                               "saved": hit.saved,
                               "bytes": hit.bytes_saved,
                               "key": hit.key[:16]})

    def _emit_cache_miss(self, graph: TaskGraph,
                         invocation: TaskInvocation, tool_type: str,
                         key: str) -> None:
        self.bus.emit(CACHE_MISS, flow=graph.name,
                      node=",".join(invocation.outputs),
                      tool_type=tool_type, machine=self.machine,
                      payload={"key": key[:16]})

    def _call_tool(self, graph: TaskGraph, invocation: TaskInvocation,
                   tool_type: str, call) -> tuple[Any, CallStats]:
        """Run one tool/composition call under faults and the policy.

        This is the single resilience boundary: the fault plan wraps
        the raw call (so injected crashes/hangs hit the same machinery
        real ones would), and the policy wraps the fault plan (so
        injected transients are retried, injected hangs time out).
        Without a policy the call runs bare and any failure propagates
        unchanged — today's behavior.
        """
        guarded = call
        if self.faults is not None:
            faults, inner = self.faults, call
            guarded = lambda: faults.apply(tool_type, inner)  # noqa: E731
        if self.profiler is not None:
            # inside the policy wrap, outside the fault wrap: every
            # attempt (including injected slowdowns, and watchdog
            # threads running the body) registers the thread that
            # actually executes the tool
            profiler, wrapped = self.profiler, guarded
            guarded = lambda: profiler.run(tool_type, wrapped)  # noqa: E731
        policy = self.resilience
        if policy is None:
            return guarded(), CallStats()
        node = ",".join(invocation.outputs)
        emitting = self.bus.enabled

        def on_retry(attempt: int, error: BaseException, delay: float,
                     classification: str) -> None:
            if emitting:
                self.bus.emit(
                    TOOL_RETRIED, flow=graph.name, node=node,
                    tool_type=tool_type, machine=self.machine,
                    payload={"attempt": attempt,
                             "error": str(error),
                             "error_class": type(error).__name__,
                             "classification": classification,
                             "delay": round(delay, 6)})

        def on_timeout(attempt: int, budget: float) -> None:
            if emitting:
                self.bus.emit(
                    TOOL_TIMED_OUT, flow=graph.name, node=node,
                    tool_type=tool_type, machine=self.machine,
                    payload={"attempt": attempt, "budget": budget})

        def on_quarantine(consecutive: int) -> None:
            if emitting:
                self.bus.emit(
                    TOOL_QUARANTINED, flow=graph.name, node=node,
                    tool_type=tool_type, machine=self.machine,
                    payload={"consecutive_failures": consecutive})

        return policy.run(tool_type, guarded, on_retry=on_retry,
                          on_timeout=on_timeout,
                          on_quarantine=on_quarantine)

    def _failure_entry(self, error: BaseException,
                       outputs: Sequence[str]) -> InvocationFailure:
        """Distill one fatal invocation error into a report entry."""
        return failure_entry(
            error, outputs=tuple(outputs),
            tool_type=getattr(error, "repro_tool_type", None),
            machine=self.machine, policy=self.resilience)

    def _run_invocation(
            self, graph: TaskGraph, invocation: TaskInvocation, *,
            queue_wait: float = 0.0, wave: int | None = None
    ) -> tuple[InvocationResult | None, CachedInvocation | None]:
        """Execute one coalesced invocation, consulting the cache.

        Returns the executed-runs entry and the cache-reuse entry; a
        fully warm invocation yields ``(None, CachedInvocation)``, a
        cold one ``(InvocationResult, None)``, and a partially warm
        fan-out both.  ``queue_wait`` and ``wave`` come from scheduling
        coordinators and flow into the report and the task span.
        """
        attributes: dict[str, Any] = {
            "flow": graph.name,
            "machine": self.machine,
            "outputs": sorted(invocation.outputs),
            "inputs": sorted({supplier_id for _, supplier_id
                              in invocation.inputs}),
        }
        if wave is not None:
            attributes["wave"] = wave
        if queue_wait > 0:
            attributes["queue_wait"] = round(queue_wait, 6)
        with self.tracer.span("task:" + ",".join(invocation.outputs),
                              TASK_SPAN,
                              attributes=attributes) as task_span:
            result, cached = self._run_invocation_inner(
                graph, invocation, task_span, queue_wait=queue_wait)
        return result, cached

    def _run_invocation_inner(
            self, graph: TaskGraph, invocation: TaskInvocation,
            task_span: Any, *, queue_wait: float
    ) -> tuple[InvocationResult | None, CachedInvocation | None]:
        started = time.perf_counter()
        emitting = self.bus.enabled
        output_nodes = [graph.node(o) for o in invocation.outputs]
        output_types = tuple(n.entity_type for n in output_nodes)
        task_span.set(entity_types=sorted(set(output_types)))
        if emitting:
            for node in output_nodes:
                self.bus.emit(NODE_READY, flow=graph.name,
                              node=node.node_id, machine=self.machine,
                              payload={"entity_type": node.entity_type})
        role_ids: dict[str, tuple[str, ...]] = {}
        for role, supplier_id in invocation.inputs:
            supplier = graph.node(supplier_id)
            ids = supplier.results()
            if not ids:
                raise ExecutionError(
                    f"{supplier}: no instances available for role "
                    f"{role!r}")
            role_ids[role] = ids
        tool_type = (graph.node(invocation.tool_node).entity_type
                     if invocation.tool_node is not None else COMPOSE_TOOL)
        task_span.set(tool_type=tool_type)
        if emitting:
            self.bus.emit(TOOL_INVOKED, flow=graph.name,
                          node=",".join(invocation.outputs),
                          tool_type=tool_type, machine=self.machine,
                          payload={"roles": sorted(role_ids)})
        try:
            if invocation.tool_node is None:
                result, cached = self._run_composition(
                    graph, invocation, output_nodes, output_types,
                    role_ids)
            else:
                result, cached = self._run_tool(
                    graph, invocation, output_nodes, output_types,
                    role_ids)
        except Exception as error:
            # Failures outside the resilient call (contract checks,
            # history rejection of corrupt output) still carry the
            # tool type so the ledger and reports can group by tool.
            if getattr(error, "repro_tool_type", None) is None:
                annotate_error(error, tool_type=tool_type)
            raise
        if self._cache_for_run() is not None:
            # cache outcome: every combination served from the cache is
            # a hit; a mix of reused and executed combos is "partial"
            if cached is not None:
                task_span.set(cache="hit" if result is None
                              else "partial")
            elif self._cache_reads:
                task_span.set(cache="miss")
        if cached is not None:
            task_span.set(reused=list(cached.instances))
        if result is not None:
            result.duration = time.perf_counter() - started
            result.queue_wait = queue_wait
            task_span.set(created=list(result.created),
                          invocation_id=result.invocation_id)
            if emitting:
                payload: dict[str, Any] = {
                    "runs": result.runs,
                    "created": list(result.created)}
                if queue_wait > 0:
                    payload["queue_wait"] = round(queue_wait, 6)
                self.bus.emit(
                    COMPOSITION_RUN if invocation.tool_node is None
                    else TOOL_FINISHED,
                    flow=graph.name, node=",".join(invocation.outputs),
                    tool_type=tool_type,
                    invocation_id=result.invocation_id,
                    machine=self.machine, duration=result.duration,
                    payload=payload)
        return result, cached

    def _run_composition(
            self, graph: TaskGraph, invocation: TaskInvocation,
            output_nodes, output_types, role_ids
    ) -> tuple[InvocationResult | None, CachedInvocation | None]:
        # Composed invocations have exactly one output by construction.
        node = output_nodes[0]
        compose = self.registry.composition(node.entity_type)
        cache = self._cache_for_run()
        created: list[str] = []
        reused: list[str] = []
        runs = 0
        retries = 0
        timeouts = 0
        hits = 0
        saved = 0.0
        bytes_saved = 0
        invocation_id: str | None = None
        for combo in _combinations(role_ids):
            key = None
            if cache is not None:
                key = cache.composition_key(node.entity_type, combo)
                if self._cache_reads:
                    with self.tracer.span(
                            f"cache:{node.entity_type}", CACHE_SPAN,
                            attributes={"key": key[:16]}) as lookup:
                        hit = cache.fetch(key, (node.entity_type,))
                        lookup.set(outcome="hit" if hit is not None
                                   else "miss")
                    if hit is not None:
                        reused.extend(hit.instance_ids)
                        hits += 1
                        saved += hit.saved
                        bytes_saved += hit.bytes_saved
                        self._emit_cache_hit(graph, invocation,
                                             COMPOSE_TOOL, hit)
                        continue
                    self._emit_cache_miss(graph, invocation,
                                          COMPOSE_TOOL, key)
            with self._lock:
                if invocation_id is None:
                    invocation_id = self.db.new_invocation_id()
                inputs = {role: self.db.data(ref)
                          for role, ref in combo.items()}
            with self.tracer.span(
                    f"compose:{node.entity_type}", COMPOSE_SPAN,
                    attributes={"entity_type": node.entity_type}
                    ) as compose_span:
                run_started = time.perf_counter()
                data, call_stats = self._call_tool(
                    graph, invocation, COMPOSE_TOOL,
                    lambda: compose(inputs))
                run_elapsed = time.perf_counter() - run_started
                runs += 1
                retries += call_stats.retries
                timeouts += call_stats.timeouts
                if call_stats.retries:
                    compose_span.set(retries=call_stats.retries)
                with self._lock:
                    instance = self.db.record(
                        node.entity_type, data,
                        DerivationRecord.make(None, combo,
                                              invocation_id),
                        user=self.user, name=node.label,
                        annotations={"flow": graph.name,
                                     "machine": self.machine},
                        trace=compose_span.context)
                compose_span.set(created=[instance.instance_id],
                                 invocation_id=invocation_id)
            created.append(instance.instance_id)
            if key is not None and self._cache_writes:
                cache.store(key,
                            [(node.entity_type, instance.instance_id)],
                            run_elapsed)
        node.produced = node.produced + tuple(reused) + tuple(created)
        result = None
        if runs:
            result = InvocationResult(
                invocation_id or "", None, (),
                f"compose:{node.entity_type}", runs, tuple(created),
                {node.node_id: tuple(created)}, 0.0, self.machine,
                retries=retries, timeouts=timeouts)
        cached = None
        if hits:
            cached = CachedInvocation(
                None, invocation.outputs, hits, tuple(reused),
                {node.node_id: tuple(reused)}, saved, bytes_saved,
                self.machine)
        return result, cached

    def _run_tool(
            self, graph: TaskGraph, invocation: TaskInvocation,
            output_nodes, output_types, role_ids
    ) -> tuple[InvocationResult | None, CachedInvocation | None]:
        tool_node = graph.node(invocation.tool_node)
        tool_ids = tool_node.results()
        if not tool_ids:
            raise ExecutionError(
                f"{tool_node}: no tool instance available")
        cache = self._cache_for_run()
        tool_type = tool_node.entity_type
        created_all: list[str] = []
        reused_all: list[str] = []
        outputs_by_node: dict[str, list[str]] = {
            n.node_id: [] for n in output_nodes}
        reused_by_node: dict[str, list[str]] = {
            n.node_id: [] for n in output_nodes}
        runs = 0
        retries = 0
        timeouts = 0
        hits = 0
        saved = 0.0
        bytes_saved = 0
        invocation_id: str | None = None
        encapsulation_name = ""
        for tool_id in tool_ids:
            with self._lock:
                tool_instance = self.db.get(tool_id)
                tool_data = self.db.data(tool_instance)
            enc = self.registry.resolve(tool_instance.entity_type, tool_id)
            encapsulation_name = enc.name
            ctx = ToolContext(
                tool_type=tool_instance.entity_type,
                tool_instance_id=tool_id,
                tool_data=tool_data,
                output_types=output_types,
                options=enc.options(),
                user=self.user,
            )
            if enc.batch:
                combos: list[dict[str, Any]] = [
                    {role: list(ids) for role, ids in role_ids.items()}]
            else:
                combos = list(_combinations(role_ids))
            for combo in combos:
                key = None
                if cache is not None:
                    key = cache.tool_run_key(tool_id, combo,
                                             sorted(set(output_types)))
                    if self._cache_reads:
                        with self.tracer.span(
                                f"cache:{tool_type}", CACHE_SPAN,
                                attributes={"key": key[:16],
                                            "tool": tool_id}) as lookup:
                            hit = cache.fetch(
                                key, sorted(set(output_types)))
                            lookup.set(outcome="hit" if hit is not None
                                       else "miss")
                        if hit is not None:
                            grouped = hit.ids_by_type()
                            for node in output_nodes:
                                ids = grouped.get(node.entity_type, [])
                                instance_id = (ids.pop(0) if ids
                                               else hit.instance_ids[0])
                                reused_by_node[node.node_id].append(
                                    instance_id)
                                reused_all.append(instance_id)
                            hits += 1
                            saved += hit.saved
                            bytes_saved += hit.bytes_saved
                            self._emit_cache_hit(graph, invocation,
                                                 tool_type, hit)
                            continue
                        self._emit_cache_miss(graph, invocation,
                                              tool_type, key)
                with self._lock:
                    if invocation_id is None:
                        invocation_id = self.db.new_invocation_id()
                    inputs = {
                        role: ([self.db.data(r) for r in ref]
                               if isinstance(ref, list)
                               else self.db.data(ref))
                        for role, ref in combo.items()
                    }
                with self.tracer.span(
                        f"tool:{tool_type}", TOOL_SPAN,
                        attributes={"tool": tool_id,
                                    "tool_type": tool_type,
                                    "encapsulation": enc.name}
                        ) as tool_span:
                    run_started = time.perf_counter()
                    result, call_stats = self._call_tool(
                        graph, invocation, tool_type,
                        lambda: enc.run(ctx, inputs))
                    run_elapsed = time.perf_counter() - run_started
                    runs += 1
                    retries += call_stats.retries
                    timeouts += call_stats.timeouts
                    if call_stats.retries:
                        tool_span.set(retries=call_stats.retries)
                    if call_stats.timeouts:
                        tool_span.set(timeouts=call_stats.timeouts)
                    produced = _normalize_result(result, output_types,
                                                 enc.name)
                    record_inputs = _derivation_inputs(combo)
                    combo_created: list[tuple[str, str]] = []
                    for node in output_nodes:
                        data = produced[node.entity_type]
                        with self._lock:
                            instance = self.db.record(
                                node.entity_type, data,
                                DerivationRecord(tool_id, record_inputs,
                                                 invocation_id),
                                user=self.user, name=node.label,
                                annotations={"flow": graph.name,
                                             "machine": self.machine},
                                trace=tool_span.context)
                        outputs_by_node[node.node_id].append(
                            instance.instance_id)
                        created_all.append(instance.instance_id)
                        combo_created.append(
                            (node.entity_type, instance.instance_id))
                    tool_span.set(
                        created=[i for _, i in combo_created])
                if key is not None and self._cache_writes:
                    cache.store(key, combo_created, run_elapsed)
        for node in output_nodes:
            node.produced = node.produced \
                + tuple(reused_by_node[node.node_id]) \
                + tuple(outputs_by_node[node.node_id])
        result = None
        if runs:
            result = InvocationResult(
                invocation_id or "", tool_type, tuple(tool_ids),
                encapsulation_name, runs, tuple(created_all),
                {k: tuple(v) for k, v in outputs_by_node.items()}, 0.0,
                self.machine, retries=retries, timeouts=timeouts)
        cached = None
        if hits:
            cached = CachedInvocation(
                tool_type, invocation.outputs, hits, tuple(reused_all),
                {k: tuple(v) for k, v in reused_by_node.items()},
                saved, bytes_saved, self.machine)
        return result, cached


def _combinations(role_ids: dict[str, tuple[str, ...]]):
    """Cartesian product over roles with multiple selected instances.

    Section 4.1: selecting a set of instances causes *"the task to be run
    for each data instance specified"*; with several multi-selected roles
    the task runs for each combination.
    """
    roles = sorted(role_ids)
    for values in itertools.product(*(role_ids[r] for r in roles)):
        yield dict(zip(roles, values))


def _derivation_inputs(combo: dict[str, Any]
                       ) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    for role, ref in combo.items():
        if isinstance(ref, list):
            pairs.extend((role, r) for r in ref)
        else:
            pairs.append((role, ref))
    return tuple(sorted(pairs))


def _normalize_result(result: Any, output_types: tuple[str, ...],
                      encapsulation_name: str) -> dict[str, Any]:
    """Map an encapsulation return value onto the expected output types."""
    if isinstance(result, dict) and set(result) == set(output_types):
        return result
    if len(output_types) == 1:
        return {output_types[0]: result}
    raise ExecutionError(
        f"encapsulation {encapsulation_name!r} must return a dict keyed "
        f"by output types {sorted(output_types)}, got "
        f"{type(result).__name__}")
