"""Derivation-keyed incremental re-execution cache.

Every design object already carries a :class:`DerivationRecord` (the
immediate tool and data inputs that created it — paper section 1) and
the datastore is content-addressed, so the ingredients of Make/Dask
style memoization are free: a *derivation key* — tool type, tool data
content, encapsulation fingerprint, canonical content digests of every
bound input and the output-type signature — uniquely identifies one
tool run.  The :class:`DerivationCache` maintains a key -> instance-ids
index over a :class:`~repro.history.database.HistoryDatabase`; an
executor that is about to run a tool asks the cache first, and on a hit
reuses the recorded instances instead of calling the tool again.

A hit is only taken when every remembered instance is still up to date
(:func:`repro.history.consistency.all_up_to_date`), so version-wise
staleness — an edited input anywhere upstream — silently degrades to a
miss and a fresh run, exactly the paper's consistency-maintenance rules
applied in reverse.

The index is populated three ways:

* **on record** — the cache registers as a record listener on the
  database, so every instance written while the cache is attached is
  indexed immediately;
* **lazily for pre-existing histories** — the first lookup sweeps any
  instances the listener never saw (e.g. a history loaded from disk)
  and indexes their recorded derivations under current fingerprints;
* **from a persisted snapshot** — :mod:`repro.persistence` saves the
  index as ``cache.json``; a snapshot is only believed when the current
  encapsulation registry's :meth:`signature` matches the one it was
  built against, otherwise it is dropped and rebuilt lazily.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..errors import ExecutionError
from ..history.consistency import all_up_to_date
from ..history.database import HistoryDatabase
from ..history.instance import EntityInstance
from .encapsulation import EncapsulationRegistry, fingerprint_callable
from .shared_memo import SharedDerivationMemo

# -- cache policies ----------------------------------------------------------
CACHE_OFF = "off"            #: no lookups, no indexing of this run
CACHE_REUSE = "reuse"        #: reuse hits; do not index this run's results
CACHE_READWRITE = "readwrite"  #: reuse hits and index fresh results

CACHE_POLICIES = (CACHE_OFF, CACHE_REUSE, CACHE_READWRITE)


def normalize_policy(policy: str | None) -> str:
    """Validate a ``cache=`` policy value (``None`` means off)."""
    if policy is None:
        return CACHE_OFF
    if policy not in CACHE_POLICIES:
        raise ExecutionError(
            f"unknown cache policy {policy!r}; choose from "
            f"{', '.join(CACHE_POLICIES)}")
    return policy


@dataclass(frozen=True)
class CacheHit:
    """One remembered tool run the executor may coalesce.

    ``outputs`` preserves the recording order of ``(entity_type,
    instance_id)`` pairs, so multi-output invocations (Fig. 5) can map
    each reused instance back onto the right flow node.
    """

    key: str
    outputs: tuple[tuple[str, str], ...]
    saved: float
    bytes_saved: int

    @property
    def instance_ids(self) -> tuple[str, ...]:
        return tuple(instance_id for _, instance_id in self.outputs)

    def ids_by_type(self) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for entity_type, instance_id in self.outputs:
            grouped.setdefault(entity_type, []).append(instance_id)
        return grouped


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (process lifetime)."""

    hits: int = 0
    misses: int = 0
    bytes_saved: int = 0
    time_saved: float = 0.0
    invalidated: int = 0

    def render(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (f"derivation cache: {self.hits} hits, "
                f"{self.misses} misses ({rate:.0f}% hit rate), "
                f"{self.bytes_saved} bytes saved, "
                f"{self.time_saved * 1e3:.2f}ms saved, "
                f"{self.invalidated} stale entries skipped")


@dataclass
class _Entry:
    """All remembered runs for one derivation key, newest last."""

    groups: list[tuple[tuple[str, str], ...]] = field(default_factory=list)
    duration: float = 0.0


class DerivationCache:
    """Key -> instance-ids index enabling incremental re-execution."""

    def __init__(self, db: HistoryDatabase,
                 registry: EncapsulationRegistry) -> None:
        self.db = db
        self.registry = registry
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._seen: set[str] = set()
        self._dirty: list[EntityInstance] = []
        self._synced = False
        self._attached = False
        self._pending: dict[str, Any] | None = None
        self.memo: SharedDerivationMemo | None = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self) -> "DerivationCache":
        """Start indexing every instance the database records."""
        if not self._attached:
            self.db.add_record_listener(self._on_record)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.db.remove_record_listener(self._on_record)
            self._attached = False

    def attach_shared_memo(
            self, path: str | pathlib.Path) -> SharedDerivationMemo:
        """Share remembered runs with other processes via ``path``.

        Freshly stored runs are appended to the memo log and entries
        other processes appended are absorbed on every :meth:`sync` —
        concurrent runs (and procpool coordinators of concurrent runs)
        observe each other's hits.  Memo entries naming instances this
        history has never recorded are ignored at :meth:`fetch` time.
        """
        with self._lock:
            self.memo = SharedDerivationMemo(
                path, lambda: self.registry.signature())
            return self.memo

    def _on_record(self, instance: EntityInstance) -> None:
        """Record listener: capture freshly written instances.

        Sibling outputs of one multi-output run arrive one at a time, so
        keys (which embed the full output signature) cannot be computed
        here; instances queue up and are grouped and indexed in batch at
        the next :meth:`sync`.
        """
        with self._lock:
            self._dirty.append(instance)

    # ------------------------------------------------------------------
    # derivation keys
    # ------------------------------------------------------------------
    def _data_digest(self, instance_id: str) -> str:
        instance = self.db.get(instance_id)
        if instance.data_ref is None:
            return ""
        # legacy short refs resolve to full-length digests, so keys
        # never inherit the old truncation collisions
        return self.db.datastore.resolve(instance.data_ref)

    def tool_run_key(self, tool_id: str,
                     combo: Mapping[str, Any],
                     output_types: Iterable[str]) -> str:
        """Derivation key for one tool call.

        ``combo`` maps role names to an input instance id (fan-out mode)
        or a list of them (batch mode).
        """
        tool = self.db.get(tool_id)
        encapsulation = self.registry.resolve(tool.entity_type, tool_id)
        return self._key(
            kind="tool",
            tool_type=tool.entity_type,
            tool_digest=self._data_digest(tool_id),
            code=encapsulation.fingerprint(),
            combo=combo,
            output_types=output_types)

    def composition_key(self, entity_type: str,
                        combo: Mapping[str, Any]) -> str:
        """Derivation key for one implicit-composition run."""
        compose = self.registry.composition(entity_type)
        return self._key(
            kind="compose",
            tool_type=entity_type,
            tool_digest="",
            code=fingerprint_callable(compose),
            combo=combo,
            output_types=(entity_type,))

    def _key(self, *, kind: str, tool_type: str, tool_digest: str,
             code: str, combo: Mapping[str, Any],
             output_types: Iterable[str]) -> str:
        inputs = []
        for role in sorted(combo):
            ref = combo[role]
            ids = ref if isinstance(ref, (list, tuple)) else (ref,)
            inputs.append(
                [role, sorted(self._data_digest(i) for i in ids)])
        spec = json.dumps(
            {"kind": kind, "tool": tool_type, "tool_data": tool_digest,
             "code": code, "inputs": inputs,
             "outputs": sorted(output_types)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(spec.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def _key_store(self):
        """The history store's persistent key index, when it has one."""
        store = getattr(self.db, "store", None)
        if store is not None and store.supports_key_index:
            return store
        return None

    def _load_key_index(self) -> bool:
        """Adopt the store-persisted key index if its signature holds.

        The SQLite backend persists key -> outputs rows next to the
        instances; when the encapsulation registry's signature matches
        the one the rows were built against, reopening a history skips
        the first-use full sweep entirely.
        """
        store = self._key_store()
        if store is None:
            return False
        if store.key_index_signature() != self.registry.signature():
            return False
        for key, pairs, duration in store.iter_key_groups():
            entry = self._entries.setdefault(key, _Entry())
            if duration > entry.duration:
                entry.duration = duration
            members = frozenset(pairs)
            if not any(frozenset(g) == members for g in entry.groups):
                entry.groups.append(pairs)
            self._seen.update(instance_id for _, instance_id in pairs)
        return True

    def sync(self) -> int:
        """Materialize the index from captured and pre-existing records.

        Drains the record listener's queue and — on first use — sweeps
        the whole database, so histories that predate the cache (or were
        loaded from disk) participate.  Instances are grouped into tool
        runs by ``(invocation, tool, inputs)`` before keys are computed,
        so multi-output siblings land in one group under one key.
        Returns the number of instances newly indexed.

        On a store with a persistent key index (the SQLite backend) the
        first-use sweep is replaced by loading that index when its
        registry signature still matches; a full sweep (re)builds it.
        """
        with self._lock:
            self._absorb_pending()
            self._absorb_memo()
            batch: Iterable[EntityInstance] = self._dirty
            self._dirty = []
            if not self._synced:
                self._synced = True
                if not self._load_key_index():
                    batch = self.db.iter_instances()
                    store = self._key_store()
                    if store is not None:
                        store.reset_key_index(self.registry.signature())
            groups: dict[tuple[Any, ...], list[EntityInstance]] = {}
            added = 0
            for instance in batch:
                if instance.instance_id in self._seen:
                    continue
                self._seen.add(instance.instance_id)
                added += 1
                derivation = instance.derivation
                if derivation is None:
                    continue
                groups.setdefault(
                    (derivation.invocation, derivation.tool,
                     derivation.inputs), []).append(instance)
            for (_, tool, inputs), members in groups.items():
                members.sort(key=lambda i: (i.timestamp, i.instance_id))
                combo: dict[str, list[str]] = {}
                for role, input_id in inputs:
                    combo.setdefault(role, []).append(input_id)
                try:
                    if tool is None:
                        key = self.composition_key(
                            members[0].entity_type, combo)
                    else:
                        key = self.tool_run_key(
                            tool, combo,
                            sorted({m.entity_type for m in members}))
                except Exception:
                    # underivable record (unregistered encapsulation,
                    # vanished blob, ...): stays uncached
                    continue
                pairs = tuple((m.entity_type, m.instance_id)
                              for m in members)
                self._remember(key, pairs)
            return added

    def _remember(self, key: str,
                  pairs: tuple[tuple[str, str], ...]) -> None:
        entry = self._entries.setdefault(key, _Entry())
        members = frozenset(pairs)
        if not any(frozenset(g) == members for g in entry.groups):
            entry.groups.append(pairs)
        store = self._key_store()
        if store is not None and self._synced:
            store.put_key_group(key, pairs, entry.duration)

    def _absorb_memo(self) -> None:
        """Adopt runs other processes published to the shared memo.

        Memo entries feed ``_entries`` only — never ``_seen`` or the
        store-persisted key index, which both describe *this* history's
        records.  Entries for instances absent from this history stay
        inert until :meth:`fetch` skips them.
        """
        if self.memo is None:
            return
        try:
            polled = self.memo.poll()
        except OSError:
            return  # unreadable memo: degrade to a process-local cache
        for key, pairs, duration in polled:
            entry = self._entries.setdefault(key, _Entry())
            if duration > entry.duration:
                entry.duration = duration
            members = frozenset(pairs)
            if not any(frozenset(g) == members for g in entry.groups):
                entry.groups.append(pairs)

    def invalidate(self) -> None:
        """Drop the whole index (it will lazily rebuild on next use)."""
        with self._lock:
            self._entries.clear()
            self._seen.clear()
            self._dirty = []
            self._synced = False
            self._pending = None
            if self.memo is not None:
                self.memo.rewind()
            store = self._key_store()
            if store is not None:
                # blank signature: the next sync() sweeps and rebuilds
                # instead of believing the dropped rows
                store.reset_key_index("")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def fetch(self, key: str,
              output_types: Iterable[str]) -> CacheHit | None:
        """Newest remembered run for ``key`` that is still reusable.

        Validates that the remembered instances exist, are up to date
        version-wise, and cover the requested output types; stale or
        incomplete groups are skipped (and counted as invalidated).
        Updates hit/miss statistics.
        """
        wanted = sorted(output_types)
        with self._lock:
            self.sync()
            entry = self._entries.get(key)
            groups = list(entry.groups) if entry is not None else []
            duration = entry.duration if entry is not None else 0.0

        def recency(group: tuple[tuple[str, str], ...]) -> float:
            # rank by actual member timestamps, not list position: a
            # persisted snapshot may interleave with swept history in
            # either order
            stamps = [self.db.get(instance_id).timestamp
                      for _, instance_id in group
                      if instance_id in self.db]
            return max(stamps) if stamps else -1.0

        for group in sorted(groups, key=recency, reverse=True):
            types = sorted(entity_type for entity_type, _ in group)
            if types != wanted:
                continue
            ids = [instance_id for _, instance_id in group]
            if any(instance_id not in self.db for instance_id in ids):
                # a shared-memo entry from a run whose records this
                # history never received: unusable here, not stale
                continue
            if not all_up_to_date(self.db, ids):
                with self._lock:
                    self.stats.invalidated += 1
                continue
            bytes_saved = 0
            for instance_id in ids:
                ref = self.db.get(instance_id).data_ref
                if ref is not None:
                    bytes_saved += self.db.datastore.size(ref)
            with self._lock:
                self.stats.hits += 1
                self.stats.bytes_saved += bytes_saved
                self.stats.time_saved += duration
            return CacheHit(key, tuple(group), duration, bytes_saved)
        with self._lock:
            self.stats.misses += 1
        return None

    def store(self, key: str, outputs: Iterable[tuple[str, str]],
              duration: float = 0.0) -> None:
        """Index one freshly executed run under its key.

        The record listener has usually indexed the instances already;
        this entry point additionally remembers the measured duration
        (the basis of ``time saved`` reporting) and covers databases the
        cache is not attached to.
        """
        group = tuple(outputs)
        if not group:
            return
        with self._lock:
            self.sync()
            self._seen.update(instance_id for _, instance_id in group)
            entry = self._entries.setdefault(key, _Entry())
            if duration > 0.0:
                entry.duration = duration
            self._remember(key, group)
            if self.memo is not None:
                try:
                    self.memo.append(key, group, duration)
                except OSError:
                    pass  # unwritable memo: stay process-local

    # ------------------------------------------------------------------
    # persistence (used by repro.persistence)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            self.sync()
            return {
                "signature": self.registry.signature(),
                "seen": sorted(self._seen),
                "entries": {
                    key: {"duration": entry.duration,
                          "groups": [[[t, i] for t, i in group]
                                     for group in entry.groups]}
                    for key, entry in sorted(self._entries.items())
                },
            }

    def restore(self, payload: dict[str, Any]) -> None:
        """Adopt a persisted index snapshot.

        Deferred until first use: encapsulations are registered *after*
        an environment loads, so the signature check must wait for them.
        """
        with self._lock:
            self._pending = payload

    def _absorb_pending(self) -> None:
        payload, self._pending = self._pending, None
        if not payload:
            return
        if payload.get("signature") != self.registry.signature():
            # encapsulation code changed since the snapshot: every key
            # in it embeds a dead fingerprint, so rebuild from history
            return
        for key, spec in payload.get("entries", {}).items():
            entry = self._entries.setdefault(key, _Entry())
            entry.duration = float(spec.get("duration", 0.0))
            for group in spec.get("groups", ()):
                pairs = tuple((entity_type, instance_id)
                              for entity_type, instance_id in group)
                if pairs and pairs not in entry.groups:
                    entry.groups.append(pairs)
        self._seen.update(payload.get("seen", ()))

    def __repr__(self) -> str:
        return (f"DerivationCache({len(self._entries)} keys, "
                f"{len(self._seen)} instances indexed)")
