"""Resilient execution: retries, timeouts, and the circuit breaker.

The paper's history database is only a faithful derivation record if
invocations fail *atomically* and the framework survives misbehaving
tools.  This module is the policy layer the executors consult around
every encapsulation invocation:

* **bounded retries** for *transient* failures, with deterministic
  clock-driven exponential backoff plus seeded jitter (same seed, same
  delays — reproducible down to the sleep schedule);
* **per-invocation timeouts** enforced by a watchdog thread: the tool
  call runs on a disposable daemon thread and is abandoned when it
  exceeds its budget, surfacing as a (transient, retryable)
  :class:`~repro.errors.InvocationTimeoutError`.  The abandoned call
  can never write history — recording happens on the executor thread
  only after a successful return;
* **transient-vs-permanent classification**: framework errors (schema,
  encapsulation contract, history rejection) are permanent and never
  retried; timeouts, :class:`~repro.errors.TransientToolError` and
  OS-flavoured flakiness are transient;
* a **circuit breaker** that quarantines a tool type after K
  consecutive invocation failures, so a dead license server fails fast
  instead of burning a retry budget per task — paired with *graceful
  degradation*: with ``degrade=True`` the executors record failed
  invocations in the :class:`~repro.execution.executor.ExecutionReport`
  and keep executing everything that does not depend on them, instead
  of aborting the whole flow.

The policy object is shared: a coordinator (parallel/scheduled
executor) hands the same instance to every worker lane, so breaker
state is global to the run, guarded by one lock.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable

from ..errors import (ExecutionError, InvocationTimeoutError,
                      ToolQuarantinedError, TransientToolError)

# -- failure classifications -------------------------------------------------
TRANSIENT = "transient"      #: retry may succeed (flaky tool, timeout)
PERMANENT = "permanent"      #: retrying is pointless (bad code/data)
QUARANTINED = "quarantined"  #: failed fast: the breaker was open
UPSTREAM = "upstream"        #: inputs missing because a supplier failed

CLASSIFICATIONS = (TRANSIENT, PERMANENT, QUARANTINED, UPSTREAM)

#: Exception types retried by default.  ``TransientToolError`` is the
#: explicit marker (fault injection and encapsulations raise it);
#: timeouts and OS-level flakiness are transient by nature.  Framework
#: contract violations (``ExecutionError`` and friends) stay permanent.
DEFAULT_TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    TransientToolError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
)

#: Consecutive invocation failures before a tool type is quarantined.
DEFAULT_QUARANTINE_AFTER = 3


@dataclass(frozen=True)
class RetryRule:
    """Retry/timeout tuning for one tool type (or the default)."""

    retries: int = 0
    #: Per-invocation watchdog budget in seconds (``None``: unlimited).
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Jitter fraction: delays stretch by up to ``jitter`` of themselves.
    jitter: float = 0.1


@dataclass
class CallStats:
    """What one resilient call cost: attempts, retries, timeouts."""

    attempts: int = 1
    retries: int = 0
    timeouts: int = 0
    delays: tuple[float, ...] = ()


@dataclass(frozen=True)
class InvocationFailure:
    """One invocation that failed for good (post-retry), as recorded in
    a degraded :class:`~repro.execution.executor.ExecutionReport`."""

    outputs: tuple[str, ...]
    tool_type: str | None
    error: str
    error_class: str
    classification: str
    attempts: int = 1
    retries: int = 0
    timeouts: int = 0
    machine: str = "local"

    def render(self) -> str:
        tool = self.tool_type or "<compose>"
        return (f"{','.join(self.outputs)}: [{self.classification}] "
                f"{tool} failed after {self.attempts} attempt(s): "
                f"{self.error_class}: {self.error}")


def annotate_error(error: BaseException, *,
                   tool_type: str | None = None,
                   classification: str | None = None,
                   attempts: int | None = None,
                   retries: int | None = None,
                   timeouts: int | None = None) -> BaseException:
    """Stamp resilience metadata onto an exception (best effort).

    The ledger and the degraded-report path read these back with
    ``getattr``; exceptions that reject attributes are left alone.
    """
    stamps = {"repro_tool_type": tool_type,
              "repro_classification": classification,
              "repro_attempts": attempts,
              "repro_retries": retries,
              "repro_timeouts": timeouts}
    for name, value in stamps.items():
        if value is None:
            continue
        try:
            setattr(error, name, value)
        except (AttributeError, TypeError):  # __slots__ or frozen
            break
    return error


class CircuitBreaker:
    """Per-tool-type consecutive-failure counter with a quarantine set.

    ``record_failure`` / ``record_success`` are called once per
    *invocation outcome* (after retries), never per attempt, so one
    flaky-but-recovering tool does not trip the breaker.  Thread-safe:
    parallel lanes share one breaker through the shared policy.
    """

    def __init__(self,
                 threshold: int = DEFAULT_QUARANTINE_AFTER) -> None:
        if threshold < 1:
            raise ExecutionError(
                f"quarantine threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._consecutive: dict[str, int] = {}
        self._open: set[str] = set()
        self._lock = threading.Lock()

    def record_failure(self, tool_type: str) -> bool:
        """Count one failed invocation; True when this opens the breaker."""
        with self._lock:
            count = self._consecutive.get(tool_type, 0) + 1
            self._consecutive[tool_type] = count
            if count >= self.threshold and tool_type not in self._open:
                self._open.add(tool_type)
                return True
            return False

    def record_success(self, tool_type: str) -> None:
        with self._lock:
            self._consecutive[tool_type] = 0

    def is_open(self, tool_type: str) -> bool:
        with self._lock:
            return tool_type in self._open

    def failures(self, tool_type: str) -> int:
        with self._lock:
            return self._consecutive.get(tool_type, 0)

    def open_types(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._open))

    def reset(self, tool_type: str | None = None) -> None:
        """Lift the quarantine (one tool type, or everything)."""
        with self._lock:
            if tool_type is None:
                self._consecutive.clear()
                self._open.clear()
            else:
                self._consecutive.pop(tool_type, None)
                self._open.discard(tool_type)


def call_with_timeout(call: Callable[[], Any],
                      timeout: float | None) -> Any:
    """Run ``call`` under a watchdog; abandon it past ``timeout``.

    The call runs on a disposable daemon thread.  On timeout the thread
    is left behind (Python cannot safely kill it) and an
    :class:`~repro.errors.InvocationTimeoutError` is raised on the
    caller; whatever the abandoned call eventually returns is dropped,
    so it can never reach the history database — recording only happens
    on the executor thread after a successful, in-budget return.
    """
    if timeout is None or timeout <= 0:
        return call()
    outcome: list[Any] = []
    failure: list[BaseException] = []
    finished = threading.Event()

    def runner() -> None:
        try:
            outcome.append(call())
        except BaseException as error:  # delivered to the caller below
            failure.append(error)
        finally:
            finished.set()

    watchdog = threading.Thread(target=runner, daemon=True,
                                name="repro-tool-watchdog")
    watchdog.start()
    if not finished.wait(timeout):
        raise InvocationTimeoutError(
            f"invocation exceeded its {timeout:g}s watchdog budget and "
            "was abandoned")
    if failure:
        raise failure[0]
    return outcome[0]


class ResiliencePolicy:
    """Retry/timeout/quarantine policy the executors consult per call.

    One instance is intended to be shared across an environment's
    executors (and across the lanes of one coordinated run): the
    circuit-breaker state and the seeded backoff schedule live here.

    ``sleep`` is injectable so tests (and the deterministic chaos
    harness) can run the full backoff schedule without wall-clock
    delays while still observing the exact planned delays.
    """

    def __init__(self, *, retries: int = 0,
                 timeout: float | None = None,
                 quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
                 degrade: bool = False,
                 seed: int = 0,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 2.0,
                 jitter: float = 0.1,
                 transient_errors: tuple[type[BaseException], ...] =
                 DEFAULT_TRANSIENT_ERRORS,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if retries < 0:
            raise ExecutionError(f"retries must be >= 0, got {retries}")
        self._default = RetryRule(
            retries=retries, timeout=timeout, backoff_base=backoff_base,
            backoff_factor=backoff_factor, backoff_max=backoff_max,
            jitter=jitter)
        self._rules: dict[str, RetryRule] = {}
        self.breaker = CircuitBreaker(quarantine_after)
        #: Record failures into the report and keep going instead of
        #: aborting the flow (partial ``ExecutionReport``s).
        self.degrade = degrade
        self.seed = seed
        self.transient_errors = tuple(transient_errors)
        self.sleep = sleep

    # -- configuration ---------------------------------------------------
    def override(self, tool_type: str, *, retries: int | None = None,
                 timeout: float | None = None,
                 backoff_base: float | None = None,
                 backoff_factor: float | None = None,
                 backoff_max: float | None = None,
                 jitter: float | None = None) -> "ResiliencePolicy":
        """Tune one tool type; unspecified knobs keep the defaults."""
        updates = {name: value for name, value in (
            ("retries", retries), ("timeout", timeout),
            ("backoff_base", backoff_base),
            ("backoff_factor", backoff_factor),
            ("backoff_max", backoff_max), ("jitter", jitter))
            if value is not None}
        self._rules[tool_type] = replace(
            self._rules.get(tool_type, self._default), **updates)
        return self

    def rule_for(self, tool_type: str) -> RetryRule:
        return self._rules.get(tool_type, self._default)

    def quarantined(self) -> tuple[str, ...]:
        return self.breaker.open_types()

    # -- classification and backoff --------------------------------------
    def classify(self, error: BaseException) -> str:
        """``transient`` / ``permanent`` / ``quarantined`` for one error."""
        if isinstance(error, ToolQuarantinedError):
            return QUARANTINED
        if isinstance(error, self.transient_errors):
            return TRANSIENT
        return PERMANENT

    def backoff_delay(self, tool_type: str, attempt: int) -> float:
        """Planned delay before retrying ``attempt`` (1-based).

        Exponential base schedule capped at ``backoff_max``, stretched
        by deterministic jitter derived from ``(seed, tool type,
        attempt)`` — the same run replays the same sleep schedule.
        """
        rule = self.rule_for(tool_type)
        base = min(rule.backoff_max,
                   rule.backoff_base * rule.backoff_factor
                   ** max(0, attempt - 1))
        token = f"{self.seed}\x1f{tool_type}\x1f{attempt}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return base * (1.0 + rule.jitter * fraction)

    # -- the guarded call -------------------------------------------------
    def run(self, tool_type: str, call: Callable[[], Any], *,
            on_retry: Callable[[int, BaseException, float, str], None]
            | None = None,
            on_timeout: Callable[[int, float], None] | None = None,
            on_quarantine: Callable[[int], None] | None = None
            ) -> tuple[Any, CallStats]:
        """Execute ``call`` under this policy.

        Returns ``(result, CallStats)`` on success.  On final failure
        the original exception is re-raised, annotated with the tool
        type, attempt count and classification (see
        :func:`annotate_error`), after the breaker counted the failure.
        """
        if self.breaker.is_open(tool_type):
            raise annotate_error(
                ToolQuarantinedError(
                    f"tool type {tool_type!r} is quarantined after "
                    f"{self.breaker.failures(tool_type)} consecutive "
                    "failures"),
                tool_type=tool_type, classification=QUARANTINED,
                attempts=0, retries=0, timeouts=0)
        rule = self.rule_for(tool_type)
        stats = CallStats(attempts=0)
        while True:
            stats.attempts += 1
            try:
                result = call_with_timeout(call, rule.timeout)
            except BaseException as error:
                if isinstance(error, InvocationTimeoutError):
                    stats.timeouts += 1
                    if on_timeout is not None:
                        on_timeout(stats.attempts, rule.timeout or 0.0)
                classification = self.classify(error)
                exhausted = stats.attempts > rule.retries
                if classification != TRANSIENT or exhausted:
                    opened = self.breaker.record_failure(tool_type)
                    if opened and on_quarantine is not None:
                        on_quarantine(self.breaker.failures(tool_type))
                    raise annotate_error(
                        error, tool_type=tool_type,
                        classification=classification,
                        attempts=stats.attempts, retries=stats.retries,
                        timeouts=stats.timeouts)
                delay = self.backoff_delay(tool_type, stats.attempts)
                stats.retries += 1
                stats.delays += (delay,)
                if on_retry is not None:
                    on_retry(stats.attempts, error, delay,
                             classification)
                self.sleep(delay)
                continue
            self.breaker.record_success(tool_type)
            return result, stats

    def __repr__(self) -> str:
        rule = self._default
        return (f"ResiliencePolicy(retries={rule.retries}, "
                f"timeout={rule.timeout}, "
                f"quarantine_after={self.breaker.threshold}, "
                f"degrade={self.degrade}, seed={self.seed})")


def failure_entry(error: BaseException, *,
                  outputs: tuple[str, ...],
                  tool_type: str | None,
                  machine: str = "local",
                  policy: "ResiliencePolicy | None" = None,
                  classification: str | None = None
                  ) -> InvocationFailure:
    """Distill an exception (annotated or not) into a report entry."""
    if classification is None:
        classification = getattr(error, "repro_classification", None)
    if classification is None:
        classification = (policy.classify(error) if policy is not None
                          else PERMANENT)
    return InvocationFailure(
        outputs=tuple(outputs),
        tool_type=tool_type,
        error=str(error),
        error_class=type(error).__name__,
        classification=classification,
        attempts=int(getattr(error, "repro_attempts", 1) or 1),
        retries=int(getattr(error, "repro_retries", 0) or 0),
        timeouts=int(getattr(error, "repro_timeouts", 0) or 0),
        machine=machine)


__all__ = [
    "CLASSIFICATIONS",
    "CallStats",
    "CircuitBreaker",
    "DEFAULT_QUARANTINE_AFTER",
    "DEFAULT_TRANSIENT_ERRORS",
    "InvocationFailure",
    "PERMANENT",
    "QUARANTINED",
    "ResiliencePolicy",
    "RetryRule",
    "TRANSIENT",
    "UPSTREAM",
    "annotate_error",
    "call_with_timeout",
    "failure_entry",
]
