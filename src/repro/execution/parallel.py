"""Parallel execution of disjoint flow branches (paper Fig. 6).

Section 3.3: *"It is also possible to support parallel task execution,
wherein disjoint branches in the flow can be executed in parallel,
possibly on different machines."*

The 1993 machine farm is simulated by a :class:`MachinePool`; each weakly
connected component of the task graph (a *branch*) is claimed by one
machine and executed by a regular
:class:`~repro.execution.executor.FlowExecutor` on its own thread.  All
executors share one lock around the history database, so derivation
records stay consistent while tool code (the slow part — external
processes in the paper's world, here Python callables that may block or
sleep) runs concurrently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..core.flow import DynamicFlow
from ..core.taskgraph import TaskGraph
from ..errors import ExecutionError
from ..history.database import HistoryDatabase
from ..obs import (EXECUTION_FAILED, FLOW_FINISHED, FLOW_STARTED,
                   LANE_ASSIGNED, NO_OP_BUS, NO_OP_TRACER,
                   PARALLEL_EXECUTOR, RUN_SPAN, WAVE_SPAN, EventBus,
                   RunLedger, Tracer)
from .cache import CACHE_OFF, DerivationCache, normalize_policy
from .encapsulation import EncapsulationRegistry
from .executor import ExecutionReport, FlowExecutor
from .faults import FaultPlan
from .resilience import ResiliencePolicy


@dataclass
class Machine:
    """One (simulated) workstation of the design environment."""

    name: str
    executed_branches: int = 0
    executed_invocations: int = 0


class MachinePool:
    """Fixed set of machines handed out to branch executions."""

    def __init__(self, names: Sequence[str]) -> None:
        if not names:
            raise ExecutionError("machine pool needs at least one machine")
        self._machines = {name: Machine(name) for name in names}
        self._idle = list(names)
        self._condition = threading.Condition()

    @classmethod
    def local(cls, size: int) -> "MachinePool":
        return cls([f"machine{i}" for i in range(size)])

    def acquire(self) -> Machine:
        with self._condition:
            while not self._idle:
                self._condition.wait()
            return self._machines[self._idle.pop()]

    def release(self, machine: Machine) -> None:
        with self._condition:
            self._idle.append(machine.name)
            self._condition.notify()

    def machines(self) -> tuple[Machine, ...]:
        return tuple(self._machines.values())

    def __len__(self) -> int:
        return len(self._machines)


@dataclass
class BranchPlan:
    """The parallel schedule: which nodes run together."""

    branches: tuple[frozenset[str], ...] = field(default_factory=tuple)

    @property
    def width(self) -> int:
        return len(self.branches)


def plan_branches(graph: TaskGraph,
                  targets: Sequence[str] | None = None) -> BranchPlan:
    """Split a flow into independently executable branches.

    With ``targets``, only branches containing a target are scheduled.
    """
    branches = graph.disjoint_branches()
    if targets is not None:
        wanted = set(targets)
        branches = tuple(b for b in branches if b & wanted)
    return BranchPlan(tuple(sorted(branches, key=sorted)))


class ParallelFlowExecutor:
    """Executes disjoint branches of a flow concurrently."""

    def __init__(self, db: HistoryDatabase,
                 registry: EncapsulationRegistry, *, user: str = "",
                 pool: MachinePool | None = None,
                 machines: int = 2,
                 bus: EventBus | None = None,
                 cache: DerivationCache | None = None,
                 cache_policy: str = CACHE_OFF,
                 tracer: Tracer | None = None,
                 ledger: RunLedger | None = None,
                 resilience: ResiliencePolicy | None = None,
                 faults: FaultPlan | None = None,
                 profiler=None) -> None:
        self.db = db
        self.registry = registry
        self.user = user
        self.pool = pool if pool is not None else MachinePool.local(machines)
        self.bus = bus if bus is not None else NO_OP_BUS
        self.tracer = tracer if tracer is not None else NO_OP_TRACER
        self.cache = cache
        self.cache_policy = normalize_policy(
            cache_policy if cache is not None else CACHE_OFF)
        # One RunRecord per coordinated execute() call; the per-branch
        # worker executors deliberately get no ledger of their own.
        self.ledger = ledger
        # The SAME policy/plan objects go to every branch executor:
        # breaker state and fault counters are global to the run, so a
        # tool type quarantined on one lane fails fast on all lanes.
        self.resilience = resilience
        self.faults = faults
        # Shared across branch executors: samples are taken by one
        # background thread, registration is per worker thread.
        self.profiler = profiler
        self._db_lock = threading.Lock()

    def execute(self, flow: TaskGraph | DynamicFlow,
                targets: Sequence[str] | None = None, *,
                force: bool = False,
                cache: str | None = None) -> ExecutionReport:
        """Run every (selected) branch, one machine per branch."""
        if cache is not None:
            if self.cache is None and normalize_policy(cache) != CACHE_OFF:
                raise ExecutionError(
                    f"cache policy {cache!r} requires a DerivationCache")
            self.cache_policy = normalize_policy(cache)
        graph = flow.graph if isinstance(flow, DynamicFlow) else flow
        graph.validate()
        started = time.perf_counter()
        emitting = self.bus.enabled
        plan = plan_branches(graph, targets)
        report = ExecutionReport(graph.name)
        if not plan.branches:
            return report
        # One root span per execute() call; worker threads adopt its
        # context explicitly (thread-locals never cross threads).
        run_span = None
        run_ctx = None
        if self.tracer.enabled:
            run_span = self.tracer.start_span(
                f"run:{graph.name}", RUN_SPAN,
                attributes={"flow": graph.name,
                            "scheduler": "disjoint-branches",
                            "branches": plan.width,
                            "machines": len(self.pool),
                            "cache": self.cache_policy})
            run_ctx = run_span.context
        if emitting:
            self.bus.emit(FLOW_STARTED, flow=graph.name,
                          payload={"scheduler": "disjoint-branches",
                                   "branches": plan.width,
                                   "machines": len(self.pool)})
        errors: list[BaseException] = []
        report_lock = threading.Lock()

        def run_branch(branch: frozenset[str]) -> None:
            wait_started = time.perf_counter()
            machine = self.pool.acquire()
            queue_wait = time.perf_counter() - wait_started
            try:
                if emitting:
                    self.bus.emit(LANE_ASSIGNED, flow=graph.name,
                                  machine=machine.name,
                                  payload={"branch": sorted(branch)})
                with self.tracer.activate(run_ctx), self.tracer.span(
                        f"branch:{machine.name}", WAVE_SPAN,
                        attributes={"flow": graph.name,
                                    "machine": machine.name,
                                    "branch": sorted(branch),
                                    "queue_wait": round(queue_wait, 6)}):
                    executor = FlowExecutor(
                        self.db, self.registry, user=self.user,
                        machine=machine.name, lock=self._db_lock,
                        bus=self.bus, cache=self.cache,
                        cache_policy=self.cache_policy,
                        tracer=self.tracer,
                        resilience=self.resilience,
                        faults=self.faults,
                        profiler=self.profiler)
                    # the branch rides this run's trace: its tasks
                    # parent to the branch span, not a second root
                    executor._trace_run_span = False
                    branch_targets = sorted(branch)
                    if targets is not None:
                        branch_targets = sorted(branch & set(targets))
                    branch_report = executor.execute(
                        graph, targets=branch_targets, force=force)
                machine.executed_branches += 1
                machine.executed_invocations += len(branch_report.results)
                with report_lock:
                    report.merge(branch_report)
            except BaseException as exc:  # re-raised on the caller thread
                with report_lock:
                    errors.append(exc)
            finally:
                self.pool.release(machine)

        try:
            with ThreadPoolExecutor(max_workers=len(self.pool)) as tp:
                futures = [tp.submit(run_branch, branch)
                           for branch in plan.branches]
                for future in futures:
                    future.result()
            if errors:
                if emitting:
                    self.bus.emit(EXECUTION_FAILED, flow=graph.name,
                                  payload={"error": str(errors[0])})
                if run_span is not None:
                    run_span.status = \
                        f"error:{type(errors[0]).__name__}"
                report.wall_time = time.perf_counter() - started
                self._ledger_record(report, run_span, errors[0])
                raise errors[0]
            # lanes overlap: the merged lane maximum is a lower bound,
            # the measured elapsed time of this call is the true
            # wall-clock
            report.wall_time = time.perf_counter() - started
            if run_span is not None:
                run_span.set(runs=report.runs,
                             created=len(report.created),
                             cache_hits=report.cache_hits)
        finally:
            if run_span is not None:
                self.tracer.finish(run_span)
        if emitting:
            self.bus.emit(FLOW_FINISHED, flow=graph.name,
                          duration=report.wall_time,
                          payload={"serial_time": report.serial_time,
                                   "speedup": round(report.speedup, 3),
                                   "lanes": plan.width})
        self._ledger_record(report, run_span)
        return report

    def _ledger_record(self, report: ExecutionReport, run_span,
                       error: BaseException | None = None) -> None:
        if self.ledger is None:
            return
        self.ledger.record_run(
            report, executor=PARALLEL_EXECUTOR,
            cache_policy=self.cache_policy,
            trace_id=run_span.trace_id if run_span is not None else "",
            error=error,
            profile=(self.profiler.summary()
                     if self.profiler is not None else None),
            pool_size=len(self.pool))
