"""Deterministic fault injection at the encapsulation boundary.

The resilience layer (:mod:`repro.execution.resilience`) is only
trustworthy if it can be exercised against *scripted* failure: a
:class:`FaultPlan` describes exactly which invocation of which tool
type misbehaves and how, so a test, a benchmark, or a ``repro run
--fault-plan`` chaos drill replays the same failure schedule every
time.  Faults fire at the same boundary the retry/timeout machinery
guards — the executors wrap every encapsulation (and composition) call
with :meth:`FaultPlan.apply` *inside* the resilient call, so an
injected crash is retried, an injected hang trips the watchdog, and an
injected corruption is rejected before anything reaches the history
database.

Fault kinds:

``crash``
    Raise before the tool runs.  ``transient=True`` (the default)
    raises :class:`~repro.errors.TransientToolError` — the retryable
    kind; ``transient=False`` raises a permanent
    :class:`~repro.errors.ToolError`.
``hang``
    Sleep ``delay`` seconds (default: effectively forever) before
    running the tool — the watchdog abandons the call and classifies
    it as a timeout.
``slowdown``
    Sleep ``delay`` seconds, then run the tool normally.  The run
    succeeds but its duration statistics shift — health-check fodder.
``corrupt``
    Run the tool, then replace its output with an unserializable
    sentinel.  The framework's own contract checks reject it
    (permanent failure), and atomicity demands nothing was recorded.

Counting is per *tool type*, 1-based, across the whole plan lifetime
and all threads: ``invocation=3`` fires on the third time any executor
lane invokes that tool type after the last :meth:`FaultPlan.reset`.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

from ..errors import ExecutionError, ToolError, TransientToolError

CRASH = "crash"
HANG = "hang"
SLOWDOWN = "slowdown"
CORRUPT = "corrupt"

FAULT_KINDS = (CRASH, HANG, SLOWDOWN, CORRUPT)

#: Default hang duration: long enough that any sane watchdog budget
#: expires first, short enough that an accidental no-timeout run does
#: eventually come back instead of wedging a test session forever.
DEFAULT_HANG_DELAY = 3600.0


class CorruptData:
    """Unserializable, un-dict-like sentinel a ``corrupt`` fault returns.

    It is neither a mapping (so executors reject it as a tool result)
    nor JSON-serializable (so no codec will persist it) — whichever
    check fires first, nothing lands in the history database.
    """

    def __repr__(self) -> str:
        return "<corrupt tool output>"


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: *kind* on the Nth call of *tool_type*."""

    tool_type: str
    #: 1-based index into the per-tool-type invocation counter.
    invocation: int
    kind: str = CRASH
    #: Sleep length for ``hang``/``slowdown`` faults (seconds).
    delay: float = DEFAULT_HANG_DELAY
    #: ``crash`` only: transient (retryable) vs permanent.
    transient: bool = True
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        if self.invocation < 1:
            raise ExecutionError(
                f"fault invocation index is 1-based, got "
                f"{self.invocation}")

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"tool_type": self.tool_type,
                                "invocation": self.invocation,
                                "kind": self.kind}
        if self.kind in (HANG, SLOWDOWN):
            data["delay"] = self.delay
        if self.kind == CRASH and not self.transient:
            data["transient"] = False
        if self.message:
            data["message"] = self.message
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ExecutionError(
                f"fault spec must be an object, got {type(data).__name__}")
        try:
            tool_type = data["tool_type"]
            invocation = int(data["invocation"])
        except KeyError as missing:
            raise ExecutionError(
                f"fault spec is missing required key {missing}") from None
        return cls(tool_type=tool_type, invocation=invocation,
                   kind=data.get("kind", CRASH),
                   delay=float(data.get("delay", DEFAULT_HANG_DELAY)),
                   transient=bool(data.get("transient", True)),
                   message=str(data.get("message", "")))


class FaultPlan:
    """A seeded, replayable schedule of tool faults.

    The plan keeps one thread-safe counter per tool type; every
    executor lane routes its encapsulation calls through
    :meth:`apply`, so the Nth invocation is the Nth *globally*, no
    matter which thread runs it.  ``reset()`` rewinds the counters so
    the same plan object can script a second identical run.
    """

    def __init__(self, faults: list[FaultSpec] | None = None,
                 seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.faults = list(faults or ())
        self.seed = seed
        self.sleep = sleep
        self._counts: dict[str, int] = {}
        self._fired: list[tuple[str, int, str]] = []
        self._lock = threading.Lock()
        by_slot: set[tuple[str, int]] = set()
        for fault in self.faults:
            slot = (fault.tool_type, fault.invocation)
            if slot in by_slot:
                raise ExecutionError(
                    f"duplicate fault for {fault.tool_type!r} "
                    f"invocation {fault.invocation}")
            by_slot.add(slot)

    # -- scripting --------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, tool_types: list[str], *,
               faults: int = 2, max_invocation: int = 3,
               kinds: tuple[str, ...] = (CRASH,),
               sleep: Callable[[float], None] = time.sleep
               ) -> "FaultPlan":
        """Draw a random (but seed-reproducible) plan.

        Only transient kinds make sense for generated chaos (the point
        is recovery), so ``kinds`` defaults to crashes.
        """
        rng = random.Random(seed)
        slots: set[tuple[str, int]] = set()
        specs: list[FaultSpec] = []
        for _ in range(faults):
            for _ in range(64):  # resample on slot collision
                slot = (rng.choice(tool_types),
                        rng.randint(1, max_invocation))
                if slot not in slots:
                    break
            else:
                continue
            slots.add(slot)
            specs.append(FaultSpec(
                tool_type=slot[0], invocation=slot[1],
                kind=rng.choice(kinds), delay=0.0))
        return cls(specs, seed=seed, sleep=sleep)

    def reset(self) -> None:
        """Rewind the invocation counters for an identical re-run."""
        with self._lock:
            self._counts.clear()
            self._fired.clear()

    @property
    def fired(self) -> tuple[tuple[str, int, str], ...]:
        """(tool type, invocation index, kind) for every fault fired."""
        with self._lock:
            return tuple(self._fired)

    # -- the injection boundary -------------------------------------------
    def next_fault(self, tool_type: str) -> FaultSpec | None:
        """Advance the counter for ``tool_type`` and return the fault
        scripted for this (1-based) invocation, if any.

        Counting is the plan's single source of truth: every call
        consumes one invocation slot whether or not a fault fires.
        Crash faults come back with their message resolved, so the
        returned spec is self-contained — a coordinator can pickle it
        into a worker process and fire it far from the plan object.
        """
        with self._lock:
            count = self._counts.get(tool_type, 0) + 1
            self._counts[tool_type] = count
            fault = next(
                (f for f in self.faults
                 if f.tool_type == tool_type and f.invocation == count),
                None)
            if fault is None:
                return None
            self._fired.append((tool_type, count, fault.kind))
        if fault.kind == CRASH and not fault.message:
            fault = replace(fault, message=(
                f"injected "
                f"{'transient' if fault.transient else 'permanent'}"
                f" crash: {tool_type} invocation {count}"))
        return fault

    def apply(self, tool_type: str, call: Callable[[], Any]) -> Any:
        """Run ``call``, injecting whatever this plan scripts for the
        current (1-based) invocation of ``tool_type``."""
        return run_with_fault(self.next_fault(tool_type), call,
                              sleep=self.sleep)

    # -- persistence ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict[str, Any], *,
                  sleep: Callable[[float], None] = time.sleep
                  ) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ExecutionError(
                f"fault plan must be an object, got "
                f"{type(data).__name__}")
        specs = [FaultSpec.from_dict(item)
                 for item in data.get("faults", ())]
        return cls(specs, seed=int(data.get("seed", 0)), sleep=sleep)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path, *,
             sleep: Callable[[float], None] = time.sleep) -> "FaultPlan":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ExecutionError(
                f"cannot load fault plan from {path}: {error}") from error
        return cls.from_dict(data, sleep=sleep)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{f.tool_type}#{f.invocation}:{f.kind}" for f in self.faults)
        return f"FaultPlan(seed={self.seed}, [{kinds}])"


def run_with_fault(fault: FaultSpec | None, call: Callable[[], Any], *,
                   sleep: Callable[[float], None] = time.sleep) -> Any:
    """Run ``call`` under an already-drawn fault spec (or none).

    The plan side (:meth:`FaultPlan.next_fault`) and the firing side
    are split so a process-pool coordinator can draw the fault where
    the counters live and fire it inside the worker process — a hang
    then really blocks the worker and the watchdog kills a real
    process, not a thread-local stand-in.
    """
    if fault is None:
        return call()
    if fault.kind == CRASH:
        message = fault.message or (
            f"injected "
            f"{'transient' if fault.transient else 'permanent'}"
            f" crash: {fault.tool_type}")
        error_type = (TransientToolError if fault.transient
                      else ToolError)
        raise error_type(message)
    if fault.kind in (HANG, SLOWDOWN):
        sleep(fault.delay)
        return call()
    # CORRUPT: run the tool, then mangle what it produced.
    call()
    return CorruptData()


__all__ = [
    "CORRUPT",
    "CRASH",
    "CorruptData",
    "DEFAULT_HANG_DELAY",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "HANG",
    "SLOWDOWN",
    "run_with_fault",
]
