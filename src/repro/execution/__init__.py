"""Flow execution: encapsulations, sequential and parallel executors.

Automatic task sequencing from schema dependencies (section 3.3), the
fan-out semantics of the instance browser (section 4.1), the parallel
disjoint-branch execution of Fig. 6, and the resilience layer (retry /
timeout / quarantine policies plus deterministic fault injection) that
keeps the history database a faithful derivation record when tools
misbehave.
"""

from .cache import (CACHE_OFF, CACHE_POLICIES, CACHE_READWRITE,
                    CACHE_REUSE, CacheHit, CacheStats, DerivationCache,
                    normalize_policy)
from .context import DesignEnvironment
from .encapsulation import (EncapsulationRegistry, ToolContext,
                            ToolEncapsulation, default_composition,
                            encapsulation, fingerprint_callable)
from .executor import (CachedInvocation, ExecutionReport, FlowExecutor,
                       InvocationResult)
from .faults import (CORRUPT, CRASH, FAULT_KINDS, HANG, SLOWDOWN,
                     CorruptData, FaultPlan, FaultSpec, run_with_fault)
from .parallel import (BranchPlan, Machine, MachinePool,
                       ParallelFlowExecutor, plan_branches)
from .procpool import (DEFAULT_BATCH_MAX, EnvelopeOutcome,
                       InvocationEnvelope, ProcessFlowExecutor)
from .resilience import (CLASSIFICATIONS, PERMANENT, QUARANTINED,
                         TRANSIENT, UPSTREAM, CallStats, CircuitBreaker,
                         InvocationFailure, ResiliencePolicy, RetryRule,
                         annotate_error, call_with_timeout,
                         failure_entry)
from .scheduler import (DurationModel, Schedule, ScheduleEntry,
                        ScheduledFlowExecutor, plan_schedule)
from .shared_memo import (MEMO_SCHEMA_VERSION, MemoEntry,
                          SharedDerivationMemo)

__all__ = [
    "BranchPlan",
    "CACHE_OFF",
    "CACHE_POLICIES",
    "CACHE_READWRITE",
    "CACHE_REUSE",
    "CLASSIFICATIONS",
    "CORRUPT",
    "CRASH",
    "CacheHit",
    "CacheStats",
    "CachedInvocation",
    "CallStats",
    "CircuitBreaker",
    "CorruptData",
    "DEFAULT_BATCH_MAX",
    "DerivationCache",
    "DesignEnvironment",
    "DurationModel",
    "EncapsulationRegistry",
    "EnvelopeOutcome",
    "ExecutionReport",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FlowExecutor",
    "HANG",
    "InvocationEnvelope",
    "InvocationFailure",
    "InvocationResult",
    "MEMO_SCHEMA_VERSION",
    "Machine",
    "MachinePool",
    "MemoEntry",
    "PERMANENT",
    "ParallelFlowExecutor",
    "ProcessFlowExecutor",
    "QUARANTINED",
    "ResiliencePolicy",
    "RetryRule",
    "SLOWDOWN",
    "Schedule",
    "ScheduleEntry",
    "ScheduledFlowExecutor",
    "SharedDerivationMemo",
    "TRANSIENT",
    "ToolContext",
    "ToolEncapsulation",
    "UPSTREAM",
    "annotate_error",
    "call_with_timeout",
    "default_composition",
    "encapsulation",
    "failure_entry",
    "fingerprint_callable",
    "normalize_policy",
    "plan_branches",
    "plan_schedule",
    "run_with_fault",
]
