"""Flow execution: encapsulations, sequential and parallel executors.

Automatic task sequencing from schema dependencies (section 3.3), the
fan-out semantics of the instance browser (section 4.1), and the parallel
disjoint-branch execution of Fig. 6.
"""

from .cache import (CACHE_OFF, CACHE_POLICIES, CACHE_READWRITE,
                    CACHE_REUSE, CacheHit, CacheStats, DerivationCache,
                    normalize_policy)
from .context import DesignEnvironment
from .encapsulation import (EncapsulationRegistry, ToolContext,
                            ToolEncapsulation, default_composition,
                            encapsulation, fingerprint_callable)
from .executor import (CachedInvocation, ExecutionReport, FlowExecutor,
                       InvocationResult)
from .parallel import (BranchPlan, Machine, MachinePool,
                       ParallelFlowExecutor, plan_branches)
from .scheduler import (DurationModel, Schedule, ScheduleEntry,
                        ScheduledFlowExecutor, plan_schedule)

__all__ = [
    "BranchPlan",
    "CACHE_OFF",
    "CACHE_POLICIES",
    "CACHE_READWRITE",
    "CACHE_REUSE",
    "CacheHit",
    "CacheStats",
    "CachedInvocation",
    "DerivationCache",
    "DesignEnvironment",
    "DurationModel",
    "EncapsulationRegistry",
    "ExecutionReport",
    "FlowExecutor",
    "InvocationResult",
    "Machine",
    "MachinePool",
    "ParallelFlowExecutor",
    "Schedule",
    "ScheduleEntry",
    "ScheduledFlowExecutor",
    "ToolContext",
    "ToolEncapsulation",
    "default_composition",
    "encapsulation",
    "fingerprint_callable",
    "normalize_policy",
    "plan_branches",
    "plan_schedule",
]
