"""Process-pool flow execution: real multi-core task dispatch.

The thread-based executors overlap tool *waiting* but never tool
*computing* — every Python-level encapsulation still serializes on the
GIL, so the paper's "parallel task execution ... possibly on different
machines" (section 3.3) has so far only been simulated.  This tier
dispatches the scheduler's ready set to a pool of real
``multiprocessing`` worker processes:

* the coordinator keeps every piece of shared state — the history
  database, the derivation cache, the circuit breaker, the fault
  counters, the trace — and workers receive only **invocation
  envelopes**: picklable records of tool type + encapsulation
  fingerprint + resolved input payloads, re-resolved against the
  (fork-inherited) tool registry inside the worker;
* ready invocations of one tool type are **batched** onto one worker
  round-trip (``batch_max``), and every lane **steals** from the one
  global ready deque, so an idle worker drains whatever is runnable;
* the resilience layer survives the thread→process move: a watchdog
  timeout *kills and respawns the worker process* (something the
  thread watchdog could never do), retries re-enqueue the envelope
  with a freshly drawn fault, and quarantine/breaker state stays with
  the coordinator.

Workers never touch the history database; recording, cache population
and span emission happen coordinator-side, with worker-reported tool
durations attached to the spans.  ``fork`` is required: the registry
holds arbitrary closures that cannot be pickled to a spawned child,
but a forked child inherits them for free.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.flow import DynamicFlow
from ..core.taskgraph import TaskGraph, TaskInvocation
from ..errors import (ExecutionError, InvocationTimeoutError, ToolError,
                      ToolQuarantinedError, TransientToolError)
from ..history.database import HistoryDatabase
from ..history.instance import DerivationRecord
from ..obs import (CACHE_HIT, CACHE_MISS, CACHE_SPAN, COMPOSE_SPAN,
                   COMPOSE_TOOL, COMPOSITION_RUN, EXECUTION_FAILED,
                   FLOW_FINISHED, FLOW_STARTED, NODE_READY, PHASE_DECODE,
                   PHASE_ENCODE, PHASE_SPAN, PHASE_TOOL, PHASE_VERIFY,
                   PROCESS_EXECUTOR, RUN_SPAN, TASK_SPAN, TOOL_FINISHED,
                   TOOL_INVOKED, TOOL_QUARANTINED, TOOL_RETRIED,
                   TOOL_SPAN, TOOL_TIMED_OUT, WAVE_SPAN, WORKER_STATS,
                   ClockSync, EventBus, NO_OP_TRACER, RunLedger,
                   SamplingProfiler, Span, Tracer, WorkerRunStats,
                   WorkerTelemetry, fit_phases, merge_profiles,
                   worker_utilization)
from .cache import (CACHE_OFF, CACHE_READWRITE, CACHE_REUSE,
                    DerivationCache, normalize_policy)
from .encapsulation import (EncapsulationRegistry, ToolContext,
                            fingerprint_callable)
from .executor import (CachedInvocation, ExecutionReport, FlowExecutor,
                       InvocationResult, _combinations,
                       _derivation_inputs, _normalize_result)
from .faults import FaultPlan, FaultSpec, run_with_fault
from .resilience import (QUARANTINED, TRANSIENT, CallStats,
                         ResiliencePolicy, annotate_error)
from .scheduler import (DurationModel, _InvocationNode,
                        _invocation_graph, _tool_type_of)

DEFAULT_BATCH_MAX = 4

#: Clock-handshake request sentinel on the worker pipe (``None`` stays
#: the shutdown sentinel; envelope batches are lists, so neither can be
#: mistaken for the other).
_SYNC = "__clock_sync__"

#: How long the coordinator waits for the handshake pong.  Generous:
#: a fork under memory pressure can take a while to reach its loop, and
#: an unsynced handle degrades gracefully (offset 0) rather than fail.
SYNC_TIMEOUT = 10.0


# ---------------------------------------------------------------------------
# the wire format: what crosses the process boundary
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class InvocationEnvelope:
    """One tool (or composition) call, serialized for a worker.

    Everything a worker needs is resolved coordinator-side into plain
    picklable values; the one exception is the encapsulation itself,
    which the worker re-resolves from its fork-inherited registry and
    verifies against ``fingerprint`` — the envelope names *code by
    content*, it never ships code.
    """

    envelope_id: int
    #: ``"tool"`` or ``"compose"``.
    kind: str
    #: Entity type of the tool node (tool) or composed data (compose).
    tool_type: str
    tool_instance_id: str | None
    tool_data: Any
    #: sha256 fingerprint of the encapsulation/composition callable the
    #: coordinator keyed the derivation on; the worker refuses to run
    #: different code under the same envelope.
    fingerprint: str
    output_types: tuple[str, ...]
    #: ``(role, payload)`` pairs; a payload is one design datum or (for
    #: batch encapsulations) a list of them.
    inputs: tuple[tuple[str, Any], ...]
    #: ``(role, instance_id)`` provenance of each input, for debugging
    #: and worker-side error messages — never re-resolved remotely.
    input_digests: tuple[tuple[str, str], ...]
    user: str
    #: Scripted fault to fire *inside* the worker (drawn by the
    #: coordinator, where the plan's counters live), or None.
    fault: FaultSpec | None = None
    #: True when the coordinator has a live tracer: the worker then
    #: records per-phase timing samples (decode/verify/tool/encode)
    #: and ships them home on the outcome.  Untraced runs skip the
    #: collection entirely.
    collect_phases: bool = False
    #: Sampling-profiler interval for the worker-side profiler, in
    #: seconds; 0 disables profiling for this envelope.  The worker
    #: keeps one profiler per process incarnation and ships its
    #: cumulative aggregate on every batch reply.
    profile_interval: float = 0.0
    #: Enable ``tracemalloc`` high-water tracking in the worker (the
    #: coordinator mirrors its own ``--profile-memory`` flag; off by
    #: default because tracemalloc multiplies tool-body cost).
    profile_memory: bool = False


@dataclass(frozen=True)
class EnvelopeOutcome:
    """What came back: a tool result or a transportable error triple."""

    envelope_id: int
    ok: bool
    value: Any = None
    #: Tool run time measured inside the worker — excludes dispatch,
    #: pickling and queueing, so durations stay comparable with the
    #: in-process executors.
    duration: float = 0.0
    worker: str = ""
    pid: int = 0
    error_class: str = ""
    error_message: str = ""
    error_module: str = ""
    #: Worker-side phase samples ``(name, start, end)`` on the worker's
    #: clock — only populated when the envelope asked for them; the
    #: coordinator skew-corrects and merges them as child spans.
    phases: tuple[tuple[str, float, float], ...] = ()
    #: Pickled size of the result payload (the encode phase's probe);
    #: 0 when phases were not collected.
    result_bytes: int = 0


def _decode_error(outcome: EnvelopeOutcome) -> BaseException:
    """Reconstruct a worker-reported error on the coordinator.

    Exceptions cross the pipe as ``(module, class, message)`` strings —
    arbitrary exception objects may not pickle, strings always do.
    Framework errors rebuild as their real types (so transient vs
    permanent classification survives the hop); anything unknown
    becomes a permanent :class:`~repro.errors.ToolError`.
    """
    from .. import errors as errors_module
    cls: Any = getattr(errors_module, outcome.error_class, None)
    if cls is None:
        cls = getattr(builtins, outcome.error_class, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            return cls(outcome.error_message)
        except Exception:  # noqa: BLE001 - odd constructor signature
            pass
    return ToolError(
        f"{outcome.error_class}: {outcome.error_message} "
        f"(raised in worker {outcome.worker or '?'})")


# ---------------------------------------------------------------------------
# worker side (runs in the forked child)
# ---------------------------------------------------------------------------
def _run_envelope(registry: EncapsulationRegistry,
                  envelope: InvocationEnvelope,
                  telemetry: WorkerTelemetry,
                  profiler=None) -> EnvelopeOutcome:
    telemetry.begin_envelope(collect=envelope.collect_phases)
    started = telemetry.clock()
    value: Any = None
    failure: BaseException | None = None
    result_bytes = 0
    try:
        with telemetry.phase(PHASE_DECODE):
            inputs = {role: payload
                      for role, payload in envelope.inputs}
        if envelope.kind == "compose":
            with telemetry.phase(PHASE_VERIFY):
                compose = registry.composition(envelope.tool_type)
                if fingerprint_callable(compose) != envelope.fingerprint:
                    raise ExecutionError(
                        f"composition for {envelope.tool_type!r} "
                        "changed between dispatch and execution "
                        "(fingerprint mismatch)")
            with telemetry.phase(PHASE_TOOL):
                body = lambda: compose(inputs)  # noqa: E731
                if profiler is not None:
                    value = profiler.run(COMPOSE_TOOL,
                                         lambda: run_with_fault(
                                             envelope.fault, body))
                else:
                    value = run_with_fault(envelope.fault, body)
        else:
            with telemetry.phase(PHASE_VERIFY):
                enc = registry.resolve(envelope.tool_type,
                                       envelope.tool_instance_id)
                if enc.fingerprint() != envelope.fingerprint:
                    raise ExecutionError(
                        f"encapsulation {enc.name!r} changed between "
                        "dispatch and execution (fingerprint mismatch)")
                ctx = ToolContext(
                    tool_type=envelope.tool_type,
                    tool_instance_id=envelope.tool_instance_id or "",
                    tool_data=envelope.tool_data,
                    output_types=envelope.output_types,
                    options=enc.options(),
                    user=envelope.user)
            with telemetry.phase(PHASE_TOOL):
                body = lambda: enc.run(ctx, inputs)  # noqa: E731
                if profiler is not None:
                    value = profiler.run(envelope.tool_type,
                                         lambda: run_with_fault(
                                             envelope.fault, body))
                else:
                    value = run_with_fault(envelope.fault, body)
        if envelope.collect_phases:
            # The real result serialization happens in conn.send();
            # this probe sizes the payload so the encode phase carries
            # data, and stays off the untraced fast path entirely.
            with telemetry.phase(PHASE_ENCODE):
                try:
                    result_bytes = len(pickle.dumps(value))
                except Exception:  # noqa: BLE001 - size is best-effort
                    result_bytes = 0
    except BaseException as error:  # transported, never fatal here
        failure = error
    duration = telemetry.clock() - started
    telemetry.finish_envelope(duration)
    if failure is not None:
        return EnvelopeOutcome(
            envelope_id=envelope.envelope_id, ok=False,
            duration=duration, worker=telemetry.worker,
            pid=os.getpid(), error_class=type(failure).__name__,
            error_message=str(failure),
            error_module=type(failure).__module__,
            phases=telemetry.phases())
    return EnvelopeOutcome(
        envelope_id=envelope.envelope_id, ok=True, value=value,
        duration=duration, worker=telemetry.worker, pid=os.getpid(),
        phases=telemetry.phases(), result_bytes=result_bytes)


def _worker_main(conn: multiprocessing.connection.Connection,
                 registry: EncapsulationRegistry, worker: str) -> None:
    """Worker loop: receive envelope batches, send outcome batches.

    ``None`` is the shutdown sentinel; the :data:`_SYNC` string is the
    clock handshake (answered with this worker's monotonic clock and
    pid); a broken pipe means the coordinator is gone and the worker
    simply exits.  Every batch reply travels as ``(outcomes, stats)``
    where ``stats`` is the telemetry counter snapshot — the coordinator
    keeps the latest, so a killed worker costs at most one batch of
    counters.
    """
    telemetry = WorkerTelemetry(worker)
    # Created lazily on the first profiled envelope and kept for the
    # life of this process; every batch reply carries the *cumulative*
    # aggregate, so the coordinator's replace-latest/fold-on-respawn
    # stats protocol works unchanged for profiles.
    profiler: SamplingProfiler | None = None
    try:
        while True:
            try:
                batch = conn.recv()
            except (EOFError, OSError):
                return
            if batch is None:
                return
            if batch == _SYNC:
                try:
                    conn.send((telemetry.clock(), os.getpid()))
                except (BrokenPipeError, OSError):
                    return
                continue
            telemetry.batches += 1
            if profiler is None:
                for envelope in batch:
                    if envelope.profile_interval > 0:
                        profiler = SamplingProfiler(
                            envelope.profile_interval,
                            track_memory=envelope.profile_memory)
                        profiler.start()
                        break
            replies = [_run_envelope(registry, envelope, telemetry,
                                     profiler)
                       for envelope in batch]
            stats = telemetry.stats()
            if profiler is not None:
                stats["profile"] = profiler.payload()
            try:
                conn.send((replies, stats))
            except Exception as error:  # unpicklable tool result
                conn.send(([
                    EnvelopeOutcome(
                        envelope_id=reply.envelope_id, ok=False,
                        duration=reply.duration, worker=worker,
                        pid=os.getpid(),
                        error_class="ExecutionError",
                        error_message=(
                            "tool result could not cross the process "
                            f"boundary: {error}"),
                        error_module="repro.errors",
                        phases=reply.phases)
                    for reply in replies], stats))
    finally:
        if profiler is not None:
            profiler.stop()


class _WorkerHandle:
    """One worker process plus its pipe, owned by one coordinator lane.

    Dedicated ``Process`` + ``Pipe`` pairs (rather than a shared
    ``concurrent.futures`` pool) exist precisely so one hung worker can
    be killed and respawned without disturbing the others — the
    process-level analogue of abandoning a watchdogged thread.
    """

    def __init__(self, name: str, registry: EncapsulationRegistry,
                 context, clock: Any = time.perf_counter) -> None:
        self.name = name
        self.registry = registry
        self.context = context
        self.clock = clock
        self.restarts = 0
        self.process: Any = None
        self.conn: Any = None
        #: Clock handshake result for the *current* process; refreshed
        #: on every (re)spawn, since a fresh fork is a fresh clock.
        self.sync = ClockSync()
        #: Worker-reported counters: the latest snapshot from the live
        #: process, plus the folded totals of every process a watchdog
        #: killed before it — "respawns survived" means the numbers
        #: keep accumulating across replacements.
        self.last_stats: dict[str, Any] = {}
        self.stats_base: dict[str, Any] = {}
        #: Lane-side counters (each handle is owned by exactly one
        #: coordinator lane thread, so these need no locking).  A
        #: *steal* is a claim whose tool type differs from this lane's
        #: previous claim — the lane left its warm streak to drain
        #: whatever was runnable on the shared deque.
        self.lane_steals = 0
        self.lane_cache_hits = 0
        self.last_tool_type: str | None = None

    def start(self) -> None:
        parent, child = self.context.Pipe()
        self.process = self.context.Process(
            target=_worker_main, args=(child, self.registry, self.name),
            name=f"repro-{self.name}", daemon=True)
        self.process.start()
        child.close()
        self.conn = parent
        self._handshake()

    def _handshake(self) -> None:
        """One ping/pong to estimate the worker-clock offset.

        Failure is harmless: an unsynced handle keeps offset 0 (exact
        on Linux, where ``perf_counter`` is the system-wide monotonic
        clock) and phase clamping bounds any residual error.
        """
        self.sync = ClockSync()
        try:
            sent_at = self.clock()
            self.conn.send(_SYNC)
            if self.conn.poll(SYNC_TIMEOUT):
                worker_clock, _pid = self.conn.recv()
                self.sync = ClockSync.estimate(
                    sent_at, float(worker_clock), self.clock())
        except (BrokenPipeError, EOFError, OSError):
            pass

    def _fold_stats(self) -> None:
        """Bank the dying process's last snapshot before replacing it."""
        base, snap = self.stats_base, self.last_stats
        if not snap:
            return
        for key in ("batches", "envelopes"):
            base[key] = base.get(key, 0) + int(snap.get(key, 0))
        base["busy_time"] = (base.get("busy_time", 0.0)
                             + float(snap.get("busy_time", 0.0)))
        base["rss_kb"] = max(int(base.get("rss_kb", 0)),
                             int(snap.get("rss_kb", 0)))
        profile = merge_profiles(base.get("profile", {}),
                                 snap.get("profile", {}))
        if profile:
            base["profile"] = profile
        self.last_stats = {}

    def worker_stats(self) -> dict[str, Any]:
        """Cumulative worker-side counters across every respawn."""
        merged = dict(self.stats_base)
        snap = self.last_stats
        for key in ("batches", "envelopes"):
            merged[key] = merged.get(key, 0) + int(snap.get(key, 0))
        merged["busy_time"] = (merged.get("busy_time", 0.0)
                               + float(snap.get("busy_time", 0.0)))
        merged["rss_kb"] = max(int(merged.get("rss_kb", 0)),
                               int(snap.get("rss_kb", 0)))
        profile = merge_profiles(merged.get("profile", {}),
                                 snap.get("profile", {}))
        if profile:
            merged["profile"] = profile
        elif "profile" in merged:
            del merged["profile"]
        return merged

    def respawn(self) -> None:
        """Kill the current process (if any) and fork a fresh one."""
        self._fold_stats()
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join()
        if self.conn is not None:
            self.conn.close()
        self.restarts += 1
        self.start()

    def call(self, batch: list[InvocationEnvelope],
             timeout: float | None) -> list[EnvelopeOutcome]:
        """One round trip; on trouble the worker is replaced first.

        * broken pipe on send -> the worker died between rounds:
          respawn, raise transient;
        * no reply within ``timeout`` -> the worker is wedged (a real
          hang, not a slow scheduler): **kill it**, respawn, raise
          :class:`~repro.errors.InvocationTimeoutError` (transient, so
          the retry budget applies);
        * EOF on receive -> the worker crashed mid-call: respawn,
          raise transient.
        """
        try:
            self.conn.send(batch)
        except (BrokenPipeError, OSError):
            self.respawn()
            raise TransientToolError(
                f"worker {self.name} was gone before dispatch; "
                "respawned")
        if timeout is not None and timeout > 0:
            if not self.conn.poll(timeout):
                self.respawn()
                raise InvocationTimeoutError(
                    f"worker {self.name} exceeded its {timeout:g}s "
                    "watchdog budget; process killed and respawned")
        try:
            replies, stats = self.conn.recv()
        except (EOFError, OSError):
            self.respawn()
            raise TransientToolError(
                f"worker {self.name} died mid-invocation "
                "(exit code suggests a crash); respawned")
        self.last_stats = dict(stats)
        return replies

    def stop(self) -> None:
        if self.conn is not None:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        if self.process is not None:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if self.conn is not None:
            self.conn.close()


# ---------------------------------------------------------------------------
# coordinator-side bookkeeping
# ---------------------------------------------------------------------------
@dataclass
class _Unit:
    """One cold tool/composition call of one invocation."""

    envelope: InvocationEnvelope
    tool_id: str | None
    record_inputs: tuple[tuple[str, str], ...]
    combo: dict[str, Any]
    cache_key: str | None
    node_label: str
    #: Tool type as events/policy see it (COMPOSE_TOOL for compose).
    event_tool_type: str
    stats: CallStats = field(default_factory=lambda: CallStats(attempts=0))
    outcome: EnvelopeOutcome | None = None
    error: BaseException | None = None
    #: Tool time of earlier units in the same worker round trip: a
    #: batched unit waits this long after dispatch before its tool
    #: starts, so it counts toward queue wait, not duration.
    batch_offset: float = 0.0
    #: Coordinator-observed (send, receive) interval of the round trip
    #: that produced ``outcome``, on the tracer clock — the clamp
    #: window for skew-corrected worker phase spans.  Retries
    #: overwrite it, so the last (successful) attempt wins.
    window: tuple[float, float] | None = None


@dataclass
class _Prepared:
    """One claimed invocation, after cache lookups, before dispatch."""

    index: int
    invocation: TaskInvocation
    tool_type: str | None
    event_tool_type: str
    output_nodes: list[Any]
    output_types: tuple[str, ...]
    queue_wait: float
    wave: int | None
    units: list[_Unit] = field(default_factory=list)
    tool_ids: tuple[str, ...] = ()
    encapsulation_name: str = ""
    invocation_id: str | None = None
    hits: int = 0
    saved: float = 0.0
    bytes_saved: int = 0
    reused_all: list[str] = field(default_factory=list)
    reused_by_node: dict[str, list[str]] = field(default_factory=dict)


class ProcessFlowExecutor:
    """Executes one flow on a pool of real worker processes.

    The coordinator mirrors the invocation-level scheduler: one lane
    thread per worker process claims ready invocations from a shared
    deque (work-stealing), batches same-tool-type claims onto one
    round trip, and records all results into the (single-process)
    history database.  Requires the ``fork`` start method — the tool
    registry holds closures only a forked child can inherit.
    """

    def __init__(self, db: HistoryDatabase,
                 registry: EncapsulationRegistry, *, user: str = "",
                 workers: int = 2, batch_max: int = DEFAULT_BATCH_MAX,
                 durations: DurationModel | None = None,
                 bus: EventBus | None = None,
                 cache: DerivationCache | None = None,
                 cache_policy: str = CACHE_OFF,
                 tracer: Tracer | None = None,
                 ledger: RunLedger | None = None,
                 resilience: ResiliencePolicy | None = None,
                 faults: FaultPlan | None = None,
                 profiler=None) -> None:
        if workers < 1:
            raise ExecutionError(
                f"need at least one worker process, got {workers}")
        if batch_max < 1:
            raise ExecutionError(
                f"batch_max must be >= 1, got {batch_max}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "the procpool executor requires the 'fork' start "
                "method (tool encapsulations hold closures that "
                "cannot be pickled to a spawned worker); this "
                "platform offers only: "
                + ", ".join(multiprocessing.get_all_start_methods()))
        self.db = db
        self.registry = registry
        self.user = user
        self.workers = workers
        self.batch_max = batch_max
        self.tracer = tracer if tracer is not None else NO_OP_TRACER
        # Shared across every lane: one breaker, one fault counter
        # sequence, no matter which worker runs an invocation.
        self.resilience = resilience
        self.faults = faults
        # Coordinator-side aggregate: workers run their own in-process
        # samplers (a coordinator thread cannot see worker stacks) and
        # ship cumulative payloads back on every batch reply; the
        # coordinator absorbs them here and clamps busy time to the
        # fitted tool-phase durations before the ledger snapshot.
        self.profiler = profiler
        self._profile_caps: dict[str, float] = {}
        self._profile_lock = threading.Lock()
        self.cache = cache
        self.cache_policy = normalize_policy(
            cache_policy if cache is not None else CACHE_OFF)
        self.ledger = ledger
        self.durations = durations if durations is not None \
            else DurationModel()
        self.bus = bus if bus is not None else EventBus()
        self.bus.subscribe(self.durations)
        self._context = multiprocessing.get_context("fork")
        self._db_lock = threading.Lock()
        self._envelope_ids = itertools.count(1)
        self._force = False

    # ------------------------------------------------------------------
    # cache plumbing (mirrors FlowExecutor)
    # ------------------------------------------------------------------
    def _cache_for_run(self) -> DerivationCache | None:
        if self.cache is None or self.cache_policy == CACHE_OFF:
            return None
        return self.cache

    @property
    def _cache_reads(self) -> bool:
        return self.cache_policy in (CACHE_REUSE, CACHE_READWRITE) \
            and not self._force

    @property
    def _cache_writes(self) -> bool:
        return self.cache_policy == CACHE_READWRITE

    @property
    def _profile_interval(self) -> float:
        return self.profiler.interval if self.profiler is not None \
            else 0.0

    @property
    def _profile_memory(self) -> bool:
        return bool(self.profiler is not None
                    and self.profiler.track_memory)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, flow: TaskGraph | DynamicFlow, *,
                force: bool = False,
                cache: str | None = None) -> ExecutionReport:
        if cache is not None:
            if self.cache is None and normalize_policy(cache) != CACHE_OFF:
                raise ExecutionError(
                    f"cache policy {cache!r} requires a DerivationCache")
            self.cache_policy = normalize_policy(cache)
        graph = flow.graph if isinstance(flow, DynamicFlow) else flow
        graph.validate()
        started = time.perf_counter()
        nodes = _invocation_graph(graph, None, self.durations,
                                  _tool_type_of(graph))
        report = ExecutionReport(graph.name)
        if not nodes:
            return report
        self.bus.emit(FLOW_STARTED, flow=graph.name,
                      payload={"scheduler": "procpool",
                               "workers": self.workers,
                               "invocations": len(nodes)})
        # Readiness checks, degrade bookkeeping and failure entries are
        # borrowed from the sequential executor; it never runs a tool.
        probe = FlowExecutor(self.db, self.registry, user=self.user,
                             machine="coordinator", lock=self._db_lock,
                             resilience=self.resilience)
        probe._check_ready(graph, set(graph.node_ids()))
        if force:
            for node_id in graph.node_ids():
                if graph.suppliers(node_id):
                    graph.node(node_id).produced = ()
        self._force = force
        self._profile_caps = {}

        # dependency depth of each invocation: its scheduler "wave"
        wave: dict[int, int] = {}
        for node in nodes:
            chain = [node.index]
            while chain:
                index = chain[-1]
                missing = [p for p in nodes[index].predecessors
                           if p not in wave]
                if missing:
                    chain.extend(missing)
                    continue
                chain.pop()
                wave[index] = 1 + max(
                    (wave[p] for p in nodes[index].predecessors),
                    default=-1)

        run_span = None
        run_ctx = None
        if self.tracer.enabled:
            run_span = self.tracer.start_span(
                f"run:{graph.name}", RUN_SPAN,
                attributes={"flow": graph.name,
                            "scheduler": "procpool",
                            "workers": self.workers,
                            "invocations": len(nodes),
                            "cache": self.cache_policy})
            run_ctx = run_span.context

        # Fork the whole pool BEFORE any lane thread exists: forking a
        # single-threaded coordinator is safe; forking one with live
        # lanes would snapshot their lock states into the child.
        handles = [_WorkerHandle(f"worker{i}", self.registry,
                                 self._context,
                                 clock=self.tracer.clock)
                   for i in range(self.workers)]
        for handle in handles:
            handle.start()

        pending = {n.index: len(n.predecessors) for n in nodes}
        condition = threading.Condition()
        ready = [n.index for n in nodes if not n.predecessors]
        ready_at = {index: time.perf_counter() for index in ready}
        done: set[int] = set()
        errors: list[BaseException] = []
        failed_nodes: set[str] = set()
        report_lock = threading.Lock()

        def lane(handle: _WorkerHandle) -> None:
            with self.tracer.activate(run_ctx), self.tracer.span(
                    f"lane:{handle.name}", WAVE_SPAN,
                    attributes={"flow": graph.name,
                                "machine": handle.name}) as lane_span:
                executed = self._drain(
                    graph, nodes, handle, probe, force, condition,
                    pending, ready, ready_at, done, errors, report,
                    report_lock, wave, failed_nodes)
                lane_span.set(invocations=executed,
                              restarts=handle.restarts,
                              steals=handle.lane_steals,
                              cache_hits=handle.lane_cache_hits,
                              clock_offset=round(handle.sync.offset, 6),
                              clock_rtt=round(handle.sync.rtt, 6))

        try:
            threads = [threading.Thread(target=lane, args=(handle,),
                                        name=f"repro-lane-{handle.name}")
                       for handle in handles]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            for handle in handles:
                handle.stop()
        wall = time.perf_counter() - started
        workers = self._collect_worker_stats(handles, wall)
        if self.profiler is not None:
            # Fold every worker's cumulative aggregate (respawn bases
            # included), then clamp busy time to the skew-corrected
            # tool-phase durations so self time stays contained in the
            # merged trace spans.  Runs before BOTH ledger paths.
            for handle in handles:
                payload = handle.worker_stats().get("profile")
                if payload:
                    self.profiler.absorb(payload)
            self.profiler.clamp_to(self._profile_caps)
        try:
            if errors:
                self.bus.emit(EXECUTION_FAILED, flow=graph.name,
                              payload={"error": str(errors[0])})
                if run_span is not None:
                    run_span.status = \
                        f"error:{type(errors[0]).__name__}"
                report.wall_time = wall
                self._ledger_record(report, run_span, errors[0],
                                    workers)
                raise errors[0]
            if self.resilience is not None:
                report.quarantined = sorted(
                    set(report.quarantined)
                    | set(self.resilience.quarantined()))
            report.wall_time = wall
            if run_span is not None:
                run_span.set(runs=report.runs,
                             created=len(report.created),
                             cache_hits=report.cache_hits,
                             queue_wait=round(report.queue_wait_time, 6),
                             restarts=sum(h.restarts for h in handles),
                             utilization=round(
                                 worker_utilization(workers, wall), 4))
        finally:
            if run_span is not None:
                self.tracer.finish(run_span)
        self._emit_worker_stats(graph, workers, wall)
        self.bus.emit(FLOW_FINISHED, flow=graph.name,
                      duration=report.wall_time,
                      payload={"serial_time": report.serial_time,
                               "speedup": round(report.speedup, 3),
                               "runs": report.runs,
                               "cache_hits": report.cache_hits,
                               "queue_wait": round(
                                   report.queue_wait_time, 6)})
        self._ledger_record(report, run_span, workers=workers)
        return report

    def _collect_worker_stats(self, handles: list[_WorkerHandle],
                              wall: float
                              ) -> dict[str, WorkerRunStats]:
        """Fold worker-side counters + lane counters per worker."""
        stats: dict[str, WorkerRunStats] = {}
        for handle in handles:
            snap = handle.worker_stats()
            busy = float(snap.get("busy_time", 0.0))
            stats[handle.name] = WorkerRunStats(
                batches=int(snap.get("batches", 0)),
                invocations=int(snap.get("envelopes", 0)),
                steals=handle.lane_steals,
                respawns=handle.restarts,
                cache_hits=handle.lane_cache_hits,
                busy_time=round(busy, 6),
                idle_time=round(max(0.0, wall - busy), 6),
                rss_kb=int(snap.get("rss_kb", 0)))
        return stats

    def _emit_worker_stats(self, graph: TaskGraph,
                           workers: dict[str, WorkerRunStats],
                           wall: float) -> None:
        if not self.bus.enabled:
            return
        for name in sorted(workers):
            stats = workers[name]
            self.bus.emit(
                WORKER_STATS, flow=graph.name, machine=name,
                duration=stats.busy_time,
                payload={"batches": stats.batches,
                         "invocations": stats.invocations,
                         "steals": stats.steals,
                         "respawns": stats.respawns,
                         "cache_hits": stats.cache_hits,
                         "busy": stats.busy_time,
                         "idle": stats.idle_time,
                         "rss_kb": stats.rss_kb,
                         "utilization": round(
                             stats.busy_time / wall, 4)
                         if wall > 0 else 0.0})

    def _ledger_record(self, report: ExecutionReport, run_span,
                       error: BaseException | None = None,
                       workers: dict[str, WorkerRunStats] | None = None
                       ) -> None:
        if self.ledger is None:
            return
        self.ledger.record_run(
            report, executor=PROCESS_EXECUTOR,
            cache_policy=self.cache_policy,
            trace_id=run_span.trace_id if run_span is not None else "",
            error=error, workers=workers,
            profile=(self.profiler.summary()
                     if self.profiler is not None else None),
            pool_size=self.workers)

    # ------------------------------------------------------------------
    # lane loop: claim, batch, dispatch, record
    # ------------------------------------------------------------------
    def _batchable(self, tool_type: str | None) -> bool:
        """Same-tool-type claims may share one worker round trip —
        unless a watchdog budget applies, which is per invocation."""
        if self.batch_max < 2:
            return False
        if self.resilience is None:
            return True
        rule = self.resilience.rule_for(tool_type or COMPOSE_TOOL)
        return rule.timeout is None

    def _drain(self, graph: TaskGraph, nodes: list[_InvocationNode],
               handle: _WorkerHandle, probe: FlowExecutor, force: bool,
               condition: threading.Condition, pending: dict[int, int],
               ready: list[int], ready_at: dict[int, float],
               done: set[int], errors: list[BaseException],
               report: ExecutionReport, report_lock: threading.Lock,
               wave: dict[int, int], failed_nodes: set[str]) -> int:
        degrade = (self.resilience is not None
                   and self.resilience.degrade)
        executed = 0
        while True:
            with condition:
                while not ready and len(done) < len(nodes) \
                        and not errors:
                    condition.wait()
                if errors or len(done) >= len(nodes):
                    return executed
                claimed = [ready.pop(0)]
                tool_type = nodes[claimed[0]].tool_type
                # Steal accounting: this lane switched tool types to
                # drain whatever was runnable off the shared deque.
                if handle.last_tool_type is not None \
                        and tool_type != handle.last_tool_type:
                    handle.lane_steals += 1
                handle.last_tool_type = tool_type
                # Batch greed is capped at this lane's fair share of
                # the ready set: amortize round trips only when there
                # is more ready work than workers — otherwise batching
                # would serialize exactly the parallelism it exists to
                # exploit.
                share = -(-(len(ready) + 1) // self.workers)
                limit = min(self.batch_max, max(1, share))
                if self._batchable(tool_type):
                    position = 0
                    while position < len(ready) \
                            and len(claimed) < limit:
                        if nodes[ready[position]].tool_type == tool_type:
                            claimed.append(ready.pop(position))
                        else:
                            position += 1
            # Queue-wait semantics (deliberately different from the
            # thread scheduler, which measures at claim time *inside*
            # the condition lock): the wait ends when the coordinator
            # actually starts dispatching, measured on the coordinator
            # clock after the lock is released — lock contention counts
            # as waiting, it is not silently hidden inside it.
            dispatch_at = time.perf_counter()
            queue_waits = {
                index: max(0.0, dispatch_at
                           - ready_at.get(index, dispatch_at))
                for index in claimed}
            aborted = self._execute_batch(
                graph, nodes, handle, probe, force, claimed,
                queue_waits, wave, degrade, report, report_lock,
                errors, condition, failed_nodes)
            executed += len(claimed)
            with condition:
                now = time.perf_counter()
                for index in claimed:
                    done.add(index)
                    for successor in nodes[index].successors:
                        pending[successor] -= 1
                        if pending[successor] == 0:
                            ready.append(successor)
                            ready_at[successor] = now
                condition.notify_all()
                if aborted:
                    condition.notify_all()
                    return executed

    def _execute_batch(self, graph: TaskGraph,
                       nodes: list[_InvocationNode],
                       handle: _WorkerHandle, probe: FlowExecutor,
                       force: bool, claimed: list[int],
                       queue_waits: dict[int, float],
                       wave: dict[int, int], degrade: bool,
                       report: ExecutionReport,
                       report_lock: threading.Lock,
                       errors: list[BaseException],
                       condition: threading.Condition,
                       failed_nodes: set[str]) -> bool:
        """Prepare, dispatch and record one claimed batch.

        Returns True when a non-degradable error aborted the run (the
        caller still marks the claimed invocations done so the other
        lanes wake up and observe ``errors``).
        """

        def fail(index: int, error: BaseException) -> bool:
            """Route one invocation's failure; True means abort."""
            invocation = nodes[index].invocation
            if not degrade:
                with condition:
                    errors.append(error)
                    condition.notify_all()
                return True
            with report_lock:
                report.failures.append(probe._failure_entry(
                    error, invocation.outputs))
                failed_nodes.update(invocation.outputs)
            self.bus.emit(EXECUTION_FAILED, flow=graph.name,
                          node=",".join(invocation.outputs),
                          machine=handle.name,
                          payload={"error": str(error),
                                   "degraded": True})
            return False

        prepared: list[_Prepared] = []
        for index in claimed:
            invocation = nodes[index].invocation
            outputs = [graph.node(o) for o in invocation.outputs]
            if degrade:
                with report_lock:
                    if probe._record_upstream_failure(
                            graph, invocation, report, failed_nodes):
                        continue
            if not force and all(o.results() for o in outputs):
                with report_lock:
                    report.skipped.extend(invocation.outputs)
                continue
            try:
                prepared.append(self._prepare(
                    graph, nodes[index], handle, queue_waits[index],
                    wave.get(index)))
            except BaseException as error:
                if fail(index, error):
                    return True
        units = [unit for prep in prepared for unit in prep.units]
        if units:
            self._dispatch(graph, handle, units)
        for prep in prepared:
            try:
                result, cached = self._record(graph, prep, handle)
            except BaseException as error:
                if fail(prep.index, error):
                    return True
                continue
            with report_lock:
                if result is not None:
                    report.results.append(result)
                if cached is not None:
                    report.cached.append(cached)
        return False

    # ------------------------------------------------------------------
    # prepare: cache lookups + envelope construction (coordinator side)
    # ------------------------------------------------------------------
    def _next_fault(self, event_tool_type: str) -> FaultSpec | None:
        if self.faults is None:
            return None
        return self.faults.next_fault(event_tool_type)

    def _check_quarantine(self, tool_type: str) -> None:
        """Fail fast before building envelopes, like the policy does."""
        policy = self.resilience
        if policy is None or not policy.breaker.is_open(tool_type):
            return
        raise annotate_error(
            ToolQuarantinedError(
                f"tool type {tool_type!r} is quarantined after "
                f"{policy.breaker.failures(tool_type)} consecutive "
                "failures"),
            tool_type=tool_type, classification=QUARANTINED,
            attempts=0, retries=0, timeouts=0)

    def _prepare(self, graph: TaskGraph, inv_node: _InvocationNode,
                 handle: _WorkerHandle, queue_wait: float,
                 wave_index: int | None) -> _Prepared:
        invocation = inv_node.invocation
        output_nodes = [graph.node(o) for o in invocation.outputs]
        output_types = tuple(n.entity_type for n in output_nodes)
        emitting = self.bus.enabled
        if emitting:
            for node in output_nodes:
                self.bus.emit(NODE_READY, flow=graph.name,
                              node=node.node_id, machine=handle.name,
                              payload={"entity_type": node.entity_type})
        role_ids: dict[str, tuple[str, ...]] = {}
        for role, supplier_id in invocation.inputs:
            supplier = graph.node(supplier_id)
            ids = supplier.results()
            if not ids:
                raise ExecutionError(
                    f"{supplier}: no instances available for role "
                    f"{role!r}")
            role_ids[role] = ids
        event_tool_type = (
            graph.node(invocation.tool_node).entity_type
            if invocation.tool_node is not None else COMPOSE_TOOL)
        if emitting:
            self.bus.emit(TOOL_INVOKED, flow=graph.name,
                          node=",".join(invocation.outputs),
                          tool_type=event_tool_type,
                          machine=handle.name,
                          payload={"roles": sorted(role_ids)})
        self._check_quarantine(event_tool_type)
        prep = _Prepared(
            index=inv_node.index, invocation=invocation,
            tool_type=inv_node.tool_type,
            event_tool_type=event_tool_type,
            output_nodes=output_nodes, output_types=output_types,
            queue_wait=queue_wait, wave=wave_index,
            reused_by_node={n.node_id: [] for n in output_nodes})
        if invocation.tool_node is None:
            self._prepare_compose(graph, prep, handle, role_ids)
        else:
            self._prepare_tool(graph, prep, handle, role_ids)
        return prep

    def _take_hit(self, graph: TaskGraph, prep: _Prepared, hit,
                  handle: _WorkerHandle) -> None:
        grouped = hit.ids_by_type()
        for node in prep.output_nodes:
            ids = grouped.get(node.entity_type, [])
            instance_id = ids.pop(0) if ids else hit.instance_ids[0]
            prep.reused_by_node[node.node_id].append(instance_id)
            prep.reused_all.append(instance_id)
        prep.hits += 1
        prep.saved += hit.saved
        prep.bytes_saved += hit.bytes_saved
        handle.lane_cache_hits += 1
        if self.bus.enabled:
            self.bus.emit(CACHE_HIT, flow=graph.name,
                          node=",".join(prep.invocation.outputs),
                          tool_type=prep.event_tool_type,
                          machine=handle.name,
                          payload={"instances": list(hit.instance_ids),
                                   "saved": hit.saved,
                                   "bytes": hit.bytes_saved,
                                   "key": hit.key[:16]})

    def _emit_miss(self, graph: TaskGraph, prep: _Prepared, key: str,
                   handle: _WorkerHandle) -> None:
        if self.bus.enabled:
            self.bus.emit(CACHE_MISS, flow=graph.name,
                          node=",".join(prep.invocation.outputs),
                          tool_type=prep.event_tool_type,
                          machine=handle.name,
                          payload={"key": key[:16]})

    def _prepare_tool(self, graph: TaskGraph, prep: _Prepared,
                      handle: _WorkerHandle,
                      role_ids: dict[str, tuple[str, ...]]) -> None:
        invocation = prep.invocation
        tool_node = graph.node(invocation.tool_node)
        tool_ids = tool_node.results()
        if not tool_ids:
            raise ExecutionError(
                f"{tool_node}: no tool instance available")
        prep.tool_ids = tuple(tool_ids)
        cache = self._cache_for_run()
        tool_type = tool_node.entity_type
        for tool_id in tool_ids:
            with self._db_lock:
                tool_instance = self.db.get(tool_id)
                tool_data = self.db.data(tool_instance)
            enc = self.registry.resolve(tool_instance.entity_type,
                                        tool_id)
            prep.encapsulation_name = enc.name
            if enc.batch:
                combos: list[dict[str, Any]] = [
                    {role: list(ids) for role, ids in role_ids.items()}]
            else:
                combos = list(_combinations(role_ids))
            for combo in combos:
                key = None
                if cache is not None:
                    key = cache.tool_run_key(
                        tool_id, combo, sorted(set(prep.output_types)))
                    if self._cache_reads:
                        with self.tracer.span(
                                f"cache:{tool_type}", CACHE_SPAN,
                                attributes={"key": key[:16],
                                            "tool": tool_id}) as lookup:
                            hit = cache.fetch(
                                key, sorted(set(prep.output_types)))
                            lookup.set(outcome="hit" if hit is not None
                                       else "miss")
                        if hit is not None:
                            self._take_hit(graph, prep, hit, handle)
                            continue
                        self._emit_miss(graph, prep, key, handle)
                with self._db_lock:
                    if prep.invocation_id is None:
                        prep.invocation_id = self.db.new_invocation_id()
                    inputs = tuple(
                        (role, [self.db.data(r) for r in ref]
                         if isinstance(ref, list)
                         else self.db.data(ref))
                        for role, ref in sorted(combo.items()))
                prep.units.append(_Unit(
                    envelope=InvocationEnvelope(
                        envelope_id=next(self._envelope_ids),
                        kind="tool", tool_type=tool_type,
                        tool_instance_id=tool_id, tool_data=tool_data,
                        fingerprint=enc.fingerprint(),
                        output_types=prep.output_types, inputs=inputs,
                        input_digests=_derivation_inputs(combo),
                        user=self.user,
                        fault=self._next_fault(tool_type),
                        collect_phases=self.tracer.enabled,
                        profile_interval=self._profile_interval,
                        profile_memory=self._profile_memory),
                    tool_id=tool_id,
                    record_inputs=_derivation_inputs(combo),
                    combo=dict(combo), cache_key=key,
                    node_label=",".join(invocation.outputs),
                    event_tool_type=tool_type))

    def _prepare_compose(self, graph: TaskGraph, prep: _Prepared,
                         handle: _WorkerHandle,
                         role_ids: dict[str, tuple[str, ...]]) -> None:
        node = prep.output_nodes[0]
        compose = self.registry.composition(node.entity_type)
        prep.encapsulation_name = f"compose:{node.entity_type}"
        cache = self._cache_for_run()
        for combo in _combinations(role_ids):
            key = None
            if cache is not None:
                key = cache.composition_key(node.entity_type, combo)
                if self._cache_reads:
                    with self.tracer.span(
                            f"cache:{node.entity_type}", CACHE_SPAN,
                            attributes={"key": key[:16]}) as lookup:
                        hit = cache.fetch(key, (node.entity_type,))
                        lookup.set(outcome="hit" if hit is not None
                                   else "miss")
                    if hit is not None:
                        self._take_hit(graph, prep, hit, handle)
                        continue
                    self._emit_miss(graph, prep, key, handle)
            with self._db_lock:
                if prep.invocation_id is None:
                    prep.invocation_id = self.db.new_invocation_id()
                inputs = tuple((role, self.db.data(ref))
                               for role, ref in sorted(combo.items()))
            prep.units.append(_Unit(
                envelope=InvocationEnvelope(
                    envelope_id=next(self._envelope_ids),
                    kind="compose", tool_type=node.entity_type,
                    tool_instance_id=None, tool_data=None,
                    fingerprint=fingerprint_callable(compose),
                    output_types=(node.entity_type,), inputs=inputs,
                    input_digests=_derivation_inputs(combo),
                    user=self.user,
                    fault=self._next_fault(COMPOSE_TOOL),
                    collect_phases=self.tracer.enabled,
                    profile_interval=self._profile_interval,
                    profile_memory=self._profile_memory),
                tool_id=None, record_inputs=_derivation_inputs(combo),
                combo=dict(combo), cache_key=key,
                node_label=",".join(prep.invocation.outputs),
                event_tool_type=COMPOSE_TOOL))

    # ------------------------------------------------------------------
    # dispatch: worker round trips with retry / watchdog / breaker
    # ------------------------------------------------------------------
    def _dispatch(self, graph: TaskGraph, handle: _WorkerHandle,
                  units: list[_Unit]) -> None:
        """Run every unit to a final outcome (success or final error).

        Reimplements :meth:`ResiliencePolicy.run`'s loop for the
        process boundary: the watchdog is the coordinator polling the
        pipe (and killing the worker on expiry) instead of a daemon
        thread, and a retried unit's envelope is re-enqueued with a
        freshly drawn fault so the plan's per-attempt counting holds.
        """
        policy = self.resilience
        emitting = self.bus.enabled
        pending = list(units)
        while pending:
            current, pending = pending, []
            # Per-unit watchdog budgets force one-envelope round trips;
            # unbounded units of one batch share a single trip.
            groups: list[list[_Unit]] = []
            for unit in current:
                timeout = self._timeout_for(unit)
                if timeout is not None or not groups \
                        or self._timeout_for(groups[-1][0]) is not None:
                    groups.append([unit])
                else:
                    groups[-1].append(unit)
            for group in groups:
                # Dispatch-time breaker check: a batch-mate (or an
                # earlier group) may have opened the quarantine after
                # this unit was prepared.  The fail-fast mirrors
                # :meth:`ResiliencePolicy.run`'s pre-check — attempts
                # stay 0 and the breaker does NOT count it as another
                # failure.
                if policy is not None and policy.breaker.is_open(
                        group[0].event_tool_type):
                    for unit in group:
                        unit.error = self._quarantined_error(
                            unit.event_tool_type)
                    continue
                timeout = self._timeout_for(group[0])
                for unit in group:
                    unit.stats.attempts += 1
                sent_at = self.tracer.clock()
                try:
                    outcomes = handle.call(
                        [unit.envelope for unit in group], timeout)
                except BaseException as error:
                    # transport-level failure: the whole round is one
                    # failed attempt for every unit aboard
                    is_timeout = isinstance(error,
                                            InvocationTimeoutError)
                    for unit in group:
                        if is_timeout:
                            unit.stats.timeouts += 1
                            if emitting:
                                self.bus.emit(
                                    TOOL_TIMED_OUT, flow=graph.name,
                                    node=unit.node_label,
                                    tool_type=unit.event_tool_type,
                                    machine=handle.name,
                                    payload={
                                        "attempt": unit.stats.attempts,
                                        "budget": timeout or 0.0})
                        self._settle(graph, handle, unit, error,
                                     pending)
                    continue
                received_at = self.tracer.clock()
                for unit in group:
                    unit.window = (sent_at, received_at)
                by_id = {outcome.envelope_id: outcome
                         for outcome in outcomes}
                # A worker runs its batch serially: unit K's tool only
                # starts after units 0..K-1 finished, so their summed
                # tool time is queue wait from unit K's point of view.
                elapsed = 0.0
                for unit in group:
                    unit.batch_offset = elapsed
                    got = by_id.get(unit.envelope.envelope_id)
                    if got is not None:
                        elapsed += got.duration
                for unit in group:
                    outcome = by_id.get(unit.envelope.envelope_id)
                    if outcome is None:
                        self._settle(
                            graph, handle, unit,
                            TransientToolError(
                                f"worker {handle.name} returned no "
                                "outcome for envelope "
                                f"{unit.envelope.envelope_id}"),
                            pending)
                        continue
                    if outcome.ok:
                        unit.outcome = outcome
                        if policy is not None:
                            policy.breaker.record_success(
                                unit.event_tool_type)
                        continue
                    self._settle(graph, handle, unit,
                                 _decode_error(outcome), pending,
                                 duration=outcome.duration)

    def _timeout_for(self, unit: _Unit) -> float | None:
        if self.resilience is None:
            return None
        timeout = self.resilience.rule_for(unit.event_tool_type).timeout
        if timeout is None or timeout <= 0:
            return None
        return timeout

    def _quarantined_error(self, tool_key: str) -> BaseException:
        """The pre-check-shaped error for an already-open breaker."""
        breaker = self.resilience.breaker
        return annotate_error(
            ToolQuarantinedError(
                f"tool type {tool_key!r} is quarantined after "
                f"{breaker.failures(tool_key)} consecutive failures"),
            tool_type=tool_key, classification=QUARANTINED,
            attempts=0, retries=0, timeouts=0)

    def _settle(self, graph: TaskGraph, handle: _WorkerHandle,
                unit: _Unit, error: BaseException,
                pending: list[_Unit], duration: float = 0.0) -> None:
        """Decide one failed attempt: re-enqueue or finalize."""
        policy = self.resilience
        emitting = self.bus.enabled
        if policy is None:
            unit.error = annotate_error(error,
                                        tool_type=unit.event_tool_type)
            return
        if policy.breaker.is_open(unit.event_tool_type):
            # A round-trip-mate already opened the quarantine: had the
            # units run one at a time (as the in-process executors do)
            # this one would have been refused at the pre-check, so its
            # failure surfaces as quarantined and is not counted by the
            # breaker again.
            unit.error = self._quarantined_error(unit.event_tool_type)
            return
        classification = policy.classify(error)
        rule = policy.rule_for(unit.event_tool_type)
        exhausted = unit.stats.attempts > rule.retries
        if classification != TRANSIENT or exhausted:
            opened = policy.breaker.record_failure(unit.event_tool_type)
            if opened and emitting:
                self.bus.emit(
                    TOOL_QUARANTINED, flow=graph.name,
                    node=unit.node_label,
                    tool_type=unit.event_tool_type,
                    machine=handle.name,
                    payload={"consecutive_failures":
                             policy.breaker.failures(
                                 unit.event_tool_type)})
            unit.error = annotate_error(
                error, tool_type=unit.event_tool_type,
                classification=classification,
                attempts=unit.stats.attempts,
                retries=unit.stats.retries,
                timeouts=unit.stats.timeouts)
            return
        delay = policy.backoff_delay(unit.event_tool_type,
                                     unit.stats.attempts)
        unit.stats.retries += 1
        unit.stats.delays += (delay,)
        if emitting:
            self.bus.emit(
                TOOL_RETRIED, flow=graph.name, node=unit.node_label,
                tool_type=unit.event_tool_type, machine=handle.name,
                payload={"attempt": unit.stats.attempts,
                         "error": str(error),
                         "error_class": type(error).__name__,
                         "classification": classification,
                         "delay": round(delay, 6)})
        policy.sleep(delay)
        # Per-attempt fault counting: the retried call is a fresh draw
        # from the plan, exactly as the in-process boundary counts it.
        unit.envelope = replace(
            unit.envelope,
            fault=self._next_fault(unit.event_tool_type))
        pending.append(unit)

    # ------------------------------------------------------------------
    # record: history writes, spans and events (coordinator side)
    # ------------------------------------------------------------------
    def _record(self, graph: TaskGraph, prep: _Prepared,
                handle: _WorkerHandle
                ) -> tuple[InvocationResult | None,
                           CachedInvocation | None]:
        """Fold one invocation's outcomes into history + report.

        Invocations fail atomically: if any unit ended in error,
        nothing of the invocation is recorded and the (annotated)
        error is raised — mirroring how the in-process executor never
        records past the first failing combination.
        """
        invocation = prep.invocation
        emitting = self.bus.enabled
        # The invocation waited in the coordinator's ready queue AND
        # (when batched) behind its round-trip-mates inside the worker.
        if prep.units:
            prep.queue_wait += min(u.batch_offset for u in prep.units)
        attributes: dict[str, Any] = {
            "flow": graph.name,
            "machine": handle.name,
            "outputs": sorted(invocation.outputs),
            "inputs": sorted({supplier_id for _, supplier_id
                              in invocation.inputs}),
            "entity_types": sorted(set(prep.output_types)),
            "tool_type": prep.event_tool_type,
        }
        if prep.wave is not None:
            attributes["wave"] = prep.wave
        if prep.queue_wait > 0:
            attributes["queue_wait"] = round(prep.queue_wait, 6)
        with self.tracer.span("task:" + ",".join(invocation.outputs),
                              TASK_SPAN,
                              attributes=attributes) as task_span:
            failed = next((u for u in prep.units
                           if u.error is not None), None)
            if failed is not None:
                raise failed.error
            result, cached = self._record_units(graph, prep, handle,
                                                task_span)
            # Spans are recorded post-hoc (the work already happened
            # inside the worker); pull the task span's start back to
            # the earliest dispatch so child intervals stay contained.
            windows = [u.window for u in prep.units
                       if u.window is not None]
            if windows and isinstance(task_span, Span):
                task_span.start = min([task_span.start]
                                      + [w[0] for w in windows])
        if result is not None and emitting:
            payload: dict[str, Any] = {"runs": result.runs,
                                       "created": list(result.created)}
            if prep.queue_wait > 0:
                payload["queue_wait"] = round(prep.queue_wait, 6)
            self.bus.emit(
                COMPOSITION_RUN if invocation.tool_node is None
                else TOOL_FINISHED,
                flow=graph.name, node=",".join(invocation.outputs),
                tool_type=prep.event_tool_type,
                invocation_id=result.invocation_id,
                machine=handle.name, duration=result.duration,
                payload=payload)
        return result, cached

    def _record_units(self, graph: TaskGraph, prep: _Prepared,
                      handle: _WorkerHandle, task_span
                      ) -> tuple[InvocationResult | None,
                                 CachedInvocation | None]:
        invocation = prep.invocation
        cache = self._cache_for_run()
        is_compose = invocation.tool_node is None
        created_all: list[str] = []
        outputs_by_node: dict[str, list[str]] = {
            n.node_id: [] for n in prep.output_nodes}
        duration = 0.0
        retries = sum(u.stats.retries for u in prep.units)
        timeouts = sum(u.stats.timeouts for u in prep.units)
        for unit in prep.units:
            outcome = unit.outcome
            if outcome is None:  # defensive: dispatch settles all
                raise ExecutionError(
                    f"unit {unit.envelope.envelope_id} was never "
                    "dispatched")
            duration += outcome.duration
            span_name = (f"compose:{prep.output_nodes[0].entity_type}"
                         if is_compose
                         else f"tool:{unit.event_tool_type}")
            span_kind = COMPOSE_SPAN if is_compose else TOOL_SPAN
            span_attrs: dict[str, Any] = {
                "worker": outcome.worker or handle.name,
                "worker_pid": outcome.pid,
                "tool_duration": round(outcome.duration, 6)}
            if is_compose:
                span_attrs["entity_type"] = \
                    prep.output_nodes[0].entity_type
            else:
                span_attrs["tool"] = unit.tool_id
                span_attrs["tool_type"] = unit.event_tool_type
                span_attrs["encapsulation"] = prep.encapsulation_name
            with self.tracer.span(span_name, span_kind,
                                  attributes=span_attrs) as tool_span:
                if unit.stats.retries:
                    tool_span.set(retries=unit.stats.retries)
                if unit.stats.timeouts:
                    tool_span.set(timeouts=unit.stats.timeouts)
                if is_compose:
                    produced = {prep.output_nodes[0].entity_type:
                                outcome.value}
                else:
                    produced = _normalize_result(
                        outcome.value, prep.output_types,
                        prep.encapsulation_name)
                combo_created: list[tuple[str, str]] = []
                for node in prep.output_nodes:
                    data = produced[node.entity_type]
                    derivation = (
                        DerivationRecord.make(None, unit.combo,
                                              prep.invocation_id)
                        if is_compose else
                        DerivationRecord(unit.tool_id,
                                         unit.record_inputs,
                                         prep.invocation_id))
                    with self._db_lock:
                        instance = self.db.record(
                            node.entity_type, data, derivation,
                            user=self.user, name=node.label,
                            annotations={"flow": graph.name,
                                         "machine": handle.name},
                            trace=tool_span.context)
                    outputs_by_node[node.node_id].append(
                        instance.instance_id)
                    created_all.append(instance.instance_id)
                    combo_created.append(
                        (node.entity_type, instance.instance_id))
                tool_span.set(created=[i for _, i in combo_created],
                              invocation_id=prep.invocation_id)
                if isinstance(tool_span, Span):
                    self._merge_phases(handle, unit, tool_span)
            if unit.cache_key is not None and self._cache_writes:
                cache.store(unit.cache_key, combo_created,
                            outcome.duration)
        for node in prep.output_nodes:
            node.produced = node.produced \
                + tuple(prep.reused_by_node[node.node_id]) \
                + tuple(outputs_by_node[node.node_id])
        result = None
        if prep.units:
            result = InvocationResult(
                prep.invocation_id or "",
                None if is_compose else prep.tool_type,
                () if is_compose else prep.tool_ids,
                prep.encapsulation_name, len(prep.units),
                tuple(created_all),
                ({prep.output_nodes[0].node_id: tuple(created_all)}
                 if is_compose else
                 {k: tuple(v) for k, v in outputs_by_node.items()}),
                duration, handle.name, queue_wait=prep.queue_wait,
                retries=retries, timeouts=timeouts)
            task_span.set(created=list(result.created),
                          invocation_id=result.invocation_id)
        cached = None
        if prep.hits:
            cached = CachedInvocation(
                None if is_compose else prep.tool_type,
                invocation.outputs, prep.hits, tuple(prep.reused_all),
                {k: tuple(v) for k, v in prep.reused_by_node.items()},
                prep.saved, prep.bytes_saved, handle.name)
            task_span.set(reused=list(cached.instances))
        if cache is not None:
            if cached is not None:
                task_span.set(cache="hit" if result is None
                              else "partial")
            elif self._cache_reads:
                task_span.set(cache="miss")
        return result, cached

    def _merge_phases(self, handle: _WorkerHandle, unit: _Unit,
                      tool_span: Span) -> None:
        """Graft worker-side phase samples under the tool span.

        Worker clocks are skew-corrected via the handshake offset and
        then clamped into the coordinator-observed dispatch window, so
        a bad offset estimate can distort a phase but never push it
        outside its parent.  The tool span's start is pulled back to
        the earliest phase so the children stay contained.
        """
        outcome = unit.outcome
        if outcome is None:
            return
        fitted = fit_phases(outcome.phases, handle.sync, unit.window)
        if not fitted:
            return
        if self.profiler is not None:
            # Sum the fitted tool-body durations per tool type: these
            # are, by construction, contained in the merged tool spans,
            # so they are the containment cap for worker-sampled busy
            # time (clamped once, after all lanes join).
            tool_body = sum(end - start for name, start, end in fitted
                            if name == PHASE_TOOL)
            if tool_body > 0:
                with self._profile_lock:
                    self._profile_caps[unit.event_tool_type] = \
                        self._profile_caps.get(
                            unit.event_tool_type, 0.0) + tool_body
        worker = outcome.worker or handle.name
        for name, start, end in fitted:
            phase_span = self.tracer.start_span(
                f"{name}:{unit.event_tool_type}", PHASE_SPAN,
                parent=tool_span.context,
                attributes={"worker": worker, "phase": name},
                start=start)
            self.tracer.finish(phase_span, end=end)
        tool_span.start = min([tool_span.start]
                              + [s for _, s, _ in fitted])
        if outcome.result_bytes:
            tool_span.set(result_bytes=outcome.result_bytes)


__all__ = [
    "DEFAULT_BATCH_MAX",
    "EnvelopeOutcome",
    "InvocationEnvelope",
    "ProcessFlowExecutor",
]
