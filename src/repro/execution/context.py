"""The design environment: schema + history + encapsulations, wired up.

:class:`DesignEnvironment` is the reproduction's Odyssey: one object a
designer (or an example script) needs.  It owns the task schema, the
history database, the encapsulation registry, the flow catalog, and hands
out flows via the four design approaches of section 3.4.
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable, Sequence

from ..errors import SchemaError
from ..core.approaches import (data_based, goal_based, plan_based,
                               tool_based)
from ..core.flow import DynamicFlow
from ..core.taskgraph import TaskGraph
from ..history.consistency import (consistency_report, is_stale,
                                   refresh_plan, stale_inputs)
from ..history.database import HistoryDatabase
from ..history.datastore import CodecRegistry
from ..history.instance import EntityInstance
from ..history.store import HistoryStore
from ..obs import DECOMPOSE_SPAN, EventBus, RunLedger, Tracer
from ..schema.catalog import (DataTypeCatalog, EntityCatalog, FlowCatalog,
                              ToolCatalog)
from ..schema.schema import TaskSchema
from .cache import CACHE_OFF, DerivationCache, normalize_policy
from .encapsulation import (EncapsulationRegistry, ToolEncapsulation)
from .executor import ExecutionReport, FlowExecutor
from .faults import FaultPlan
from .parallel import MachinePool, ParallelFlowExecutor
from .procpool import DEFAULT_BATCH_MAX, ProcessFlowExecutor
from .resilience import ResiliencePolicy
from .scheduler import DurationModel, ScheduledFlowExecutor
from .shared_memo import SharedDerivationMemo


class DesignEnvironment:
    """Everything needed to design with dynamically defined flows."""

    def __init__(self, schema: TaskSchema, *, user: str = "designer",
                 codecs: CodecRegistry | None = None,
                 clock: Callable[[], float] | None = None,
                 bus: EventBus | None = None,
                 store: HistoryStore | None = None) -> None:
        schema.validate()
        self.schema = schema
        self.user = user
        # One bus per environment: the database and every executor this
        # environment hands out emit onto it.  It stays a no-op until a
        # sink subscribes (env.bus.subscribe(...)).
        self.bus = bus if bus is not None else (
            EventBus(clock=clock) if clock is not None else EventBus())
        # Likewise one tracer: subscribe a span sink
        # (env.tracer.subscribe(JSONLSink(...))) and every executor this
        # environment hands out records hierarchical spans.
        self.tracer = Tracer()
        self.db = HistoryDatabase(schema, codecs=codecs, clock=clock,
                                  bus=self.bus, store=store)
        self.registry = EncapsulationRegistry(schema)
        self.flow_catalog: FlowCatalog[DynamicFlow] = FlowCatalog()
        self.entity_catalog = EntityCatalog(schema)
        self.tool_catalog = ToolCatalog(schema)
        self.data_type_catalog = DataTypeCatalog(schema)
        self._cache: DerivationCache | None = None
        # Longitudinal run history: attached by persistence for saved
        # environments (attach_ledger); in-memory environments record
        # nothing unless a ledger is attached explicitly.
        self.ledger: RunLedger | None = None
        # Default resilience policy / fault plan handed to every
        # executor this environment creates (both None: tool failures
        # abort the flow, exactly as without the resilience layer).
        self.resilience: ResiliencePolicy | None = None
        self.faults: FaultPlan | None = None
        # Sampling profiler handed to every executor this environment
        # creates (None: no profiling overhead anywhere).  The CLI's
        # ``repro run --profile`` sets and starts one for the run.
        self.profiler = None
        # Cross-process shared derivation memo: set by
        # enable_shared_memo (persistence does so for saved
        # environments) and attached to the cache on first use.
        self._shared_memo_path: pathlib.Path | None = None

    def attach_ledger(self, path: str | pathlib.Path) -> RunLedger:
        """Record every executed run into a ledger at ``path``.

        Every executor this environment hands out afterwards appends
        one :class:`~repro.obs.ledger.RunRecord` per ``execute()``
        call; ``repro health`` and ``repro ledger`` read them back.
        """
        self.ledger = RunLedger(path)
        return self.ledger

    @property
    def cache(self) -> DerivationCache:
        """The environment's derivation cache (created and attached lazily).

        Attaching registers a record listener on the history database, so
        results produced by *any* executor of this environment become
        reusable; executors only consult it when asked to (``cache=``).
        """
        if self._cache is None:
            self._cache = DerivationCache(self.db, self.registry)
            self._cache.attach()
        if self._shared_memo_path is not None \
                and self._cache.memo is None:
            self._cache.attach_shared_memo(self._shared_memo_path)
        return self._cache

    def enable_shared_memo(
            self, path: str | pathlib.Path) -> SharedDerivationMemo:
        """Share remembered derivations across processes and runs.

        Points the environment's cache at an append-only memo log at
        ``path`` (created on first write).  Concurrent runs — and the
        worker lanes of a :class:`ProcessFlowExecutor` coordinator —
        publish every cache store there and absorb each other's
        entries on lookup, guarded by the same registry signature that
        invalidates the in-memory cache when tool code changes.
        """
        self._shared_memo_path = pathlib.Path(path)
        return self.cache.attach_shared_memo(self._shared_memo_path)

    # ------------------------------------------------------------------
    # installation (source entities enter from outside the flows)
    # ------------------------------------------------------------------
    def install_tool(self, tool_type: str,
                     encapsulation: ToolEncapsulation | None = None, *,
                     data: Any = None, name: str = "",
                     comment: str = "") -> EntityInstance:
        """Register a tool instance (optionally with its encapsulation)."""
        if encapsulation is not None:
            self.registry.register(tool_type, encapsulation)
        descriptor = data if data is not None else {"tool": tool_type,
                                                    "name": name}
        return self.db.install(tool_type, descriptor, user=self.user,
                               name=name or tool_type, comment=comment)

    def install_data(self, entity_type: str, data: Any, *, name: str = "",
                     comment: str = "",
                     annotations: dict[str, str] | None = None
                     ) -> EntityInstance:
        """Register design data entering from outside any flow."""
        return self.db.install(entity_type, data, user=self.user,
                               name=name, comment=comment,
                               annotations=annotations)

    # ------------------------------------------------------------------
    # the four design approaches (section 3.4)
    # ------------------------------------------------------------------
    def goal_flow(self, goal_type: str, name: str = "goal-flow"):
        """Goal-based approach: start from the entity to be produced."""
        return goal_based(self.schema, goal_type, name)

    def tool_flow(self, tool_type: str, name: str = "tool-flow",
                  tool_instance: EntityInstance | str | None = None):
        """Tool-based approach: start from a tool (type or instance)."""
        return tool_based(self.schema, tool_type, name,
                          tool_instance=tool_instance)

    def data_flow(self, instance: EntityInstance | str,
                  name: str = "data-flow"):
        """Data-based approach: start from an existing design object."""
        if isinstance(instance, str):
            instance = self.db.get(instance)
        return data_based(self.schema, instance, name)

    def plan_flow(self, flow_name: str) -> DynamicFlow:
        """Plan-based approach: pick a predefined flow from the catalog."""
        return plan_based(self.flow_catalog, flow_name)

    def new_flow(self, name: str = "flow") -> DynamicFlow:
        """An empty flow (place nodes from the catalogs by hand)."""
        return DynamicFlow(self.schema, name)

    def save_flow(self, name: str, flow: DynamicFlow,
                  description: str = "") -> None:
        """Publish a flow into the catalog for plan-based reuse."""
        self.flow_catalog.register_flow(name, flow.copy(name),
                                        description=description)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _cache_args(self, cache: str | None):
        """(cache object, policy) for an executor; ``off`` stays inert —
        the cache is not even constructed."""
        policy = normalize_policy(cache)
        if policy == CACHE_OFF:
            return None, CACHE_OFF
        return self.cache, policy

    def executor(self, machine: str = "local", *,
                 cache: str | None = None,
                 resilience: ResiliencePolicy | None = None,
                 faults: FaultPlan | None = None) -> FlowExecutor:
        cache_obj, policy = self._cache_args(cache)
        return FlowExecutor(
            self.db, self.registry, user=self.user, machine=machine,
            bus=self.bus, cache=cache_obj, cache_policy=policy,
            tracer=self.tracer, ledger=self.ledger,
            resilience=resilience if resilience is not None
            else self.resilience,
            faults=faults if faults is not None else self.faults,
            profiler=self.profiler)

    def parallel_executor(self, machines: int = 2,
                          pool: MachinePool | None = None, *,
                          cache: str | None = None,
                          resilience: ResiliencePolicy | None = None,
                          faults: FaultPlan | None = None
                          ) -> ParallelFlowExecutor:
        cache_obj, policy = self._cache_args(cache)
        return ParallelFlowExecutor(
            self.db, self.registry, user=self.user, pool=pool,
            machines=machines, bus=self.bus, cache=cache_obj,
            cache_policy=policy, tracer=self.tracer,
            ledger=self.ledger,
            resilience=resilience if resilience is not None
            else self.resilience,
            faults=faults if faults is not None else self.faults,
            profiler=self.profiler)

    def scheduled_executor(self, machines: int = 2,
                           pool: MachinePool | None = None,
                           durations: DurationModel | None = None, *,
                           cache: str | None = None,
                           resilience: ResiliencePolicy | None = None,
                           faults: FaultPlan | None = None
                           ) -> ScheduledFlowExecutor:
        cache_obj, policy = self._cache_args(cache)
        return ScheduledFlowExecutor(
            self.db, self.registry, user=self.user, pool=pool,
            machines=machines, durations=durations, bus=self.bus,
            cache=cache_obj, cache_policy=policy, tracer=self.tracer,
            ledger=self.ledger,
            resilience=resilience if resilience is not None
            else self.resilience,
            faults=faults if faults is not None else self.faults,
            profiler=self.profiler)

    def process_executor(self, workers: int = 2,
                         durations: DurationModel | None = None, *,
                         cache: str | None = None,
                         batch_max: int = DEFAULT_BATCH_MAX,
                         resilience: ResiliencePolicy | None = None,
                         faults: FaultPlan | None = None
                         ) -> ProcessFlowExecutor:
        """Real multi-core execution on ``workers`` forked processes."""
        cache_obj, policy = self._cache_args(cache)
        return ProcessFlowExecutor(
            self.db, self.registry, user=self.user, workers=workers,
            batch_max=batch_max, durations=durations, bus=self.bus,
            cache=cache_obj, cache_policy=policy, tracer=self.tracer,
            ledger=self.ledger,
            resilience=resilience if resilience is not None
            else self.resilience,
            faults=faults if faults is not None else self.faults,
            profiler=self.profiler)

    def run(self, flow: DynamicFlow | TaskGraph,
            targets: Sequence[str] | None = None, *,
            force: bool = False,
            cache: str | None = None) -> ExecutionReport:
        """Execute a flow with a fresh sequential executor.

        ``cache`` selects the re-execution policy: ``"off"`` (default),
        ``"reuse"`` (read-only coalescing of remembered results) or
        ``"readwrite"`` (also index new results eagerly).
        """
        return self.executor(cache=cache).execute(
            flow, targets=targets, force=force)

    # ------------------------------------------------------------------
    # composed entities (section 3.1)
    # ------------------------------------------------------------------
    def decompose(self, instance: EntityInstance | str
                  ) -> dict[str, EntityInstance]:
        """Split a composed instance into its component instances.

        Section 3.1: composed entities carry implicit decomposition
        functions.  The instance-level pointers live in the derivation
        record (the paper's footnote: composite data usually just points
        at the parts), so decomposition is a history lookup; composites
        installed from outside fall back to the registered data-level
        decomposition function.
        """
        if isinstance(instance, str):
            instance = self.db.get(instance)
        entity = self.schema.entity(instance.entity_type)
        if not entity.composed:
            raise SchemaError(
                f"{instance.instance_id}: {instance.entity_type!r} is "
                "not a composed entity")
        with self.tracer.span(
                f"decompose:{instance.entity_type}", DECOMPOSE_SPAN,
                attributes={"instance": instance.instance_id,
                            "entity_type": instance.entity_type}):
            if instance.derivation is not None:
                return {role: self.db.get(input_id)
                        for role, input_id in instance.derivation.inputs}
            # externally installed composite: decompose the data itself
            # and surface the parts as fresh installed instances
            decompose = self.registry.decomposition(instance.entity_type)
            parts = decompose(self.db.data(instance))
            construction = self.schema.construction(instance.entity_type)
            out: dict[str, EntityInstance] = {}
            for role, data in parts.items():
                target = construction.input_role(role).target
                out[role] = self.install_data(
                    target, data,
                    name=f"{instance.name or instance.instance_id}"
                         f".{role}",
                    annotations={"decomposed-from":
                                 instance.instance_id})
            return out

    # ------------------------------------------------------------------
    # consistency maintenance (section 3.3)
    # ------------------------------------------------------------------
    def is_stale(self, instance: EntityInstance | str) -> bool:
        return is_stale(self.db, self._id(instance))

    def stale_inputs(self, instance: EntityInstance | str):
        return stale_inputs(self.db, self._id(instance))

    def refresh_plan(self, instance: EntityInstance | str) -> TaskGraph:
        return refresh_plan(self.db, self._id(instance))

    def retrace(self, instance: EntityInstance | str) -> ExecutionReport:
        """Automatically re-derive a stale instance from newest versions."""
        plan = self.refresh_plan(instance)
        return self.executor().execute(plan)

    def consistency_report(self, entity_type: str | None = None):
        return consistency_report(self.db, entity_type)

    @staticmethod
    def _id(instance: EntityInstance | str) -> str:
        return instance if isinstance(instance, str) \
            else instance.instance_id

    def __repr__(self) -> str:
        return (f"DesignEnvironment(schema={self.schema.name!r}, "
                f"user={self.user!r}, instances={len(self.db)})")
