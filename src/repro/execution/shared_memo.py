"""Cross-process shared derivation memo (file-locked append log).

The :class:`~repro.execution.cache.DerivationCache` is an in-process
index; the moment flows execute on real worker *processes* — or two
``repro run`` invocations share one environment directory — remembered
tool runs must survive process boundaries.  The memo is the smallest
structure that does: an append-only JSONL log (``memo.jsonl`` under the
environment directory) where each line records one derivation-key ->
outputs group, stamped with the encapsulation registry's sha256
signature so stale code silently invalidates old lines, exactly like
the persisted ``cache.json`` snapshot.

Safety model (single-writer append, shared readers):

* every append takes an **exclusive** ``flock`` on a sidecar lock file,
  writes one complete line, flushes, and releases — concurrent writers
  serialize and lines never interleave;
* readers take a **shared** lock, read from their last byte offset to
  the end of file, and only advance past *complete* lines — a reader
  racing a writer at worst re-reads the same tail next poll, it never
  adopts a torn line;
* lines whose ``sig`` does not match the current registry signature are
  skipped (still consuming their bytes), so two runs with different
  tool code share one log without poisoning each other.

On platforms without ``fcntl`` the memo degrades to an O_EXCL spin
lock around the same protocol.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Callable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

MEMO_SCHEMA_VERSION = 1

#: (key, ((entity_type, instance_id), ...), duration)
MemoEntry = tuple[str, tuple[tuple[str, str], ...], float]


class _FileLock:
    """Advisory lock on a sidecar file, exclusive or shared.

    ``fcntl.flock`` where available; otherwise an ``O_CREAT | O_EXCL``
    spin lock (always exclusive — correct, just less concurrent).
    """

    def __init__(self, path: pathlib.Path, *, exclusive: bool) -> None:
        self.path = path
        self.exclusive = exclusive
        self._fd: int | None = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX if self.exclusive
                        else fcntl.LOCK_SH)
            return self
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_RDWR)
                return self
            except FileExistsError:
                time.sleep(0.005)

    def __exit__(self, *exc_info: Any) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(self._fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self._fd = None


class SharedDerivationMemo:
    """Append-only derivation memo shared between processes.

    ``signature`` is a zero-argument callable returning the current
    :meth:`~repro.execution.encapsulation.EncapsulationRegistry.signature`
    — evaluated per call, because encapsulations register *after* an
    environment loads and the signature must reflect the final registry.
    """

    def __init__(self, path: str | pathlib.Path,
                 signature: Callable[[], str]) -> None:
        self.path = pathlib.Path(path)
        self.lock_path = self.path.with_name(self.path.name + ".lock")
        self._signature = signature
        self._offset = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, key: str, outputs: tuple[tuple[str, str], ...],
               duration: float = 0.0) -> None:
        """Publish one freshly executed run for other processes."""
        line = json.dumps(
            {"duration": duration, "key": key,
             "outputs": [[t, i] for t, i in outputs],
             "sig": self._signature(), "v": MEMO_SCHEMA_VERSION},
            sort_keys=True, separators=(",", ":"))
        with _FileLock(self.lock_path, exclusive=True):
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def poll(self) -> list[MemoEntry]:
        """Entries appended (by anyone) since the last poll.

        Only complete, signature-matching lines are returned; a torn
        trailing line (a writer mid-append on a non-POSIX box) is left
        for the next poll.  Lines written against different tool code
        are consumed but not returned.
        """
        if not self.path.exists():
            return []
        with _FileLock(self.lock_path, exclusive=False):
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        entries: list[MemoEntry] = []
        signature = self._signature()
        consumed = 0
        for raw in chunk.split(b"\n"):
            end = consumed + len(raw) + 1
            if end > len(chunk):
                break  # incomplete trailing line: re-read next poll
            consumed = end
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # foreign garbage: skip, bytes consumed
            if record.get("v") != MEMO_SCHEMA_VERSION:
                continue
            if record.get("sig") != signature:
                continue  # written against different tool code
            outputs = tuple((str(t), str(i))
                            for t, i in record.get("outputs", ()))
            if not outputs:
                continue
            entries.append((str(record.get("key", "")), outputs,
                            float(record.get("duration", 0.0))))
        self._offset += consumed
        return entries

    def rewind(self) -> None:
        """Forget the read offset; the next poll re-reads everything."""
        self._offset = 0

    def __repr__(self) -> str:
        return (f"SharedDerivationMemo({str(self.path)!r}, "
                f"offset={self._offset})")


__all__ = [
    "MEMO_SCHEMA_VERSION",
    "MemoEntry",
    "SharedDerivationMemo",
]
