"""Invocation-level flow scheduling (extension beyond Fig. 6).

The paper parallelizes *disjoint branches* (weakly connected components).
A natural extension — enabled by the same schema dependencies — is
invocation-level scheduling: within one connected flow, every task
invocation whose inputs are ready may run, so a diamond-shaped flow
(extract -> {simulate, verify} -> plot) still overlaps its middle stages.

Three pieces:

* :class:`DurationModel` — expected tool run times learned from executed
  reports (the history's time-stamps are the paper's meta-data; the
  durations come from execution reports);
* :func:`plan_schedule` — critical-path list scheduling of a flow's
  invocations onto M machines, yielding a predicted makespan;
* :class:`ScheduledFlowExecutor` — executes a flow with invocation-level
  parallelism on a :class:`~repro.execution.parallel.MachinePool`,
  strictly respecting dependencies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.flow import DynamicFlow
from ..core.taskgraph import TaskGraph, TaskInvocation
from ..errors import ExecutionError
from ..history.database import HistoryDatabase
from ..obs import (COMPOSE_TOOL, COMPOSITION_RUN, EXECUTION_FAILED,
                   FLOW_FINISHED, FLOW_STARTED, NO_OP_TRACER, RUN_SPAN,
                   SCHEDULED_EXECUTOR, TOOL_FINISHED, WAVE_SPAN, Event,
                   EventBus, RunLedger, Tracer)
from .cache import CACHE_OFF, DerivationCache, normalize_policy
from .encapsulation import EncapsulationRegistry
from .executor import ExecutionReport, FlowExecutor, InvocationResult
from .faults import FaultPlan
from .parallel import MachinePool
from .resilience import ResiliencePolicy

DEFAULT_DURATION = 1.0


class DurationModel:
    """Per-tool-type expected durations, learned from execution events.

    The model is an event sink: subscribe it to the bus an executor
    emits on and every ``tool_finished`` / ``composition_run`` event
    updates the estimate — no ad-hoc recording calls in the executors.
    The report/result entry points remain for offline training from
    stored reports.
    """

    def __init__(self, default: float = DEFAULT_DURATION) -> None:
        self.default = default
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def handle(self, event: Event) -> None:
        """EventBus sink interface: learn from timing events."""
        if event.event_type in (TOOL_FINISHED, COMPOSITION_RUN):
            self.record(event.tool_type or None, event.duration)

    def observe_report(self, report: ExecutionReport) -> None:
        for result in report.results:
            self.observe(result)

    def observe(self, result: InvocationResult) -> None:
        self.record(result.tool_type, result.duration)

    def record(self, tool_type: str | None, duration: float) -> None:
        key = tool_type or COMPOSE_TOOL
        self._totals[key] = self._totals.get(key, 0.0) + duration
        self._counts[key] = self._counts.get(key, 0) + 1

    def estimate(self, tool_type: str | None) -> float:
        key = tool_type or COMPOSE_TOOL
        if key not in self._counts:
            return self.default
        return self._totals[key] / self._counts[key]

    def observed_types(self) -> tuple[str, ...]:
        return tuple(sorted(self._counts))


@dataclass(frozen=True)
class _InvocationNode:
    """An invocation plus its dependency bookkeeping."""

    index: int
    invocation: TaskInvocation
    tool_type: str | None
    predecessors: tuple[int, ...]
    successors: tuple[int, ...]
    duration: float


@dataclass(frozen=True)
class ScheduleEntry:
    """One invocation's planned slot."""

    outputs: tuple[str, ...]
    tool_type: str | None
    machine: str
    start: float
    end: float


@dataclass
class Schedule:
    """A planned execution of a flow on M machines."""

    entries: tuple[ScheduleEntry, ...]
    makespan: float
    machines: int
    serial_time: float
    critical_path: float

    @property
    def predicted_speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan else 1.0

    def render(self) -> str:
        lines = [f"schedule on {self.machines} machines "
                 f"(makespan {self.makespan:.3f}, serial "
                 f"{self.serial_time:.3f}, critical path "
                 f"{self.critical_path:.3f})"]
        for entry in sorted(self.entries,
                            key=lambda e: (e.start, e.machine)):
            tool = entry.tool_type or "<compose>"
            lines.append(
                f"  {entry.machine:<10} {entry.start:7.3f} -> "
                f"{entry.end:7.3f}  {tool:<20} "
                f"outputs={list(entry.outputs)}")
        return "\n".join(lines)


def _invocation_graph(graph: TaskGraph, schema_graph: TaskGraph | None,
                      durations: DurationModel,
                      tool_type_of) -> list[_InvocationNode]:
    invocations = graph.invocations()
    producer_of: dict[str, int] = {}
    for index, invocation in enumerate(invocations):
        for output in invocation.outputs:
            producer_of[output] = index
    predecessors: list[set[int]] = [set() for _ in invocations]
    for index, invocation in enumerate(invocations):
        sources = list(invocation.input_nodes)
        if invocation.tool_node is not None:
            sources.append(invocation.tool_node)
        for node_id in sources:
            producer = producer_of.get(node_id)
            if producer is not None and producer != index:
                predecessors[index].add(producer)
    successors: list[set[int]] = [set() for _ in invocations]
    for index, preds in enumerate(predecessors):
        for pred in preds:
            successors[pred].add(index)
    nodes = []
    for index, invocation in enumerate(invocations):
        tool_type = tool_type_of(invocation)
        nodes.append(_InvocationNode(
            index, invocation, tool_type,
            tuple(sorted(predecessors[index])),
            tuple(sorted(successors[index])),
            durations.estimate(tool_type)))
    return nodes


def _tool_type_of(graph: TaskGraph):
    def lookup(invocation: TaskInvocation) -> str | None:
        if invocation.tool_node is None:
            return None
        return graph.node(invocation.tool_node).entity_type
    return lookup


def _critical_lengths(nodes: list[_InvocationNode]) -> list[float]:
    """Longest path from each invocation to any sink (its priority)."""
    length = [0.0] * len(nodes)
    # process in reverse topological order: repeat-until-stable is fine
    # for the small graphs flows produce, but we do it properly:
    indegree_out = [len(n.successors) for n in nodes]
    stack = [n.index for n in nodes if not n.successors]
    order: list[int] = []
    remaining = list(indegree_out)
    while stack:
        current = stack.pop()
        order.append(current)
        for pred in nodes[current].predecessors:
            remaining[pred] -= 1
            if remaining[pred] == 0:
                stack.append(pred)
    for index in order:
        node = nodes[index]
        best_successor = max((length[s] for s in node.successors),
                             default=0.0)
        length[index] = node.duration + best_successor
    return length


def plan_schedule(flow: TaskGraph | DynamicFlow, machines: int,
                  durations: DurationModel | None = None) -> Schedule:
    """Critical-path list schedule of a flow's invocations."""
    graph = flow.graph if isinstance(flow, DynamicFlow) else flow
    if machines < 1:
        raise ExecutionError("need at least one machine")
    durations = durations if durations is not None else DurationModel()
    nodes = _invocation_graph(graph, None, durations,
                              _tool_type_of(graph))
    priority = _critical_lengths(nodes)
    pending = {n.index: len(n.predecessors) for n in nodes}
    ready = sorted((n.index for n in nodes if not n.predecessors),
                   key=lambda i: -priority[i])
    machine_free = {f"machine{i}": 0.0 for i in range(machines)}
    finish_time: dict[int, float] = {}
    entries: list[ScheduleEntry] = []
    while ready:
        index = ready.pop(0)
        node = nodes[index]
        earliest = max((finish_time[p] for p in node.predecessors),
                       default=0.0)
        machine = min(machine_free,
                      key=lambda m: (max(machine_free[m], earliest), m))
        start = max(machine_free[machine], earliest)
        end = start + node.duration
        machine_free[machine] = end
        finish_time[index] = end
        entries.append(ScheduleEntry(node.invocation.outputs,
                                     node.tool_type, machine, start,
                                     end))
        for successor in node.successors:
            pending[successor] -= 1
            if pending[successor] == 0:
                position = 0
                while position < len(ready) and \
                        priority[ready[position]] >= priority[successor]:
                    position += 1
                ready.insert(position, successor)
    makespan = max((e.end for e in entries), default=0.0)
    serial = sum(n.duration for n in nodes)
    critical = max(priority, default=0.0)
    return Schedule(tuple(entries), makespan, machines, serial, critical)


class ScheduledFlowExecutor:
    """Executes one flow with invocation-level parallelism."""

    def __init__(self, db: HistoryDatabase,
                 registry: EncapsulationRegistry, *, user: str = "",
                 pool: MachinePool | None = None, machines: int = 2,
                 durations: DurationModel | None = None,
                 bus: EventBus | None = None,
                 cache: DerivationCache | None = None,
                 cache_policy: str = CACHE_OFF,
                 tracer: Tracer | None = None,
                 ledger: RunLedger | None = None,
                 resilience: ResiliencePolicy | None = None,
                 faults: FaultPlan | None = None,
                 profiler=None) -> None:
        self.db = db
        self.registry = registry
        self.user = user
        self.pool = pool if pool is not None else MachinePool.local(machines)
        self.tracer = tracer if tracer is not None else NO_OP_TRACER
        # Shared across every worker lane: one breaker, one fault
        # counter sequence, no matter which machine runs an invocation.
        self.resilience = resilience
        self.faults = faults
        # Shared across worker lanes: the sampler thread reads every
        # lane's registered tool invocation.
        self.profiler = profiler
        self.cache = cache
        self.cache_policy = normalize_policy(
            cache_policy if cache is not None else CACHE_OFF)
        # One RunRecord per execute() call (workers share this
        # coordinator's report; they never write the ledger themselves).
        self.ledger = ledger
        self.durations = durations if durations is not None \
            else DurationModel()
        # The duration model learns from the event stream: worker
        # executors emit tool_finished/composition_run on this bus and
        # the model is just one more subscriber.
        self.bus = bus if bus is not None else EventBus()
        self.bus.subscribe(self.durations)
        self._db_lock = threading.Lock()

    def execute(self, flow: TaskGraph | DynamicFlow, *,
                force: bool = False,
                cache: str | None = None) -> ExecutionReport:
        if cache is not None:
            if self.cache is None and normalize_policy(cache) != CACHE_OFF:
                raise ExecutionError(
                    f"cache policy {cache!r} requires a DerivationCache")
            self.cache_policy = normalize_policy(cache)
        graph = flow.graph if isinstance(flow, DynamicFlow) else flow
        graph.validate()
        started = time.perf_counter()
        nodes = _invocation_graph(graph, None, self.durations,
                                  _tool_type_of(graph))
        report = ExecutionReport(graph.name)
        if not nodes:
            return report
        self.bus.emit(FLOW_STARTED, flow=graph.name,
                      payload={"scheduler": "invocation-level",
                               "machines": len(self.pool),
                               "invocations": len(nodes)})
        # readiness check mirrors FlowExecutor
        probe = FlowExecutor(self.db, self.registry, user=self.user,
                             lock=self._db_lock)
        probe._check_ready(graph, set(graph.node_ids()))
        if force:
            for node_id in graph.node_ids():
                if graph.suppliers(node_id):
                    graph.node(node_id).produced = ()

        # dependency depth of each invocation: its scheduler "wave"
        # (wave 0 runs immediately, wave n waits on some wave n-1 task)
        wave: dict[int, int] = {}
        for node in nodes:
            chain = [node.index]
            while chain:
                index = chain[-1]
                missing = [p for p in nodes[index].predecessors
                           if p not in wave]
                if missing:
                    chain.extend(missing)
                    continue
                chain.pop()
                wave[index] = 1 + max(
                    (wave[p] for p in nodes[index].predecessors),
                    default=-1)

        # One root span; workers adopt its context explicitly and open
        # one lane span each, so queue waits show per machine.
        run_span = None
        run_ctx = None
        if self.tracer.enabled:
            run_span = self.tracer.start_span(
                f"run:{graph.name}", RUN_SPAN,
                attributes={"flow": graph.name,
                            "scheduler": "invocation-level",
                            "machines": len(self.pool),
                            "invocations": len(nodes),
                            "cache": self.cache_policy})
            run_ctx = run_span.context

        pending = {n.index: len(n.predecessors) for n in nodes}
        condition = threading.Condition()
        ready = [n.index for n in nodes if not n.predecessors]
        # when each invocation became runnable, for queue-wait accounting
        ready_at = {index: time.perf_counter() for index in ready}
        done: set[int] = set()
        errors: list[BaseException] = []
        # node ids whose producing invocation failed under degradation;
        # dependents are skipped with an "upstream" failure entry
        failed_nodes: set[str] = set()
        report_lock = threading.Lock()

        def worker() -> None:
            machine = self.pool.acquire()
            executor = FlowExecutor(self.db, self.registry,
                                    user=self.user, machine=machine.name,
                                    lock=self._db_lock, bus=self.bus,
                                    cache=self.cache,
                                    cache_policy=self.cache_policy,
                                    tracer=self.tracer,
                                    resilience=self.resilience,
                                    faults=self.faults,
                                    profiler=self.profiler)
            executor._force = force
            executor._trace_run_span = False
            try:
                with self.tracer.activate(run_ctx), self.tracer.span(
                        f"lane:{machine.name}", WAVE_SPAN,
                        attributes={"flow": graph.name,
                                    "machine": machine.name}) as lane:
                    executed = self._drain_ready(
                        graph, nodes, executor, machine, force,
                        condition, pending, ready, ready_at, done,
                        errors, report, report_lock, wave,
                        failed_nodes)
                    lane.set(invocations=executed)
            finally:
                self.pool.release(machine)

        threads = [threading.Thread(target=worker)
                   for _ in range(len(self.pool))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            if errors:
                self.bus.emit(EXECUTION_FAILED, flow=graph.name,
                              payload={"error": str(errors[0])})
                if run_span is not None:
                    run_span.status = \
                        f"error:{type(errors[0]).__name__}"
                report.wall_time = time.perf_counter() - started
                self._ledger_record(report, run_span, errors[0])
                raise errors[0]
            if self.resilience is not None:
                report.quarantined = sorted(
                    set(report.quarantined)
                    | set(self.resilience.quarantined()))
            report.wall_time = time.perf_counter() - started
            if run_span is not None:
                run_span.set(runs=report.runs,
                             created=len(report.created),
                             cache_hits=report.cache_hits,
                             queue_wait=round(report.queue_wait_time, 6))
        finally:
            if run_span is not None:
                self.tracer.finish(run_span)
        self.bus.emit(FLOW_FINISHED, flow=graph.name,
                      duration=report.wall_time,
                      payload={"serial_time": report.serial_time,
                               "speedup": round(report.speedup, 3),
                               "runs": report.runs,
                               "cache_hits": report.cache_hits,
                               "queue_wait": round(
                                   report.queue_wait_time, 6)})
        self._ledger_record(report, run_span)
        return report

    def _ledger_record(self, report: ExecutionReport, run_span,
                       error: BaseException | None = None) -> None:
        if self.ledger is None:
            return
        self.ledger.record_run(
            report, executor=SCHEDULED_EXECUTOR,
            cache_policy=self.cache_policy,
            trace_id=run_span.trace_id if run_span is not None else "",
            error=error,
            profile=(self.profiler.summary()
                     if self.profiler is not None else None),
            pool_size=len(self.pool))

    def _drain_ready(self, graph: TaskGraph,
                     nodes: list[_InvocationNode],
                     executor: FlowExecutor, machine,
                     force: bool, condition: threading.Condition,
                     pending: dict[int, int], ready: list[int],
                     ready_at: dict[int, float], done: set[int],
                     errors: list[BaseException],
                     report: ExecutionReport,
                     report_lock: threading.Lock,
                     wave: dict[int, int],
                     failed_nodes: set[str]) -> int:
        """One worker's loop: claim ready invocations until drained.

        Returns the number of invocations this worker executed.  Under
        graceful degradation a failed invocation is recorded in the
        report and still marked done — its successors must be released
        (and skipped as upstream failures), or the other workers would
        wait on the condition forever.
        """
        degrade = (executor.resilience is not None
                   and executor.resilience.degrade)
        executed = 0
        while True:
            with condition:
                while not ready and len(done) < len(nodes) \
                        and not errors:
                    condition.wait()
                if errors or len(done) >= len(nodes):
                    return executed
                index = ready.pop(0)
                queue_wait = max(
                    0.0, time.perf_counter() - ready_at.get(
                        index, time.perf_counter()))
            node = nodes[index]
            outputs = [graph.node(o)
                       for o in node.invocation.outputs]
            skipped_upstream = False
            if degrade:
                with report_lock:
                    skipped_upstream = \
                        executor._record_upstream_failure(
                            graph, node.invocation, report,
                            failed_nodes)
            try:
                if skipped_upstream:
                    pass
                elif force or not all(o.results() for o in outputs):
                    result, cached = executor._run_invocation(
                        graph, node.invocation,
                        queue_wait=queue_wait,
                        wave=wave.get(index))
                    with report_lock:
                        if result is not None:
                            report.results.append(result)
                        if cached is not None:
                            report.cached.append(cached)
                    if result is not None:
                        machine.executed_invocations += 1
                        executed += 1
                else:
                    with report_lock:
                        report.skipped.extend(
                            node.invocation.outputs)
            except BaseException as exc:
                if not degrade:
                    with condition:
                        errors.append(exc)
                        condition.notify_all()
                    return executed
                with report_lock:
                    report.failures.append(executor._failure_entry(
                        exc, node.invocation.outputs))
                    failed_nodes.update(node.invocation.outputs)
            with condition:
                done.add(index)
                now = time.perf_counter()
                for successor in node.successors:
                    pending[successor] -= 1
                    if pending[successor] == 0:
                        ready.append(successor)
                        ready_at[successor] = now
                condition.notify_all()
