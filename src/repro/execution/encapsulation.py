"""Tool encapsulations: binding schema tool types to executable code.

Section 3.3 describes several encapsulation patterns, all supported here:

* one tool serving several entity types (a program that is both a layout
  editor and an extractor) — install the same underlying object as two
  tool instances of different types, each type with its own encapsulation;
* several behaviours of one entity type selected by arguments — register
  *instance-specific* encapsulations carrying different ``preset_args``;
* options/arguments as an entity type — the encapsulation receives them
  as an ordinary input role (``SimArgs`` in the standard schema);
* *"It is also possible to share encapsulation code among several tools.
  For example, we have encapsulated three statistical circuit
  optimization tools that take exactly the same input arguments and
  produce the same type of output using this technique"* — register one
  encapsulation for a common ancestor tool type (``Optimizer``); lookup
  walks the subtype chain;
* tools as data inputs to other tools — the input role's value is the
  tool instance's data object, like any other input.

The call contract is ``fn(ctx, inputs)`` where ``ctx`` is a
:class:`ToolContext` and ``inputs`` maps role names to data objects (or
lists of them in ``batch`` mode).  The return value is the produced data —
a single object when the invocation has one output, else a dict keyed by
output entity type.
"""

from __future__ import annotations

import hashlib
import json
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import EncapsulationError
from ..schema.schema import TaskSchema


def _const_token(value: Any) -> str:
    """Process-stable token for one code constant.

    Nested code objects (comprehensions, lambdas) repr with their memory
    address, so they are hashed structurally instead.
    """
    if isinstance(value, types.CodeType):
        inner = ",".join(_const_token(c) for c in value.co_consts)
        return ("code:"
                + hashlib.sha256(value.co_code).hexdigest()
                + ":" + inner)
    return repr(value)


def fingerprint_callable(fn: Callable[..., Any]) -> str:
    """Stable identity of a tool/composition callable.

    Hashes the code object (bytecode + constants) when one is available,
    so editing the implementation — not merely re-importing it — changes
    the fingerprint.  Builtins and other code-less callables fall back to
    their qualified name.  The result is stable across processes.
    """
    parts = [getattr(fn, "__module__", "") or "",
             getattr(fn, "__qualname__", repr(fn))]
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(code.co_code).hexdigest())
        parts.append(",".join(_const_token(c) for c in code.co_consts))
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ToolContext:
    """Execution context handed to an encapsulation."""

    tool_type: str
    tool_instance_id: str | None
    tool_data: Any
    output_types: tuple[str, ...]
    options: dict[str, Any] = field(default_factory=dict)
    user: str = ""


EncapsulationFn = Callable[[ToolContext, dict[str, Any]], Any]


@dataclass(frozen=True)
class ToolEncapsulation:
    """Executable wrapper for one tool type (or tool instance).

    Attributes
    ----------
    name:
        Display name (shows up in execution reports).
    fn:
        The callable implementing the tool behaviour.
    batch:
        ``False`` (default): when a set of instances is selected for an
        input role, the task runs once per instance.  ``True``: all
        selected data is passed to a single call as a list — section
        4.1's *"the relevant encapsulation may cause the tool to be run
        for each instance selected or it may pass all of the data to a
        single call of the tool"*.
    preset_args:
        Options merged into :attr:`ToolContext.options`; this is how two
        encapsulations of one tool select different behaviours.
    """

    name: str
    fn: EncapsulationFn
    batch: bool = False
    preset_args: tuple[tuple[str, Any], ...] = ()

    def options(self) -> dict[str, Any]:
        return dict(self.preset_args)

    def fingerprint(self) -> str:
        """Version stamp of this encapsulation for derivation keys.

        Covers the wrapped callable, the batch mode and every preset
        argument, so re-registering a tool with different behaviour (new
        code or new parameters) invalidates previously cached runs.
        """
        spec = json.dumps(
            {"fn": fingerprint_callable(self.fn), "batch": self.batch,
             "preset": [[k, repr(v)] for k, v in self.preset_args]},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(spec.encode("utf-8")).hexdigest()

    def run(self, ctx: ToolContext, inputs: dict[str, Any]) -> Any:
        return self.fn(ctx, inputs)

    def with_args(self, name: str | None = None,
                  **preset: Any) -> "ToolEncapsulation":
        """A variant of this encapsulation with different preset options."""
        merged = dict(self.preset_args)
        merged.update(preset)
        return ToolEncapsulation(name or self.name, self.fn, self.batch,
                                 tuple(sorted(merged.items())))


def encapsulation(name: str, fn: EncapsulationFn, *, batch: bool = False,
                  **preset: Any) -> ToolEncapsulation:
    """Convenience constructor with keyword preset arguments."""
    return ToolEncapsulation(name, fn, batch, tuple(sorted(preset.items())))


CompositionFn = Callable[[dict[str, Any]], Any]


def default_composition(inputs: dict[str, Any]) -> dict[str, Any]:
    """Implicit composition: group the components under their role names.

    Section 3.1 footnote: design data is often stored separately, with
    the composite entity storing pointers to the component parts — the
    default composition does exactly that at the data level (the
    *instance*-level pointers live in the derivation record).
    """
    return dict(inputs)


class EncapsulationRegistry:
    """Resolves tool types / tool instances to encapsulations.

    Lookup order for a tool instance of type ``T``:

    1. an instance-specific encapsulation registered for its id;
    2. an encapsulation registered for ``T``;
    3. walking up ``T``'s supertype chain (shared encapsulations).

    Composition functions for composed entities resolve the same way
    through the composed entity's own subtype chain, defaulting to
    :func:`default_composition`.
    """

    def __init__(self, schema: TaskSchema) -> None:
        self.schema = schema
        self._by_type: dict[str, ToolEncapsulation] = {}
        self._by_instance: dict[str, ToolEncapsulation] = {}
        self._compositions: dict[str, CompositionFn] = {}
        self._decompositions: dict[str, Callable[[Any], dict[str, Any]]] = {}

    # -- registration ----------------------------------------------------
    def register(self, tool_type: str,
                 encapsulation: ToolEncapsulation) -> None:
        entity = self.schema.entity(tool_type)
        if not entity.is_tool:
            raise EncapsulationError(
                f"{tool_type!r} is not a tool entity type")
        self._by_type[tool_type] = encapsulation

    def register_for_instance(self, instance_id: str,
                              encapsulation: ToolEncapsulation) -> None:
        self._by_instance[instance_id] = encapsulation

    def register_composition(self, entity_type: str,
                             fn: CompositionFn) -> None:
        entity = self.schema.entity(entity_type)
        if not entity.composed:
            raise EncapsulationError(
                f"{entity_type!r} is not a composed entity type")
        self._compositions[entity_type] = fn

    def register_decomposition(self, entity_type: str,
                               fn: Callable[[Any], dict[str, Any]]) -> None:
        entity = self.schema.entity(entity_type)
        if not entity.composed:
            raise EncapsulationError(
                f"{entity_type!r} is not a composed entity type")
        self._decompositions[entity_type] = fn

    # -- resolution ------------------------------------------------------
    def resolve(self, tool_type: str,
                tool_instance_id: str | None = None) -> ToolEncapsulation:
        if tool_instance_id is not None \
                and tool_instance_id in self._by_instance:
            return self._by_instance[tool_instance_id]
        chain = [tool_type, *self.schema.ancestors_of(tool_type)]
        for candidate in chain:
            if candidate in self._by_type:
                return self._by_type[candidate]
        raise EncapsulationError(
            f"no encapsulation registered for tool type {tool_type!r} "
            f"(searched {chain})")

    def has_encapsulation(self, tool_type: str) -> bool:
        chain = [tool_type, *self.schema.ancestors_of(tool_type)]
        return any(candidate in self._by_type for candidate in chain)

    def composition(self, entity_type: str) -> CompositionFn:
        chain = [entity_type, *self.schema.ancestors_of(entity_type)]
        for candidate in chain:
            if candidate in self._compositions:
                return self._compositions[candidate]
        return default_composition

    def decomposition(self, entity_type: str
                      ) -> Callable[[Any], dict[str, Any]]:
        chain = [entity_type, *self.schema.ancestors_of(entity_type)]
        for candidate in chain:
            if candidate in self._decompositions:
                return self._decompositions[candidate]
        return _default_decomposition

    def registered_types(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_type))

    def signature(self) -> str:
        """Digest over every registered encapsulation/composition.

        A persisted derivation-cache index is only trustworthy while the
        code it was built against is unchanged; this signature is the
        cheap way to check that at load time.
        """
        parts = []
        for tool_type, enc in sorted(self._by_type.items()):
            parts.append(f"t:{tool_type}:{enc.fingerprint()}")
        for instance_id, enc in sorted(self._by_instance.items()):
            parts.append(f"i:{instance_id}:{enc.fingerprint()}")
        for entity_type, fn in sorted(self._compositions.items()):
            parts.append(f"c:{entity_type}:{fingerprint_callable(fn)}")
        return hashlib.sha256(
            "\n".join(parts).encode("utf-8")).hexdigest()


def _default_decomposition(data: Any) -> dict[str, Any]:
    """Inverse of :func:`default_composition` for dict-shaped composites."""
    if isinstance(data, Mapping):
        return dict(data)
    raise EncapsulationError(
        "default decomposition only understands mapping-shaped composite "
        f"data, got {type(data).__name__}; register a decomposition")
