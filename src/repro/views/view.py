"""Design views bound to schema entities (paper Fig. 7, section 3.3).

*"Designers often think of a design in terms of different views such as a
logic view, a transistor level view, or a physical view ... If views of a
design are associated with entities in a task schema, however, flows can
be used to represent the transformations between views."*

A :class:`ViewRegistry` maps view names to entity types; the standard
mapping covers the three views of Fig. 7.  Given a design name, the
registry can collect the instances representing each view of that design
from the history database.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..history.database import BrowseFilter, HistoryDatabase
from ..history.instance import EntityInstance
from ..schema import standard as S
from ..schema.schema import TaskSchema


class ViewError(ReproError):
    """A view lookup or correspondence operation failed."""


@dataclass(frozen=True)
class ViewBinding:
    """One view of one design: a name bound to an entity type."""

    view: str
    entity_type: str


class ViewRegistry:
    """Maps view names to task-schema entity types."""

    def __init__(self, schema: TaskSchema) -> None:
        self.schema = schema
        self._views: dict[str, str] = {}

    def bind(self, view: str, entity_type: str) -> ViewBinding:
        self.schema.entity(entity_type)  # raises for unknown types
        if view in self._views:
            raise ViewError(f"view {view!r} already bound to "
                            f"{self._views[view]!r}")
        self._views[view] = entity_type
        return ViewBinding(view, entity_type)

    def entity_type(self, view: str) -> str:
        if view not in self._views:
            raise ViewError(f"unknown view {view!r}; have "
                            f"{sorted(self._views)}")
        return self._views[view]

    def views(self) -> tuple[str, ...]:
        return tuple(sorted(self._views))

    def view_of(self, instance: EntityInstance) -> str | None:
        """Which view an instance belongs to (most specific match)."""
        best: tuple[int, str] | None = None
        for view, entity_type in self._views.items():
            if self.schema.is_subtype(instance.entity_type, entity_type):
                depth = len(self.schema.ancestors_of(entity_type))
                if best is None or depth > best[0]:
                    best = (depth, view)
        return None if best is None else best[1]

    def instances_of_view(self, db: HistoryDatabase, view: str, *,
                          keywords: tuple[str, ...] = ()
                          ) -> tuple[EntityInstance, ...]:
        """All instances representing a view (optionally filtered)."""
        filters = BrowseFilter(keywords=keywords) if keywords else None
        return db.browse(self.entity_type(view), filters=filters)


def standard_views(schema: TaskSchema) -> ViewRegistry:
    """The Fig. 7 mapping: logic / transistor / physical."""
    registry = ViewRegistry(schema)
    if S.LOGIC_SPEC in schema:
        registry.bind("logic", S.LOGIC_SPEC)
    registry.bind("transistor", S.NETLIST)
    registry.bind("physical", S.LAYOUT)
    return registry
