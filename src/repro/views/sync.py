"""View transformations as flows (paper Fig. 8).

Two canonical flows over the standard schema:

* :func:`synthesis_flow` — Fig. 8a: synthesize the physical view from the
  transistor view (``PlacedLayout <- Placer(netlist, spec)``);
* :func:`verification_flow` — Fig. 8b: verify that the physical view
  corresponds to the transistor view (``Verification <-
  Verifier(reference=netlist, candidate=ExtractedNetlist <-
  Extractor(layout))``).

:func:`synthesize_physical` and :func:`verify_correspondence` bind and
execute them against a :class:`~repro.execution.context.DesignEnvironment`
— view management implemented *by* the flow manager rather than beside it,
which is the section's point.
"""

from __future__ import annotations

from ..core.flow import DynamicFlow
from ..execution.context import DesignEnvironment
from ..history.instance import EntityInstance
from ..schema import standard as S
from ..schema.schema import TaskSchema


def synthesis_flow(schema: TaskSchema,
                   name: str = "synthesize-physical") -> DynamicFlow:
    """Fig. 8a: transistor view -> physical view."""
    flow = DynamicFlow(schema, name)
    goal = flow.place(S.PLACED_LAYOUT)
    flow.expand(goal)
    return flow


def verification_flow(schema: TaskSchema,
                      name: str = "verify-views") -> DynamicFlow:
    """Fig. 8b: check that physical view matches transistor view."""
    flow = DynamicFlow(schema, name)
    goal = flow.place(S.VERIFICATION)
    flow.expand(goal)
    candidate = flow.graph.data_suppliers(goal.node_id)["candidate"]
    candidate_node = flow.node(candidate)
    flow.specialize(candidate_node, S.EXTRACTED_NETLIST)
    flow.expand(candidate_node)
    return flow


def synthesize_physical(env: DesignEnvironment,
                        netlist: EntityInstance | str,
                        spec: EntityInstance | str,
                        placer: EntityInstance | str
                        ) -> EntityInstance:
    """Run the synthesis flow; returns the PlacedLayout instance."""
    flow = synthesis_flow(env.schema)
    goal = flow.sole_node_of_type(S.PLACED_LAYOUT)
    flow.bind(flow.sole_node_of_type(S.NETLIST), _id(netlist))
    flow.bind(flow.sole_node_of_type(S.PLACEMENT_SPEC), _id(spec))
    flow.bind(flow.sole_node_of_type(S.PLACER), _id(placer))
    report = env.run(flow)
    return env.db.get(report.created_of_node(goal.node_id)[0])


def verify_correspondence(env: DesignEnvironment,
                          netlist: EntityInstance | str,
                          layout: EntityInstance | str,
                          verifier: EntityInstance | str,
                          extractor: EntityInstance | str
                          ) -> EntityInstance:
    """Run the verification flow; returns the Verification instance.

    The physical view is extracted and compared against the transistor
    view; the Verification's derivation history records both views, so a
    later query can prove which layout version was verified against
    which netlist version.
    """
    flow = verification_flow(env.schema)
    goal = flow.sole_node_of_type(S.VERIFICATION)
    reference = flow.graph.data_suppliers(goal.node_id)["reference"]
    flow.bind(flow.node(reference), _id(netlist))
    flow.bind(flow.sole_node_of_type(S.LAYOUT), _id(layout))
    flow.bind(flow.sole_node_of_type(S.VERIFIER), _id(verifier))
    flow.bind(flow.sole_node_of_type(S.EXTRACTOR), _id(extractor))
    report = env.run(flow)
    return env.db.get(report.created_of_node(goal.node_id)[0])


def views_in_correspondence(env: DesignEnvironment,
                            netlist: EntityInstance | str,
                            layout: EntityInstance | str,
                            verifier: EntityInstance | str,
                            extractor: EntityInstance | str) -> bool:
    """Convenience wrapper returning the boolean LVS outcome."""
    verification = verify_correspondence(env, netlist, layout, verifier,
                                         extractor)
    return bool(env.db.data(verification).matched)


def _id(instance: EntityInstance | str) -> str:
    return instance if isinstance(instance, str) else instance.instance_id
