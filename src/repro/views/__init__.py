"""Design views and view-correspondence flows (paper Fig. 7/8)."""

from .sync import (synthesis_flow, synthesize_physical, verification_flow,
                   verify_correspondence, views_in_correspondence)
from .view import ViewBinding, ViewError, ViewRegistry, standard_views

__all__ = [
    "ViewBinding",
    "ViewError",
    "ViewRegistry",
    "standard_views",
    "synthesis_flow",
    "synthesize_physical",
    "verification_flow",
    "verify_correspondence",
    "views_in_correspondence",
]
