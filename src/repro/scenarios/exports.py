"""History + run exports: governance-graph JSONL and ontology triples.

Two external contracts over a saved environment (scenario or not):

* **Governance JSONL** (``cg.v1``, SNIPPETS §2): one self-describing
  record per line — a header, then typed nodes
  (Task/Run/Artifact/GateResult/Actor), then typed edges (``owns``,
  ``implements``, ``produced``, ``evaluated_by``, ``depends_on``).
  Every node carries the required property set (its id, ``scope``,
  ``source_ref``, ``schema_version``, ``timestamp``) plus the two-clock
  split: ``timestamp`` is the *fast* clock (per-task execution events),
  ``clock_slow`` the *slow* clock (schema/corpus evolution — the schema
  name and manifest format this history was produced under).
  :func:`materialize_governance` rebuilds the graph from the lines, and
  :func:`validate_governance` checks it matches the source task graph
  node/edge-for-edge (data nodes ↔ Tasks, data edges ↔ ``depends_on``)
  and the history instance-for-instance (↔ Artifacts).

* **Triples JSONL**: subject/predicate/object lines in the spirit of
  the ontology-based model-management work — ``rdf:type`` /
  ``rdfs:subClassOf`` for the schema, ``repro:digest`` /
  ``repro:producedBy`` / ``repro:derivedFrom`` / ``repro:input/<role>``
  for the history.  Deterministically sorted and timestamp-free, so a
  seeded corpus run exports byte-identical triples on every executor.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.taskgraph import DepKind
from ..execution.context import DesignEnvironment
from .synthetic import canonical_json, corpus_digest

GOVERNANCE_FORMAT = "cg.v1"
TRIPLES_FORMAT = "triples.v1"

TASK = "Task"
RUN = "Run"
ARTIFACT = "Artifact"
GATE_RESULT = "GateResult"
ACTOR = "Actor"

OWNS = "owns"
IMPLEMENTS = "implements"
PRODUCED = "produced"
EVALUATED_BY = "evaluated_by"
DEPENDS_ON = "depends_on"


def _node(node_type: str, node_id: str,
          props: dict[str, Any]) -> dict[str, Any]:
    return {"record": "node", "schema_version": GOVERNANCE_FORMAT,
            "node_type": node_type, "id": node_id, "props": props}


def _edge(edge_type: str, src: str, dst: str) -> dict[str, Any]:
    return {"record": "edge", "schema_version": GOVERNANCE_FORMAT,
            "edge_type": edge_type, "src": src, "dst": dst}


def governance_records(env: DesignEnvironment,
                       runs: Sequence[Any] = (), *,
                       scope: str = "",
                       source_ref: str = "") -> list[dict[str, Any]]:
    """The governance graph of one environment, as JSONL-ready dicts.

    ``runs`` are ledger :class:`~repro.obs.ledger.RunRecord` entries;
    instances join to them through the shared ``trace_id`` (stamped on
    traced runs), which is what makes the Run→Artifact ``produced``
    edges materializable.
    """
    scope = scope or env.schema.name
    source_ref = source_ref or f"schema:{env.schema.name}"
    slow_clock = f"{source_ref}/{GOVERNANCE_FORMAT}"
    shared = {"scope": scope, "source_ref": source_ref,
              "clock_slow": slow_clock}
    nodes: list[dict[str, Any]] = []
    edges: list[dict[str, Any]] = []

    users = sorted({env.user}
                   | {instance.user
                      for instance in env.db.instances()
                      if instance.user})
    for user in users:
        nodes.append(_node(ACTOR, f"actor:{user}",
                           {"actor_id": user, "timestamp": 0.0,
                            **shared}))

    task_ids: dict[tuple[str, str], str] = {}
    for flow_name in sorted(env.flow_catalog.names()):
        graph = env.flow_catalog.select(flow_name).graph
        tool_of: dict[str, str] = {}
        for edge in graph.edges():
            if edge.kind is DepKind.FUNCTIONAL:
                tool_of[edge.consumer] = \
                    graph.node(edge.supplier).entity_type
        for node in graph.nodes():
            if env.schema.entity(node.entity_type).is_tool:
                continue
            task_id = f"task:{flow_name}:{node.node_id}"
            task_ids[(flow_name, node.node_id)] = task_id
            nodes.append(_node(TASK, task_id, {
                "task_id": task_id,
                "flow": flow_name,
                "entity_type": node.entity_type,
                "tool": tool_of.get(node.node_id),
                "timestamp": 0.0,
                **shared}))
            edges.append(_edge(OWNS, f"actor:{env.user}", task_id))
        for edge in graph.edges():
            if edge.kind is not DepKind.DATA:
                continue
            consumer = task_ids.get((flow_name, edge.consumer))
            supplier = task_ids.get((flow_name, edge.supplier))
            if consumer and supplier:
                edges.append(_edge(DEPENDS_ON, consumer, supplier))

    run_by_trace: dict[str, str] = {}
    for record in runs:
        run_id = f"run:{record.run_id}"
        if record.trace_id:
            run_by_trace[record.trace_id] = run_id
        nodes.append(_node(RUN, run_id, {
            "run_id": record.run_id,
            "flow": record.flow,
            "executor": record.executor,
            "cache_policy": record.cache_policy,
            "runs": record.runs,
            "created": record.created,
            "errors": record.errors,
            "trace_id": record.trace_id,
            "timestamp": record.timestamp,
            **shared}))
        for (flow_name, node_id), task_id in sorted(task_ids.items()):
            if flow_name == record.flow:
                edges.append(_edge(IMPLEMENTS, run_id, task_id))
        gate_id = f"gate:{record.run_id}"
        nodes.append(_node(GATE_RESULT, gate_id, {
            "gate_id": gate_id,
            "check": "run-completed",
            "status": "fail" if record.errors else "pass",
            "run_id": record.run_id,
            "timestamp": record.timestamp,
            **shared}))
        edges.append(_edge(EVALUATED_BY, run_id, gate_id))

    for instance in env.db.instances():
        artifact_id = f"artifact:{instance.instance_id}"
        nodes.append(_node(ARTIFACT, artifact_id, {
            "artifact_id": artifact_id,
            "entity_type": instance.entity_type,
            "digest": instance.data_ref,
            "user": instance.user,
            "derived": instance.is_derived,
            "timestamp": instance.timestamp,
            **shared}))
        run_id = run_by_trace.get(instance.trace_id)
        if run_id is not None:
            edges.append(_edge(PRODUCED, run_id, artifact_id))

    header = {"record": "header",
              "schema_version": GOVERNANCE_FORMAT,
              "scope": scope, "source_ref": source_ref,
              "clock_fast": "unix-seconds event timestamps",
              "clock_slow": slow_clock}
    nodes.sort(key=lambda n: (n["node_type"], n["id"]))
    edges.sort(key=lambda e: (e["edge_type"], e["src"], e["dst"]))
    return [header, *nodes, *edges]


# ---------------------------------------------------------------------------
# materialize graph from JSONL + validators
# ---------------------------------------------------------------------------
@dataclass
class GovernanceGraph:
    """A governance export, re-materialized."""

    header: dict[str, Any] = field(default_factory=dict)
    nodes: dict[str, dict[str, Any]] = field(default_factory=dict)
    edges: list[tuple[str, str, str]] = field(default_factory=list)

    def nodes_of_type(self, node_type: str) -> tuple[str, ...]:
        return tuple(sorted(
            node_id for node_id, record in self.nodes.items()
            if record["node_type"] == node_type))

    def edges_of_type(self, edge_type: str
                      ) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((src, dst)
                            for kind, src, dst in self.edges
                            if kind == edge_type))

    def props(self, node_id: str) -> dict[str, Any]:
        return self.nodes[node_id].get("props", {})


def materialize_governance(
        lines: Iterable[str | dict[str, Any]]) -> GovernanceGraph:
    """Rebuild the graph from exported JSONL lines (or parsed dicts)."""
    graph = GovernanceGraph()
    for line in lines:
        record = (json.loads(line) if isinstance(line, str)
                  else line)
        kind = record.get("record")
        if kind == "header":
            graph.header = record
        elif kind == "node":
            graph.nodes[record["id"]] = record
        elif kind == "edge":
            graph.edges.append((record["edge_type"], record["src"],
                                record["dst"]))
        else:
            raise ValueError(
                f"governance line has unknown record kind {kind!r}")
    return graph


_REQUIRED_PROPS = ("scope", "source_ref", "clock_slow", "timestamp")


def validate_governance(graph: GovernanceGraph,
                        env: DesignEnvironment,
                        runs: Sequence[Any] = ()) -> list[str]:
    """Check a re-materialized graph against its source environment.

    Returns a list of problems (empty = valid): the Task/``depends_on``
    projection must match every cataloged flow's data nodes and data
    edges node/edge-for-edge, Artifacts must match history instances
    one-for-one (digests included), and every ledger run must have its
    Run node, GateResult and ``evaluated_by`` edge.
    """
    problems: list[str] = []
    if graph.header.get("schema_version") != GOVERNANCE_FORMAT:
        problems.append("missing or mismatched cg.v1 header")
    for node_id, record in sorted(graph.nodes.items()):
        props = record.get("props", {})
        for required in _REQUIRED_PROPS:
            if required not in props:
                problems.append(
                    f"{node_id}: missing required prop {required!r}")

    expected_tasks: set[str] = set()
    expected_deps: set[tuple[str, str]] = set()
    for flow_name in env.flow_catalog.names():
        flow_graph = env.flow_catalog.select(flow_name).graph
        data_nodes = {
            node.node_id for node in flow_graph.nodes()
            if not env.schema.entity(node.entity_type).is_tool}
        for node_id in data_nodes:
            expected_tasks.add(f"task:{flow_name}:{node_id}")
        for edge in flow_graph.edges():
            if edge.kind is DepKind.DATA \
                    and edge.consumer in data_nodes \
                    and edge.supplier in data_nodes:
                expected_deps.add(
                    (f"task:{flow_name}:{edge.consumer}",
                     f"task:{flow_name}:{edge.supplier}"))
    exported_tasks = set(graph.nodes_of_type(TASK))
    for missing in sorted(expected_tasks - exported_tasks):
        problems.append(f"flow data node has no Task node: {missing}")
    for extra in sorted(exported_tasks - expected_tasks):
        problems.append(f"Task node has no flow data node: {extra}")
    exported_deps = set(graph.edges_of_type(DEPENDS_ON))
    for missing_edge in sorted(expected_deps - exported_deps):
        problems.append(
            f"flow data edge has no depends_on edge: {missing_edge}")
    for extra_edge in sorted(exported_deps - expected_deps):
        problems.append(
            f"depends_on edge has no flow data edge: {extra_edge}")

    instances = {instance.instance_id: instance
                 for instance in env.db.instances()}
    expected_artifacts = {f"artifact:{instance_id}"
                          for instance_id in instances}
    exported_artifacts = set(graph.nodes_of_type(ARTIFACT))
    for missing in sorted(expected_artifacts - exported_artifacts):
        problems.append(f"instance has no Artifact node: {missing}")
    for extra in sorted(exported_artifacts - expected_artifacts):
        problems.append(f"Artifact node has no instance: {extra}")
    for instance_id, instance in sorted(instances.items()):
        artifact_id = f"artifact:{instance_id}"
        if artifact_id in graph.nodes \
                and graph.props(artifact_id).get("digest") \
                != instance.data_ref:
            problems.append(f"{artifact_id}: digest mismatch")

    for record in runs:
        run_id = f"run:{record.run_id}"
        gate_id = f"gate:{record.run_id}"
        if run_id not in graph.nodes:
            problems.append(f"ledger run has no Run node: {run_id}")
        if gate_id not in graph.nodes:
            problems.append(f"run has no GateResult node: {gate_id}")
        if (run_id, gate_id) not in graph.edges_of_type(EVALUATED_BY):
            problems.append(
                f"missing evaluated_by edge {run_id} -> {gate_id}")
    for src, dst in graph.edges_of_type(PRODUCED):
        if src not in graph.nodes or dst not in graph.nodes:
            problems.append(
                f"produced edge touches unknown node: {src} -> {dst}")
    return problems


def governance_fingerprint(
        lines: Iterable[str | dict[str, Any]]) -> str:
    """Digest over the deterministic projection of an export.

    Run ids and timestamps differ between runs; the structural rest —
    task graph, artifacts with digests, node/edge counts by type — must
    not.  CI compares this fingerprint against the exemplar's.
    """
    graph = materialize_governance(lines)
    node_counts: dict[str, int] = {}
    for record in graph.nodes.values():
        node_type = record["node_type"]
        node_counts[node_type] = node_counts.get(node_type, 0) + 1
    edge_counts: dict[str, int] = {}
    for kind, _, _ in graph.edges:
        edge_counts[kind] = edge_counts.get(kind, 0) + 1
    projection = {
        "tasks": list(graph.nodes_of_type(TASK)),
        "artifacts": [
            [artifact_id, graph.props(artifact_id).get("digest")]
            for artifact_id in graph.nodes_of_type(ARTIFACT)],
        "actors": list(graph.nodes_of_type(ACTOR)),
        "depends_on": [list(edge)
                       for edge in graph.edges_of_type(DEPENDS_ON)],
        "node_counts": node_counts,
        "edge_counts": edge_counts,
    }
    return corpus_digest(canonical_json(projection))


# ---------------------------------------------------------------------------
# ontology-flavored triples
# ---------------------------------------------------------------------------
def triples_records(env: DesignEnvironment) -> list[dict[str, Any]]:
    """Subject/predicate/object lines for schema + history.

    Timestamp-free and sorted, so the export of a seeded scenario run
    is byte-identical across executors and backends.
    """
    triples: list[tuple[str, str, str]] = []
    for entity in env.schema.entities():
        subject = f"type:{entity.name}"
        triples.append((subject, "rdf:type",
                        "repro:ToolType" if entity.is_tool
                        else "repro:DataType"))
        if entity.parent:
            triples.append((subject, "rdfs:subClassOf",
                            f"type:{entity.parent}"))
    for instance in env.db.instances():
        subject = f"inst:{instance.instance_id}"
        triples.append((subject, "rdf:type",
                        f"type:{instance.entity_type}"))
        triples.append((subject, "repro:digest",
                        instance.data_ref or ""))
        triples.append((subject, "repro:user", instance.user))
        derivation = instance.derivation
        if derivation is None:
            continue
        if derivation.tool is not None:
            triples.append((subject, "repro:producedBy",
                            f"inst:{derivation.tool}"))
        for role, input_id in derivation.inputs:
            triples.append((subject, "repro:derivedFrom",
                            f"inst:{input_id}"))
            triples.append((subject, f"repro:input/{role}",
                            f"inst:{input_id}"))
    return [{"s": s, "p": p, "o": o}
            for s, p, o in sorted(triples)]


def validate_triples(lines: Iterable[str | dict[str, Any]],
                     env: DesignEnvironment) -> list[str]:
    """Parse + count-consistency checks against the history database.

    Returns a list of problems (empty = valid): every line must be an
    ``{s, p, o}`` object and the per-predicate counts must match the
    database — one ``rdf:type``/``repro:digest`` per instance, one
    ``repro:producedBy`` per tool-derived instance, one
    ``repro:derivedFrom`` (and one role-qualified ``repro:input/*``)
    per derivation input pair.
    """
    problems: list[str] = []
    counts: dict[str, int] = {}
    for index, line in enumerate(lines):
        record = json.loads(line) if isinstance(line, str) else line
        if set(record) != {"s", "p", "o"}:
            problems.append(
                f"line {index}: not an s/p/o triple: {record!r}")
            continue
        predicate = record["p"]
        key = ("repro:input/*" if predicate.startswith("repro:input/")
               else predicate)
        counts[key] = counts.get(key, 0) + 1
    instances = list(env.db.instances())
    derived = [instance for instance in instances
               if instance.derivation is not None
               and instance.derivation.tool is not None]
    pairs = sum(len(instance.derivation.inputs)
                for instance in instances
                if instance.derivation is not None)
    type_triples = counts.get("rdf:type", 0) - len(env.schema.entities())
    expectations = (
        ("rdf:type (instances)", type_triples, len(instances)),
        ("repro:digest", counts.get("repro:digest", 0),
         len(instances)),
        ("repro:user", counts.get("repro:user", 0), len(instances)),
        ("repro:producedBy", counts.get("repro:producedBy", 0),
         len(derived)),
        ("repro:derivedFrom", counts.get("repro:derivedFrom", 0),
         pairs),
        ("repro:input/*", counts.get("repro:input/*", 0), pairs),
    )
    for label, actual, expected in expectations:
        if actual != expected:
            problems.append(
                f"{label}: {actual} triple(s), database expects "
                f"{expected}")
    return problems


# ---------------------------------------------------------------------------
# serialization helpers
# ---------------------------------------------------------------------------
def render_jsonl(records: Iterable[dict[str, Any]]) -> str:
    """One canonical JSON object per line (sorted keys, no spaces)."""
    text = "\n".join(canonical_json(record) for record in records)
    return text + "\n" if text else ""


def write_jsonl(records: Iterable[dict[str, Any]],
                path: str | pathlib.Path) -> pathlib.Path:
    target = pathlib.Path(path)
    target.write_text(render_jsonl(records), encoding="utf-8")
    return target


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, Any]]:
    lines = pathlib.Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
