"""Seeded scenario-corpus generator (the ``corpus.v1`` contract).

A corpus is a deterministic function of one integer seed: a set of
*scenarios*, each a valid task schema plus a bound flow template
spanning one of the five dependency shapes real design networks are
built from (SNIPPETS §3):

* ``independent`` — ``width`` disjoint source→tool→output branches;
* ``chain`` — one linear derivation chain of length ``depth``;
* ``diamond`` — a source fanning into two chains of length ``depth``
  that re-join;
* ``fork_join`` — one source consumed by ``fanout`` parallel tools
  whose outputs a join tool merges;
* ``pipeline`` — ``width`` parallel lanes through ``depth`` stages,
  with each stage's tool type *shared* across lanes.

Because every tool is synthetic and seed-derived
(:mod:`repro.scenarios.synthetic`), the generator can compute the
complete expected history — per-type ``data_ref`` digests and the
run count — *offline*, by pure simulation, and bake it into the
manifest.  ``repro corpus run`` then checks real executor output
against the manifest, which is what makes the corpus a differential
test matrix: every executor × backend combination must land on the
same digests the simulation predicted.

The manifest (``corpus.json``) is written with sorted keys, fixed
indentation and no timestamps, so the same seed regenerates the same
bytes — CI gates on that.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import ReproError
from ..execution.context import DesignEnvironment
from ..history.datastore import DataStore
from ..schema.builder import SchemaBuilder
from ..schema.schema import TaskSchema
from .synthetic import (SALT_MARKER, canonical_json, corpus_digest,
                        derived_payload, register_corpus_encapsulations,
                        source_payload)

CORPUS_FORMAT = "corpus.v1"
CORPUS_FILE = "corpus.json"
#: Every scenario environment catalogs its flow under this name.
MAIN_FLOW = "main"

SHAPE_INDEPENDENT = "independent"
SHAPE_CHAIN = "chain"
SHAPE_DIAMOND = "diamond"
SHAPE_FORK_JOIN = "fork_join"
SHAPE_PIPELINE = "pipeline"
SHAPES = (SHAPE_INDEPENDENT, SHAPE_CHAIN, SHAPE_DIAMOND,
          SHAPE_FORK_JOIN, SHAPE_PIPELINE)


@dataclass(frozen=True)
class ScenarioNode:
    """One entity type of a scenario: a source or a derived node.

    ``inputs`` name the consumed data types; the input role equals the
    consumed type name (the schema's default role).  The node list of a
    scenario is emitted in topological order, which the simulation and
    the flow builder both rely on.
    """

    entity_type: str
    tool_type: str | None
    inputs: tuple[str, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """The deterministic recipe for one generated scenario."""

    scenario_id: str
    shape: str
    seed: int
    width: int
    depth: int
    fanout: int


@dataclass(frozen=True)
class CorpusSpec:
    """Generator parameters: one seed, one size point, five shapes."""

    seed: int = 0
    width: int = 2
    depth: int = 2
    fanout: int = 2
    per_shape: int = 1
    shapes: tuple[str, ...] = SHAPES


# ---------------------------------------------------------------------------
# the five dependency shapes
# ---------------------------------------------------------------------------
def _independent(spec: ScenarioSpec) -> list[ScenarioNode]:
    nodes: list[ScenarioNode] = []
    for index in range(spec.width):
        nodes.append(ScenarioNode(f"Src{index}", None))
        nodes.append(ScenarioNode(f"Out{index}", f"Make{index}",
                                  (f"Src{index}",)))
    return nodes


def _chain(spec: ScenarioSpec) -> list[ScenarioNode]:
    nodes = [ScenarioNode("Src0", None)]
    previous = "Src0"
    for stage in range(1, spec.depth + 1):
        nodes.append(ScenarioNode(f"Stage{stage}", f"Step{stage}",
                                  (previous,)))
        previous = f"Stage{stage}"
    return nodes


def _diamond(spec: ScenarioSpec) -> list[ScenarioNode]:
    nodes = [ScenarioNode("Src0", None)]
    tips: list[str] = []
    for branch in ("A", "B"):
        previous = "Src0"
        for stage in range(1, spec.depth + 1):
            name = f"{branch}{stage}"
            nodes.append(ScenarioNode(name, f"Walk{branch}{stage}",
                                      (previous,)))
            previous = name
        tips.append(previous)
    nodes.append(ScenarioNode("Join", "Merge", tuple(tips)))
    return nodes


def _fork_join(spec: ScenarioSpec) -> list[ScenarioNode]:
    nodes = [ScenarioNode("Src0", None)]
    forks: list[str] = []
    for index in range(spec.fanout):
        name = f"Fork{index}"
        nodes.append(ScenarioNode(name, f"Split{index}", ("Src0",)))
        forks.append(name)
    nodes.append(ScenarioNode("Join", "Merge", tuple(forks)))
    return nodes


def _pipeline(spec: ScenarioSpec) -> list[ScenarioNode]:
    """Lanes × stages with stage tool types shared across lanes."""
    nodes: list[ScenarioNode] = []
    for lane in range(spec.width):
        nodes.append(ScenarioNode(f"Lane{lane}In", None))
        previous = f"Lane{lane}In"
        for stage in range(1, spec.depth + 1):
            name = f"Lane{lane}S{stage}"
            nodes.append(ScenarioNode(name, f"Stage{stage}",
                                      (previous,)))
            previous = name
    return nodes


_SHAPE_BUILDERS: dict[str, Callable[[ScenarioSpec],
                                    list[ScenarioNode]]] = {
    SHAPE_INDEPENDENT: _independent,
    SHAPE_CHAIN: _chain,
    SHAPE_DIAMOND: _diamond,
    SHAPE_FORK_JOIN: _fork_join,
    SHAPE_PIPELINE: _pipeline,
}


def scenario_nodes(spec: ScenarioSpec) -> tuple[ScenarioNode, ...]:
    """The scenario's node list, topologically ordered."""
    try:
        builder = _SHAPE_BUILDERS[spec.shape]
    except KeyError:
        raise ReproError(
            f"unknown scenario shape {spec.shape!r}; choose from "
            f"{', '.join(SHAPES)}") from None
    if spec.width < 1 or spec.depth < 1 or spec.fanout < 2:
        raise ReproError(
            f"scenario {spec.scenario_id!r}: need width >= 1, "
            f"depth >= 1 and fanout >= 2, got width={spec.width} "
            f"depth={spec.depth} fanout={spec.fanout}")
    return tuple(builder(spec))


# ---------------------------------------------------------------------------
# seed-derived salts and the offline simulation
# ---------------------------------------------------------------------------
def tool_salts(spec: ScenarioSpec) -> dict[str, str]:
    """Per-tool-type salt; rides in the schema and the manifest."""
    salts: dict[str, str] = {}
    for node in scenario_nodes(spec):
        if node.tool_type is not None and node.tool_type not in salts:
            salts[node.tool_type] = corpus_digest(
                f"tool:{spec.seed}:{spec.scenario_id}:"
                f"{node.tool_type}")[:16]
    return salts


def source_salt(spec: ScenarioSpec) -> str:
    """The salt all of one scenario's source payloads derive from."""
    return corpus_digest(f"source:{spec.seed}:{spec.scenario_id}")[:16]


def simulate_payloads(spec: ScenarioSpec) -> dict[str, Any]:
    """Every data object a full run will produce, computed offline.

    Walks the node list in topological order applying the same pure
    payload functions the registered synthetic tools run, so a correct
    executor — any executor — must land on exactly these objects.
    """
    salts = tool_salts(spec)
    sources = source_salt(spec)
    payloads: dict[str, Any] = {}
    for node in scenario_nodes(spec):
        if node.tool_type is None:
            payloads[node.entity_type] = source_payload(
                sources, node.entity_type)
        else:
            inputs = {name: payloads[name] for name in node.inputs}
            payloads[node.entity_type] = derived_payload(
                salts[node.tool_type], node.entity_type, inputs)
    return payloads


def expected_signature(spec: ScenarioSpec) -> list[tuple[str, str]]:
    """The (entity type, data_ref) multiset a completed run must show.

    Uses a scratch :class:`DataStore` so the digests go through the
    exact canonical-encoding path the history database uses, including
    the codec wrapping of dicts — no duplicated hashing logic.
    """
    store = DataStore()
    pairs: list[tuple[str, str]] = []
    for tool_type in tool_salts(spec):
        # install_tool's default descriptor for a code-only tool
        pairs.append((tool_type,
                      store.put({"tool": tool_type, "name": ""})))
    for entity_type, payload in simulate_payloads(spec).items():
        pairs.append((entity_type, store.put(payload)))
    return sorted(pairs)


def signature_digest(pairs: Iterable[tuple[str, str]]) -> str:
    """One digest over a history signature (manifest + CI currency)."""
    return corpus_digest(canonical_json([list(pair)
                                         for pair in sorted(pairs)]))


def history_signature(env: DesignEnvironment) -> list[tuple[str, str]]:
    """(entity type, content digest) multiset of a live history."""
    return sorted((instance.entity_type, instance.data_ref)
                  for instance in env.db.instances())


# ---------------------------------------------------------------------------
# schema + environment materialization
# ---------------------------------------------------------------------------
def build_scenario_schema(spec: ScenarioSpec) -> TaskSchema:
    """A validated task schema for one scenario."""
    builder = SchemaBuilder(spec.scenario_id)
    salts = tool_salts(spec)
    for tool_type, salt in salts.items():
        builder.tool(tool_type, description=SALT_MARKER + salt)
    nodes = scenario_nodes(spec)
    for node in nodes:
        builder.data(node.entity_type,
                     description=f"{spec.shape} scenario node")
    for node in nodes:
        if node.tool_type is not None:
            builder.produced_by(node.entity_type, node.tool_type,
                                inputs=list(node.inputs))
    return builder.build()


def materialize_scenario(spec: ScenarioSpec, *, user: str = "corpus",
                         clock: Callable[[], float] | None = None
                         ) -> DesignEnvironment:
    """A ready-to-run environment: tools installed, sources bound.

    The returned environment catalogs one fully bound flow under
    :data:`MAIN_FLOW`; running it derives every non-source node.
    """
    env = DesignEnvironment(build_scenario_schema(spec), user=user,
                            clock=clock)
    register_corpus_encapsulations(env)
    nodes = scenario_nodes(spec)
    tool_instances: dict[str, str] = {}
    for node in nodes:
        if node.tool_type is not None \
                and node.tool_type not in tool_instances:
            tool_instances[node.tool_type] = env.install_tool(
                node.tool_type).instance_id
    sources = source_salt(spec)
    flow = env.new_flow(MAIN_FLOW)
    placed: dict[str, Any] = {}
    for node in nodes:
        if node.tool_type is None:
            instance = env.install_data(
                node.entity_type,
                source_payload(sources, node.entity_type),
                name=node.entity_type)
            flow_node = flow.graph.add_node(node.entity_type)
            flow_node.bind(instance.instance_id)
        else:
            flow_node = flow.place(node.entity_type)
        placed[node.entity_type] = flow_node
    for node in nodes:
        if node.tool_type is None:
            continue
        tool_node = flow.graph.add_node(node.tool_type)
        tool_node.bind(tool_instances[node.tool_type])
        flow.connect(placed[node.entity_type], tool_node)
        for input_type in node.inputs:
            flow.connect(placed[node.entity_type], placed[input_type],
                         role=input_type)
    env.save_flow(MAIN_FLOW, flow,
                  description=f"{spec.shape} corpus scenario "
                              f"(seed {spec.seed})")
    return env


# ---------------------------------------------------------------------------
# the corpus.v1 manifest
# ---------------------------------------------------------------------------
def scenario_entry(spec: ScenarioSpec) -> dict[str, Any]:
    """One scenario's manifest entry, expected digests included."""
    nodes = scenario_nodes(spec)
    pairs = expected_signature(spec)
    refs: dict[str, str] = {}
    for entity_type, ref in pairs:
        refs[entity_type] = ref
    return {
        "scenario_id": spec.scenario_id,
        "shape": spec.shape,
        "seed": spec.seed,
        "width": spec.width,
        "depth": spec.depth,
        "fanout": spec.fanout,
        "flow": MAIN_FLOW,
        "nodes": [
            {"type": node.entity_type, "tool": node.tool_type,
             "inputs": list(node.inputs)}
            for node in nodes
        ],
        "tool_salts": tool_salts(spec),
        "source_salt": source_salt(spec),
        "expected": {
            "instances": len(pairs),
            "runs": sum(1 for node in nodes
                        if node.tool_type is not None),
            "data_refs": refs,
            "history_digest": signature_digest(pairs),
        },
    }


def manifest_digest(body: dict[str, Any]) -> str:
    """Digest over the manifest body, excluding the digest field."""
    trimmed = {key: value for key, value in body.items()
               if key != "digest"}
    return corpus_digest(canonical_json(trimmed))


def generate_corpus(corpus: CorpusSpec) -> dict[str, Any]:
    """The complete, self-describing corpus manifest for one seed."""
    if corpus.per_shape < 1:
        raise ReproError(
            f"per_shape must be >= 1, got {corpus.per_shape}")
    scenarios: list[dict[str, Any]] = []
    index = 0
    for shape in corpus.shapes:
        if shape not in SHAPES:
            raise ReproError(
                f"unknown scenario shape {shape!r}; choose from "
                f"{', '.join(SHAPES)}")
        for _ in range(corpus.per_shape):
            scenario_id = f"s{index:02d}-{shape}"
            seed = int(corpus_digest(
                f"scenario:{corpus.seed}:{index}:{shape}")[:8], 16)
            spec = ScenarioSpec(scenario_id, shape, seed,
                                corpus.width, corpus.depth,
                                corpus.fanout)
            scenarios.append(scenario_entry(spec))
            index += 1
    body: dict[str, Any] = {
        "format": CORPUS_FORMAT,
        "seed": corpus.seed,
        "parameters": {
            "width": corpus.width,
            "depth": corpus.depth,
            "fanout": corpus.fanout,
            "per_shape": corpus.per_shape,
            "shapes": list(corpus.shapes),
        },
        "scenarios": scenarios,
    }
    body["digest"] = manifest_digest(body)
    return body


def write_corpus(corpus: CorpusSpec,
                 directory: str | pathlib.Path) -> pathlib.Path:
    """Generate and persist ``corpus.json``; returns its path."""
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    target = root / CORPUS_FILE
    target.write_text(
        json.dumps(generate_corpus(corpus), indent=1, sort_keys=True)
        + "\n", encoding="utf-8")
    return target


def load_corpus(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and integrity-check a manifest (file or corpus directory)."""
    candidate = pathlib.Path(path)
    if candidate.is_dir():
        candidate = candidate / CORPUS_FILE
    if not candidate.exists():
        raise ReproError(f"{candidate} is not a corpus "
                         f"(missing {CORPUS_FILE})")
    manifest = json.loads(candidate.read_text(encoding="utf-8"))
    if manifest.get("format") != CORPUS_FORMAT:
        raise ReproError(
            f"unsupported corpus format {manifest.get('format')!r} "
            f"(this build reads {CORPUS_FORMAT!r})")
    if manifest.get("digest") != manifest_digest(manifest):
        raise ReproError(
            f"{candidate}: manifest digest mismatch — the file was "
            "edited or truncated; regenerate with 'repro corpus "
            "generate'")
    return manifest


def spec_from_entry(entry: dict[str, Any]) -> ScenarioSpec:
    """Rebuild the generator recipe from one manifest entry."""
    return ScenarioSpec(
        scenario_id=entry["scenario_id"],
        shape=entry["shape"],
        seed=int(entry["seed"]),
        width=int(entry["width"]),
        depth=int(entry["depth"]),
        fanout=int(entry["fanout"]),
    )


def scenario_specs(manifest: dict[str, Any]) -> tuple[ScenarioSpec, ...]:
    return tuple(spec_from_entry(entry)
                 for entry in manifest.get("scenarios", ()))
