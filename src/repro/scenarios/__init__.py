"""Seeded scenario corpora: generator, synthetic tools and exports.

The package behind ``repro corpus generate|run|export``: a deterministic
corpus of schemas + flow templates over the five dependency shapes
(independent / chain / diamond / fork-join / pipeline), synthetic tools
whose outputs are pure functions of the corpus seed, and two external
contracts over a saved environment — the ``cg.v1`` governance JSONL
graph and an ontology-flavored triples export.
"""

from .exports import (GOVERNANCE_FORMAT, TRIPLES_FORMAT, GovernanceGraph,
                      governance_fingerprint, governance_records,
                      materialize_governance, read_jsonl, render_jsonl,
                      triples_records, validate_governance,
                      validate_triples, write_jsonl)
from .generator import (CORPUS_FILE, CORPUS_FORMAT, MAIN_FLOW, SHAPES,
                        CorpusSpec, ScenarioNode, ScenarioSpec,
                        build_scenario_schema, expected_signature,
                        generate_corpus, history_signature, load_corpus,
                        manifest_digest, materialize_scenario,
                        scenario_entry, scenario_nodes, scenario_specs,
                        signature_digest, simulate_payloads,
                        spec_from_entry, tool_salts, write_corpus)
from .synthetic import (SALT_MARKER, canonical_json, corpus_digest,
                        derived_payload, register_corpus_encapsulations,
                        salt_of, source_payload, synthetic_tool)

__all__ = [
    "CORPUS_FILE",
    "CORPUS_FORMAT",
    "GOVERNANCE_FORMAT",
    "MAIN_FLOW",
    "SALT_MARKER",
    "SHAPES",
    "TRIPLES_FORMAT",
    "CorpusSpec",
    "GovernanceGraph",
    "ScenarioNode",
    "ScenarioSpec",
    "build_scenario_schema",
    "canonical_json",
    "corpus_digest",
    "derived_payload",
    "expected_signature",
    "generate_corpus",
    "governance_fingerprint",
    "governance_records",
    "history_signature",
    "load_corpus",
    "manifest_digest",
    "materialize_governance",
    "materialize_scenario",
    "read_jsonl",
    "register_corpus_encapsulations",
    "render_jsonl",
    "salt_of",
    "scenario_entry",
    "scenario_nodes",
    "scenario_specs",
    "signature_digest",
    "simulate_payloads",
    "source_payload",
    "spec_from_entry",
    "synthetic_tool",
    "tool_salts",
    "triples_records",
    "validate_governance",
    "validate_triples",
    "write_corpus",
    "write_jsonl",
]
