"""Seed-derived synthetic tools for generated scenario corpora.

Every tool type a generated scenario declares carries its seed *salt*
inside the entity-type description (``synthetic salt=<hex>``), so the
schema file alone is enough to rebuild the tool code after a reload —
the corpus equivalent of
:func:`repro.tools.encapsulations.register_standard_encapsulations`.

The tool body is a pure function of the salt and the input payloads:
one run produces, per output entity type, a small dict whose ``token``
is a sha256 over the salt, the output type and a digest of every input
role.  Two properties follow:

* **digest reproducibility** — the same corpus seed yields byte-for-byte
  identical data objects (and therefore identical content-addressed
  ``data_ref`` digests) on every executor and history backend;
* **cache correctness** — the salt rides in the encapsulation's preset
  arguments, so it is part of the encapsulation fingerprint and two
  scenarios never share derivation-cache keys.

The module-level function keeps the encapsulation picklable for the
process-pool executor, whose forked workers re-resolve it by qualified
name.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..execution.encapsulation import ToolContext, encapsulation

#: Marker prefix inside a generated tool type's description; everything
#: after it is the hex salt the synthetic tool mixes into its outputs.
SALT_MARKER = "synthetic salt="


def canonical_json(value: Any) -> str:
    """Canonical JSON used for every corpus-side digest."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def corpus_digest(text: str) -> str:
    """The corpus generator's one hash function (sha256 hex)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def source_payload(salt: str, entity_type: str) -> dict[str, Any]:
    """The deterministic data object installed for one source type."""
    token = corpus_digest(f"source:{salt}:{entity_type}")[:32]
    return {"kind": "source", "entity": entity_type, "token": token}


def derived_payload(salt: str, entity_type: str,
                    inputs: dict[str, Any]) -> dict[str, Any]:
    """One synthetic tool output for one output entity type.

    Mirrored by the generator's offline simulation: the manifest's
    expected digests are computed by calling exactly this function over
    the scenario's dependency structure, never by running a tool.
    """
    summary = {role: corpus_digest(canonical_json(value))[:32]
               for role, value in inputs.items()}
    token = corpus_digest(canonical_json(
        {"salt": salt, "entity": entity_type, "inputs": summary}))[:32]
    return {"kind": "derived", "entity": entity_type, "token": token,
            "inputs": summary}


def synthetic_tool(ctx: ToolContext, inputs: dict[str, Any]) -> Any:
    """Encapsulation body shared by every generated tool type."""
    salt = str(ctx.options.get("salt", ""))
    produced = {output_type: derived_payload(salt, output_type, inputs)
                for output_type in ctx.output_types}
    if len(ctx.output_types) == 1:
        return produced[ctx.output_types[0]]
    return produced


def salt_of(description: str) -> str | None:
    """Extract the salt from a generated tool type's description."""
    if description.startswith(SALT_MARKER):
        return description[len(SALT_MARKER):]
    return None


def register_corpus_encapsulations(env: Any) -> tuple[str, ...]:
    """Register the synthetic tool for every salted tool type.

    Safe on any environment: tool types without the description marker
    (standard schemas) and types that already resolve to an
    encapsulation are left alone, so the CLI can call this on every
    load exactly like the standard-tool registration.
    """
    registered: list[str] = []
    for entity in env.schema.tools():
        salt = salt_of(entity.description)
        if salt is None:
            continue
        if env.registry.has_encapsulation(entity.name):
            continue
        env.registry.register(
            entity.name,
            encapsulation(f"syn-{entity.name}", synthetic_tool,
                          salt=salt))
        registered.append(entity.name)
    return tuple(registered)
