"""Whole-environment persistence: save/load a design session.

The paper's framework persists three things: the task schema (the one
methodology artifact), the design history database (meta-data + shared
physical data), and the flow catalog (the plan-based approach's library).
:func:`save_environment` writes them as three JSON files in a directory;
:func:`load_environment` reconstructs a working
:class:`~repro.execution.context.DesignEnvironment`.

Tool *encapsulations* are code, not data: after loading, re-run the
site's tool installation (e.g.
:func:`repro.tools.install_standard_tools` registers encapsulations only
— already-installed tool instances are found in the history).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable

from .core.flow import DynamicFlow
from .errors import HistoryError
from .execution.context import DesignEnvironment
from .history.database import HistoryDatabase
from .history.datastore import CodecRegistry
from .schema.serialize import schema_from_dict, schema_to_dict

SCHEMA_FILE = "schema.json"
HISTORY_FILE = "history.json"
FLOWS_FILE = "flows.json"
META_FILE = "environment.json"
CACHE_FILE = "cache.json"
TRACE_FILE = "trace.jsonl"
LEDGER_FILE = "ledger.jsonl"
FORMAT_VERSION = 1


def save_environment(env: DesignEnvironment, directory: str | pathlib.Path
                     ) -> pathlib.Path:
    """Persist schema, history and flow catalog into a directory."""
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    (root / SCHEMA_FILE).write_text(
        json.dumps(schema_to_dict(env.schema), indent=1, sort_keys=True),
        encoding="utf-8")
    (root / HISTORY_FILE).write_text(
        json.dumps(env.db.to_dict(), indent=1, sort_keys=True),
        encoding="utf-8")
    flows = {}
    for name in env.flow_catalog.names():
        flow = env.flow_catalog.select(name)
        flows[name] = {
            "description": env.flow_catalog.description(name),
            "graph": flow.to_dict(),
        }
    (root / FLOWS_FILE).write_text(
        json.dumps(flows, indent=1, sort_keys=True), encoding="utf-8")
    (root / META_FILE).write_text(
        json.dumps({"format": FORMAT_VERSION, "user": env.user},
                   indent=1), encoding="utf-8")
    if env._cache is not None:
        (root / CACHE_FILE).write_text(
            json.dumps(env._cache.to_dict(), indent=1, sort_keys=True),
            encoding="utf-8")
    return root


def load_environment(directory: str | pathlib.Path, *,
                     codecs: CodecRegistry | None = None,
                     clock: Callable[[], float] | None = None
                     ) -> DesignEnvironment:
    """Rebuild an environment from :func:`save_environment` output."""
    root = pathlib.Path(directory)
    meta_path = root / META_FILE
    if not meta_path.exists():
        raise HistoryError(f"{root} is not a saved environment "
                           f"(missing {META_FILE})")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != FORMAT_VERSION:
        raise HistoryError(
            f"unsupported environment format {meta.get('format')!r}")
    schema = schema_from_dict(
        json.loads((root / SCHEMA_FILE).read_text(encoding="utf-8")))
    env = DesignEnvironment(schema, user=meta.get("user", "designer"),
                            codecs=codecs, clock=clock)
    env.db = HistoryDatabase.from_dict(
        schema,
        json.loads((root / HISTORY_FILE).read_text(encoding="utf-8")),
        codecs=codecs, clock=clock, bus=env.bus)
    flows_path = root / FLOWS_FILE
    if flows_path.exists():
        for name, spec in json.loads(
                flows_path.read_text(encoding="utf-8")).items():
            flow = DynamicFlow.from_dict(schema, spec["graph"])
            env.flow_catalog.register_flow(
                name, flow, description=spec.get("description", ""))
    cache_path = root / CACHE_FILE
    if cache_path.exists():
        # restore() only stages the snapshot; it is trusted (absorbed)
        # at first use, once the encapsulation registry's signature can
        # be compared — tool code registers after load returns.
        env.cache.restore(
            json.loads(cache_path.read_text(encoding="utf-8")))
    # The run ledger is on by default for saved environments: every
    # executed flow appends one record to ledger.jsonl.  A read-only
    # directory disables recording (reads via `repro ledger`/`repro
    # health` still work), and a missing ledger file is simply an
    # environment with no longitudinal history yet — never an error.
    if os.access(root, os.W_OK):
        env.attach_ledger(root / LEDGER_FILE)
    return env
