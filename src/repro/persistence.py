"""Whole-environment persistence: save/load a design session.

The paper's framework persists three things: the task schema (the one
methodology artifact), the design history database (meta-data + shared
physical data), and the flow catalog (the plan-based approach's library).
:func:`save_environment` writes them into a directory;
:func:`load_environment` reconstructs a working
:class:`~repro.execution.context.DesignEnvironment`.

The history supports two storage backends, recorded in the
``environment.json`` meta file:

* ``json`` (default, compatible with every earlier build) — the whole
  history as one ``history.json`` document, fully parsed on load;
* ``sqlite`` — an indexed ``history.sqlite`` WAL file
  (:class:`~repro.history.sqlite_store.SqliteHistoryStore`); loading
  only opens the file, and queries touch just the rows they need.

:func:`migrate_environment` converts an existing directory between the
two in place (idempotent; both backends answer every derivation query
identically).

Tool *encapsulations* are code, not data: after loading, re-run the
site's tool installation (e.g.
:func:`repro.tools.install_standard_tools` registers encapsulations only
— already-installed tool instances are found in the history).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable

from .core.flow import DynamicFlow
from .errors import HistoryError
from .execution.context import DesignEnvironment
from .history.database import HistoryDatabase, read_history_json
from .history.datastore import CodecRegistry
from .history.sqlite_store import SqliteHistoryStore
from .history.store import BACKEND_JSON, BACKEND_SQLITE, BACKENDS
from .schema.serialize import schema_from_dict, schema_to_dict

SCHEMA_FILE = "schema.json"
HISTORY_FILE = "history.json"
HISTORY_SQLITE_FILE = "history.sqlite"
FLOWS_FILE = "flows.json"
META_FILE = "environment.json"
CACHE_FILE = "cache.json"
TRACE_FILE = "trace.jsonl"
LEDGER_FILE = "ledger.jsonl"
MEMO_FILE = "memo.jsonl"
PROFILE_FILE = "profiles.jsonl"
SLOW_QUERY_FILE = "slow_queries.jsonl"
FORMAT_VERSION = 1


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise HistoryError(
            f"unknown history backend {backend!r}; choose from "
            f"{', '.join(BACKENDS)}")
    return backend


def _remove_sqlite(root: pathlib.Path) -> None:
    for suffix in ("", "-wal", "-shm"):
        target = root / (HISTORY_SQLITE_FILE + suffix)
        if target.exists():
            target.unlink()


def _write_sqlite_history(env: DesignEnvironment,
                          root: pathlib.Path) -> None:
    target = root / HISTORY_SQLITE_FILE
    store = env.db.store
    if isinstance(store, SqliteHistoryStore) \
            and store.path == target:
        store.flush()
        return
    # converting from another backend (or another file): rebuild the
    # target from scratch so no rows of a previous conversion survive
    _remove_sqlite(root)
    converted = env.db.converted(SqliteHistoryStore(target),
                                 codecs=env.db.datastore.codecs)
    converted.store.close()


def save_environment(env: DesignEnvironment,
                     directory: str | pathlib.Path, *,
                     backend: str | None = None) -> pathlib.Path:
    """Persist schema, history and flow catalog into a directory.

    ``backend`` selects the history storage format (``json`` or
    ``sqlite``); ``None`` keeps the backend the environment's database
    already uses.  Saving with a different backend converts the history
    on the way out and removes the superseded history file, so the
    directory always has exactly one authoritative history.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    backend = _check_backend(backend if backend is not None
                             else env.db.backend)
    (root / SCHEMA_FILE).write_text(
        json.dumps(schema_to_dict(env.schema), indent=1, sort_keys=True),
        encoding="utf-8")
    if backend == BACKEND_SQLITE:
        _write_sqlite_history(env, root)
        history_json = root / HISTORY_FILE
        if history_json.exists():
            history_json.unlink()
    else:
        (root / HISTORY_FILE).write_text(
            json.dumps(env.db.to_dict(), indent=1, sort_keys=True),
            encoding="utf-8")
        if not isinstance(env.db.store, SqliteHistoryStore):
            _remove_sqlite(root)
    flows = {}
    for name in env.flow_catalog.names():
        flow = env.flow_catalog.select(name)
        flows[name] = {
            "description": env.flow_catalog.description(name),
            "graph": flow.to_dict(),
        }
    (root / FLOWS_FILE).write_text(
        json.dumps(flows, indent=1, sort_keys=True), encoding="utf-8")
    (root / META_FILE).write_text(
        json.dumps({"format": FORMAT_VERSION, "user": env.user,
                    "history_backend": backend},
                   indent=1), encoding="utf-8")
    if env._cache is not None:
        (root / CACHE_FILE).write_text(
            json.dumps(env._cache.to_dict(), indent=1, sort_keys=True),
            encoding="utf-8")
    return root


def load_environment(directory: str | pathlib.Path, *,
                     codecs: CodecRegistry | None = None,
                     clock: Callable[[], float] | None = None
                     ) -> DesignEnvironment:
    """Rebuild an environment from :func:`save_environment` output."""
    root = pathlib.Path(directory)
    meta_path = root / META_FILE
    if not meta_path.exists():
        raise HistoryError(f"{root} is not a saved environment "
                           f"(missing {META_FILE})")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != FORMAT_VERSION:
        raise HistoryError(
            f"unsupported environment format {meta.get('format')!r}")
    schema = schema_from_dict(
        json.loads((root / SCHEMA_FILE).read_text(encoding="utf-8")))
    backend = _check_backend(meta.get("history_backend", BACKEND_JSON))
    if backend == BACKEND_SQLITE:
        sqlite_path = root / HISTORY_SQLITE_FILE
        if not sqlite_path.exists():
            raise HistoryError(
                f"{root} declares the sqlite history backend but "
                f"{HISTORY_SQLITE_FILE} is missing")
        env = DesignEnvironment(
            schema, user=meta.get("user", "designer"), codecs=codecs,
            clock=clock, store=SqliteHistoryStore(sqlite_path))
    else:
        env = DesignEnvironment(schema, user=meta.get("user", "designer"),
                                codecs=codecs, clock=clock)
        env.db = HistoryDatabase.from_dict(
            schema, read_history_json(root / HISTORY_FILE),
            codecs=codecs, clock=clock, bus=env.bus)
    flows_path = root / FLOWS_FILE
    if flows_path.exists():
        for name, spec in json.loads(
                flows_path.read_text(encoding="utf-8")).items():
            flow = DynamicFlow.from_dict(schema, spec["graph"])
            env.flow_catalog.register_flow(
                name, flow, description=spec.get("description", ""))
    cache_path = root / CACHE_FILE
    if cache_path.exists():
        # restore() only stages the snapshot; it is trusted (absorbed)
        # at first use, once the encapsulation registry's signature can
        # be compared — tool code registers after load returns.
        env.cache.restore(
            json.loads(cache_path.read_text(encoding="utf-8")))
    # The run ledger is on by default for saved environments: every
    # executed flow appends one record to ledger.jsonl.  A read-only
    # directory disables recording (reads via `repro ledger`/`repro
    # health` still work), and a missing ledger file is simply an
    # environment with no longitudinal history yet — never an error.
    if os.access(root, os.W_OK):
        env.attach_ledger(root / LEDGER_FILE)
        # Likewise the cross-process derivation memo: concurrent runs
        # (and procpool worker lanes) of this environment publish and
        # absorb remembered derivations through memo.jsonl.  The memo
        # is attached lazily with the cache, so environments that never
        # touch the cache never create the file.
        env._shared_memo_path = root / MEMO_FILE
    return env


def migrate_environment(directory: str | pathlib.Path, to_backend: str, *,
                        codecs: CodecRegistry | None = None) -> bool:
    """Convert a saved environment's history storage in place.

    Returns ``True`` when a conversion happened, ``False`` when the
    directory already uses ``to_backend`` (the command is idempotent:
    running it twice is a no-op the second time).  Conversion preserves
    every instance id, derivation record, timestamp and data reference,
    so queries answer identically before and after.
    """
    to_backend = _check_backend(to_backend)
    root = pathlib.Path(directory)
    env = load_environment(root, codecs=codecs)
    if env.db.backend == to_backend:
        if isinstance(env.db.store, SqliteHistoryStore):
            env.db.store.close()
        return False
    save_environment(env, root, backend=to_backend)
    if isinstance(env.db.store, SqliteHistoryStore):
        # save_environment leaves the old file alone while its store is
        # still open; close it, then retire the superseded history
        env.db.store.close()
        if to_backend == BACKEND_JSON:
            _remove_sqlite(root)
    return True
