"""Dynamically defined flows: task graphs, expansion, representations.

This package is the paper's primary contribution (section 3): the
:class:`~repro.core.flow.DynamicFlow` façade over a
:class:`~repro.core.taskgraph.TaskGraph`, the expand/unexpand/specialize
operations, the four design approaches, and the alternative flow
representations of Fig. 3 (bipartite diagram and Lisp-style form).
"""

from .approaches import data_based, goal_based, plan_based, tool_based
from .bipartite import Activity, BipartiteDiagram, to_bipartite
from .expand import (expand, expand_fully, expand_toward, forward_choices,
                     generalize, specialization_choices, specialize,
                     unexpand)
from .flow import DynamicFlow
from .lisp import flow_equation, snake_case, to_call, to_lisp
from .node import FlowEdge, FlowNode
from .render import ascii_graph, layers, schema_to_dot, to_dot
from .taskgraph import TaskGraph, TaskInvocation

__all__ = [
    "Activity",
    "BipartiteDiagram",
    "DynamicFlow",
    "FlowEdge",
    "FlowNode",
    "TaskGraph",
    "TaskInvocation",
    "ascii_graph",
    "data_based",
    "expand",
    "expand_fully",
    "expand_toward",
    "flow_equation",
    "forward_choices",
    "generalize",
    "goal_based",
    "layers",
    "plan_based",
    "schema_to_dot",
    "snake_case",
    "specialization_choices",
    "specialize",
    "to_bipartite",
    "to_call",
    "to_dot",
    "to_lisp",
    "tool_based",
    "unexpand",
]
