"""The task graph: representation of a dynamically defined flow.

Section 3.2: *"A task graph is a directed acyclic graph, with each node in
the graph corresponding to an entity in the task schema, and each edge
corresponding to a dependency.  A dynamically defined flow (represented by
a task graph) is a temporary structure that can be built up by the designer
as desired (subject to the rules in the task schema)."*

Beyond node/edge bookkeeping this module implements the **subtask
coalescing rule** (DESIGN.md decision 1): output nodes that share the same
tool node and exactly the same input nodes belong to one
:class:`TaskInvocation` and execute as a single tool run with multiple
outputs — the Fig. 5 structure ("multiple outputs from the same subtask").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..errors import ExpansionError, FlowError
from ..schema.dependency import DepKind
from ..schema.schema import TaskSchema
from .node import FlowEdge, FlowNode


@dataclass(frozen=True)
class TaskInvocation:
    """One coalesced primitive-task execution.

    ``tool_node`` is ``None`` for composed entities (the implicit
    composition function runs instead of a tool).  ``outputs`` lists every
    node this invocation produces; ``inputs`` maps each output node to its
    ``role -> supplier node`` mapping (identical across outputs by
    construction of the coalescing key, except for role names).
    """

    tool_node: str | None
    outputs: tuple[str, ...]
    inputs: tuple[tuple[str, str], ...]  # sorted (role, supplier-node) pairs

    @property
    def input_nodes(self) -> tuple[str, ...]:
        return tuple(supplier for _, supplier in self.inputs)

    def role_map(self) -> dict[str, str]:
        return dict(self.inputs)


class TaskGraph:
    """A mutable DAG of :class:`FlowNode` / :class:`FlowEdge`.

    All mutating operations validate against the task schema immediately,
    so a task graph can never leave the set of flows the methodology
    permits — this is how dynamically defined flows keep the advantages of
    flow-based methodology management without the "flow straight-jacket".
    """

    def __init__(self, schema: TaskSchema, name: str = "flow") -> None:
        self.schema = schema
        self.name = name
        self._nodes: dict[str, FlowNode] = {}
        self._edges: list[FlowEdge] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # node / edge management
    # ------------------------------------------------------------------
    def add_node(self, entity_type: str, *, explicit: bool = False,
                 label: str = "") -> FlowNode:
        """Place a node of the given entity type into the flow."""
        self.schema.entity(entity_type)  # raises for unknown types
        node_id = f"n{next(self._counter)}"
        node = FlowNode(node_id, entity_type, explicit=explicit, label=label)
        self._nodes[node_id] = node
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every edge touching it."""
        self.node(node_id)
        self._edges = [e for e in self._edges
                       if node_id not in (e.consumer, e.supplier)]
        del self._nodes[node_id]

    def node(self, node_id: str) -> FlowNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise FlowError(f"no node {node_id!r} in flow {self.name!r}"
                            ) from None

    def nodes(self) -> tuple[FlowNode, ...]:
        return tuple(self._nodes.values())

    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def edges(self) -> tuple[FlowEdge, ...]:
        return tuple(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[FlowNode]:
        return iter(self._nodes.values())

    def nodes_of_type(self, entity_type: str,
                      include_subtypes: bool = True) -> tuple[FlowNode, ...]:
        """All nodes whose type is (or specializes) ``entity_type``."""
        if include_subtypes:
            return tuple(
                n for n in self._nodes.values()
                if self.schema.is_subtype(n.entity_type, entity_type))
        return tuple(n for n in self._nodes.values()
                     if n.entity_type == entity_type)

    # ------------------------------------------------------------------
    # connecting nodes (schema-checked)
    # ------------------------------------------------------------------
    def connect(self, consumer_id: str, supplier_id: str, *,
                role: str | None = None) -> FlowEdge:
        """Add a dependency edge ``consumer --> supplier``.

        The edge must correspond to a dependency of the consumer's entity
        type in the schema: either its functional dependency (supplier is
        the tool) or one of its data dependencies (matched by ``role``, or
        inferred when exactly one unconnected role accepts the supplier's
        type).
        """
        consumer = self.node(consumer_id)
        supplier = self.node(supplier_id)
        dep = self._resolve_dependency(consumer, supplier, role)
        if dep.kind is DepKind.FUNCTIONAL:
            if self.functional_supplier(consumer_id) is not None:
                raise FlowError(
                    f"{consumer}: already has a tool connected")
        else:
            if dep.role in self._connected_roles(consumer_id):
                raise FlowError(
                    f"{consumer}: role {dep.role!r} already connected")
        edge = FlowEdge(consumer_id, supplier_id, dep.kind, dep.role,
                        dep.optional)
        self._edges.append(edge)
        if self._has_cycle():
            self._edges.pop()
            raise FlowError(
                f"edge {consumer} -> {supplier} would create a cycle; "
                "task graphs are acyclic")
        return edge

    def disconnect(self, consumer_id: str, supplier_id: str,
                   role: str | None = None) -> None:
        """Remove edges between the two nodes (optionally one role)."""
        before = len(self._edges)
        self._edges = [
            e for e in self._edges
            if not (e.consumer == consumer_id and e.supplier == supplier_id
                    and (role is None or e.role == role))
        ]
        if len(self._edges) == before:
            raise FlowError(
                f"no edge {consumer_id} -> {supplier_id} (role={role!r})")

    def _resolve_dependency(self, consumer: FlowNode, supplier: FlowNode,
                            role: str | None):
        deps = self.schema.effective_dependencies(consumer.entity_type)
        if not deps:
            raise ExpansionError(
                f"{consumer}: entity type {consumer.entity_type!r} has no "
                "dependencies (source or abstract type); specialize it "
                "before connecting inputs")
        candidates = []
        for dep in deps:
            if role is not None and (dep.role != role
                                     or dep.is_functional):
                continue
            if self.schema.is_subtype(supplier.entity_type, dep.target):
                candidates.append(dep)
        if role is None:
            # prefer exact matches and unconnected roles
            connected = self._connected_roles(consumer.node_id)
            has_tool = self.functional_supplier(consumer.node_id) is not None
            open_candidates = [
                d for d in candidates
                if (d.is_functional and not has_tool)
                or (d.is_data and d.role not in connected)
            ]
            if len(open_candidates) == 1:
                return open_candidates[0]
            if not open_candidates:
                raise FlowError(
                    f"{consumer}: no open dependency accepts a "
                    f"{supplier.entity_type!r}")
            raise FlowError(
                f"{consumer}: ambiguous connection for "
                f"{supplier.entity_type!r}; specify role= one of "
                f"{sorted(d.role for d in open_candidates)}")
        if not candidates:
            raise FlowError(
                f"{consumer}: no data dependency with role {role!r} "
                f"accepting a {supplier.entity_type!r}")
        return candidates[0]

    def _connected_roles(self, consumer_id: str) -> set[str]:
        return {e.role for e in self._edges
                if e.consumer == consumer_id and e.is_data}

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def suppliers(self, node_id: str) -> tuple[FlowEdge, ...]:
        """Outgoing dependency edges (things this node needs)."""
        return tuple(e for e in self._edges if e.consumer == node_id)

    def consumers(self, node_id: str) -> tuple[FlowEdge, ...]:
        """Incoming dependency edges (things needing this node)."""
        return tuple(e for e in self._edges if e.supplier == node_id)

    def functional_supplier(self, node_id: str) -> str | None:
        """The tool node connected to this node, if any."""
        for edge in self._edges:
            if edge.consumer == node_id and edge.is_functional:
                return edge.supplier
        return None

    def data_suppliers(self, node_id: str) -> dict[str, str]:
        """Mapping ``role -> supplier node id`` of connected data inputs."""
        return {e.role: e.supplier for e in self._edges
                if e.consumer == node_id and e.is_data}

    def is_expanded(self, node_id: str) -> bool:
        """True if the node's construction has been brought into the flow.

        A node counts as expanded when it has a tool edge, or (for
        composed entities) at least one data input edge.
        """
        return bool(self.suppliers(node_id))

    def leaves(self) -> tuple[FlowNode, ...]:
        """Nodes with no suppliers: the flow's external inputs.

        Section 4.1: once instances have been selected for the leaf
        nodes, the non-leaf nodes become executable.
        """
        return tuple(n for n in self._nodes.values()
                     if not self.suppliers(n.node_id))

    def goals(self) -> tuple[FlowNode, ...]:
        """Nodes no other node depends on: the flow's outputs."""
        return tuple(n for n in self._nodes.values()
                     if not self.consumers(n.node_id))

    def subtree(self, node_id: str) -> set[str]:
        """Node ids reachable from ``node_id`` through supplier edges."""
        seen: set[str] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(e.supplier for e in self.suppliers(current))
        return seen

    def dependents(self, node_id: str) -> set[str]:
        """Node ids reachable from ``node_id`` through consumer edges."""
        seen: set[str] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(e.consumer for e in self.consumers(current))
        return seen

    def topological_order(self) -> tuple[str, ...]:
        """Node ids ordered suppliers-first (execution order)."""
        order: list[str] = []
        state: dict[str, int] = {}

        def visit(node_id: str) -> None:
            state[node_id] = 1
            for edge in self.suppliers(node_id):
                succ = edge.supplier
                if state.get(succ, 0) == 1:
                    raise FlowError("task graph contains a cycle")
                if state.get(succ, 0) == 0:
                    visit(succ)
            state[node_id] = 2
            order.append(node_id)

        for node_id in self._nodes:
            if state.get(node_id, 0) == 0:
                visit(node_id)
        return tuple(order)

    def _has_cycle(self) -> bool:
        try:
            self.topological_order()
        except FlowError:
            return True
        return False

    def disjoint_branches(self) -> tuple[frozenset[str], ...]:
        """Weakly connected components of the graph.

        Disjoint branches can execute in parallel, possibly on different
        machines (Fig. 6).
        """
        parent: dict[str, str] = {n: n for n in self._nodes}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self._edges:
            ra, rb = find(edge.consumer), find(edge.supplier)
            if ra != rb:
                parent[ra] = rb
        groups: dict[str, set[str]] = {}
        for node_id in self._nodes:
            groups.setdefault(find(node_id), set()).add(node_id)
        return tuple(frozenset(g) for g in groups.values())

    # ------------------------------------------------------------------
    # subtask coalescing (Fig. 5)
    # ------------------------------------------------------------------
    def invocations(self) -> tuple[TaskInvocation, ...]:
        """Group expanded nodes into coalesced task invocations.

        Output nodes sharing the same tool node and exactly the same
        supplier nodes form a single invocation; the tool runs once and
        produces all of them.  Composed nodes (no tool edge but data
        edges) each form their own composition invocation.
        """
        by_key: dict[tuple, list[str]] = {}
        for node in self._nodes.values():
            if not self.is_expanded(node.node_id):
                continue
            tool = self.functional_supplier(node.node_id)
            suppliers = frozenset(self.data_suppliers(node.node_id).items())
            if tool is None:
                # composed entities never coalesce with each other
                key = ("composed", node.node_id)
            else:
                # outputs coalesce only when tool, suppliers AND role
                # names agree — the tool then runs once for all of them
                key = ("tool", tool, suppliers)
            by_key.setdefault(key, []).append(node.node_id)
        out: list[TaskInvocation] = []
        for key, outputs in by_key.items():
            primary = outputs[0]
            inputs = tuple(sorted(self.data_suppliers(primary).items()))
            tool = self.functional_supplier(primary)
            out.append(TaskInvocation(tool, tuple(sorted(outputs)), inputs))
        return tuple(out)

    def invocation_for(self, node_id: str) -> TaskInvocation:
        """The invocation that produces the given node."""
        for invocation in self.invocations():
            if node_id in invocation.outputs:
                return invocation
        raise FlowError(f"node {node_id!r} is not produced by any "
                        "invocation (unexpanded?)")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check every structural invariant of the flow."""
        self.topological_order()  # raises on cycles
        for edge in self._edges:
            consumer = self.node(edge.consumer)
            supplier = self.node(edge.supplier)
            deps = self.schema.effective_dependencies(consumer.entity_type)
            matching = [
                d for d in deps
                if d.kind is edge.kind and d.role == edge.role
                and self.schema.is_subtype(supplier.entity_type, d.target)
            ]
            if not matching:
                raise FlowError(
                    f"edge {edge} does not correspond to any schema "
                    f"dependency of {consumer.entity_type!r}")
        for node in self._nodes.values():
            functional_edges = [e for e in self.suppliers(node.node_id)
                                if e.is_functional]
            if len(functional_edges) > 1:
                raise FlowError(f"{node}: multiple tool edges")
            roles = [e.role for e in self.suppliers(node.node_id)
                     if e.is_data]
            if len(roles) != len(set(roles)):
                raise FlowError(f"{node}: duplicate input roles")

    def missing_inputs(self, node_id: str) -> tuple[str, ...]:
        """Mandatory roles of an expanded node not yet connected."""
        node = self.node(node_id)
        construction = self.schema.construction(node.entity_type)
        if construction is None:
            return ()
        connected = self._connected_roles(node_id)
        return tuple(d.role for d in construction.required_inputs
                     if d.role not in connected)

    # ------------------------------------------------------------------
    # copying / serialization
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "TaskGraph":
        """Deep-copy the flow (bindings and results are preserved)."""
        clone = TaskGraph(self.schema, name or self.name)
        for node in self._nodes.values():
            copied = FlowNode(node.node_id, node.entity_type,
                              original_type=node.original_type,
                              explicit=node.explicit,
                              bindings=node.bindings,
                              produced=node.produced,
                              label=node.label)
            clone._nodes[node.node_id] = copied
        clone._edges = list(self._edges)
        used = [int(n[1:]) for n in self._nodes if n[1:].isdigit()]
        clone._counter = itertools.count(max(used) + 1 if used else 0)
        return clone

    def to_dict(self) -> dict:
        """JSON-safe structural snapshot (used by the flow catalog)."""
        return {
            "name": self.name,
            "schema": self.schema.name,
            "nodes": [
                {
                    "id": n.node_id,
                    "type": n.entity_type,
                    "original_type": n.original_type,
                    "explicit": n.explicit,
                    "bindings": list(n.bindings),
                    "produced": list(n.produced),
                    "label": n.label,
                }
                for n in self._nodes.values()
            ],
            "edges": [
                {
                    "consumer": e.consumer,
                    "supplier": e.supplier,
                    "kind": e.kind.value,
                    "role": e.role,
                    "optional": e.optional,
                }
                for e in self._edges
            ],
        }

    @classmethod
    def from_dict(cls, schema: TaskSchema, payload: dict) -> "TaskGraph":
        """Rebuild a flow snapshot against the given schema."""
        graph = cls(schema, payload.get("name", "flow"))
        for spec in payload.get("nodes", ()):
            node = FlowNode(spec["id"], spec["type"],
                            original_type=spec.get("original_type",
                                                   spec["type"]),
                            explicit=bool(spec.get("explicit", False)),
                            bindings=tuple(spec.get("bindings", ())),
                            produced=tuple(spec.get("produced", ())),
                            label=spec.get("label", ""))
            graph._nodes[node.node_id] = node
        for spec in payload.get("edges", ()):
            graph._edges.append(FlowEdge(
                spec["consumer"], spec["supplier"],
                DepKind(spec["kind"]), spec["role"],
                bool(spec.get("optional", False))))
        used = [int(n[1:]) for n in graph._nodes if n[1:].isdigit()]
        graph._counter = itertools.count(max(used) + 1 if used else 0)
        graph.validate()
        return graph

    def __repr__(self) -> str:
        return (f"TaskGraph({self.name!r}, {len(self._nodes)} nodes, "
                f"{len(self._edges)} edges)")
