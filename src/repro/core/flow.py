"""The user-facing façade for building dynamically defined flows.

:class:`DynamicFlow` wraps a :class:`~repro.core.taskgraph.TaskGraph` with
the operation vocabulary of the Hercules pop-up menu (Fig. 9): *Expand*,
*Unexpand*, *Specialize*, *Bind* (select instances in the browser) plus the
renderings of Fig. 3.  It is what the four design approaches in
:mod:`repro.core.approaches` hand to the designer and what the executor in
:mod:`repro.execution` runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..schema.schema import TaskSchema
from . import expand as expand_ops
from .node import FlowNode
from .taskgraph import TaskGraph


class DynamicFlow:
    """A dynamically defined flow under construction.

    All graph state lives in :attr:`graph`; this class only adds ergonomic
    operations and keeps the *goal* emphasis of the paper (the node the
    designer started from, when started goal- or data-based).
    """

    def __init__(self, schema: TaskSchema, name: str = "flow",
                 graph: TaskGraph | None = None) -> None:
        self.graph = graph if graph is not None else TaskGraph(schema, name)

    @property
    def schema(self) -> TaskSchema:
        return self.graph.schema

    @property
    def name(self) -> str:
        return self.graph.name

    # ------------------------------------------------------------------
    # starting points
    # ------------------------------------------------------------------
    def place(self, entity_type: str, *, label: str = "") -> FlowNode:
        """Place an entity icon on the task window (explicit node)."""
        return self.graph.add_node(entity_type, explicit=True, label=label)

    # ------------------------------------------------------------------
    # pop-up menu operations
    # ------------------------------------------------------------------
    def specialize(self, node: FlowNode | str, subtype: str) -> FlowNode:
        """Select a subtype so the node can be expanded."""
        return expand_ops.specialize(self.graph, self._id(node), subtype)

    def generalize(self, node: FlowNode | str) -> FlowNode:
        """Undo a specialization."""
        return expand_ops.generalize(self.graph, self._id(node))

    def specialization_choices(self, node: FlowNode | str) -> tuple[str, ...]:
        return expand_ops.specialization_choices(self.graph, self._id(node))

    def expand(self, node: FlowNode | str, *,
               include_optional: Sequence[str] | bool = (),
               reuse: Mapping[str, str] | None = None
               ) -> tuple[FlowNode, ...]:
        """Bring the node's construction (tool + inputs) into the flow."""
        return expand_ops.expand(self.graph, self._id(node),
                                 include_optional=include_optional,
                                 reuse=reuse)

    def expand_fully(self, node: FlowNode | str, *,
                     max_depth: int = 32) -> tuple[FlowNode, ...]:
        """Expand recursively down to source/abstract leaves."""
        return expand_ops.expand_fully(self.graph, self._id(node),
                                       max_depth=max_depth)

    def expand_toward(self, node: FlowNode | str, consumer_type: str, *,
                      role: str | None = None) -> FlowNode:
        """Forward expansion: create a consumer using this node."""
        return expand_ops.expand_toward(self.graph, self._id(node),
                                        consumer_type, role=role)

    def forward_choices(self, node: FlowNode | str) -> tuple[str, ...]:
        return expand_ops.forward_choices(self.graph, self._id(node))

    def unexpand(self, node: FlowNode | str) -> tuple[str, ...]:
        """Remove the node's construction subgraph."""
        return expand_ops.unexpand(self.graph, self._id(node))

    def connect(self, consumer: FlowNode | str, supplier: FlowNode | str, *,
                role: str | None = None) -> None:
        """Manually wire two placed nodes (schema-checked)."""
        self.graph.connect(self._id(consumer), self._id(supplier), role=role)

    def bind(self, node: FlowNode | str, *instance_ids: str) -> FlowNode:
        """Select instances for a node (several ids fan the task out)."""
        target = self.graph.node(self._id(node))
        target.bind(*instance_ids)
        return target

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> FlowNode:
        return self.graph.node(node_id)

    def nodes(self) -> tuple[FlowNode, ...]:
        return self.graph.nodes()

    def nodes_of_type(self, entity_type: str) -> tuple[FlowNode, ...]:
        return self.graph.nodes_of_type(entity_type)

    def sole_node_of_type(self, entity_type: str) -> FlowNode:
        """The unique node of a type (convenience for tests/examples)."""
        nodes = self.graph.nodes_of_type(entity_type)
        if len(nodes) != 1:
            raise LookupError(
                f"expected exactly one {entity_type!r} node, found "
                f"{len(nodes)}")
        return nodes[0]

    def leaves(self) -> tuple[FlowNode, ...]:
        return self.graph.leaves()

    def goals(self) -> tuple[FlowNode, ...]:
        return self.graph.goals()

    def unbound_leaves(self) -> tuple[FlowNode, ...]:
        """Leaf nodes still needing an instance selection."""
        return tuple(n for n in self.graph.leaves() if not n.results())

    def is_ready(self) -> bool:
        """True when every leaf has an instance: non-leaves are executable."""
        return not self.unbound_leaves()

    def validate(self) -> None:
        self.graph.validate()

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "DynamicFlow":
        return DynamicFlow(self.schema, graph=self.graph.copy(name))

    def to_dict(self) -> dict:
        return self.graph.to_dict()

    @classmethod
    def from_dict(cls, schema: TaskSchema, payload: dict) -> "DynamicFlow":
        return cls(schema, graph=TaskGraph.from_dict(schema, payload))

    @staticmethod
    def _id(node: FlowNode | str) -> str:
        return node.node_id if isinstance(node, FlowNode) else node

    def __repr__(self) -> str:
        return f"DynamicFlow({self.graph!r})"
