"""Nodes and edges of a task graph.

A task graph (paper section 3.2) is a DAG in which *"each node ...
corresponds to an entity in the task schema, and each edge ... to a
dependency"*.  A node may be *specialized* (retyped to a subtype so it can
be expanded), *bound* to one or more instances from the history database
(binding several instances causes the task to run once per instance —
section 4.1), and, after execution, carries the ids of the instances it
produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BindingError
from ..schema.dependency import DepKind


@dataclass
class FlowNode:
    """One entity occurrence in a dynamically defined flow.

    Attributes
    ----------
    node_id:
        Graph-unique identifier (``"n0"``, ``"n1"``, ...).
    entity_type:
        Current entity type name; changes when the node is specialized.
    original_type:
        Type the node was created with (before any specialization), kept
        so specialization can be undone and rendered.
    explicit:
        True when the designer placed the node directly (by picking it
        from a catalog); False when an expand operation created it.
        Unexpansion only garbage-collects non-explicit orphans.
    bindings:
        Instance ids selected in the browser for this node.  More than
        one id fans the task out over each instance.
    produced:
        Instance ids created at this node by execution (one per fan-out
        combination).
    label:
        Optional display label (shown inside the icon, Fig. 10).
    """

    node_id: str
    entity_type: str
    original_type: str = ""
    explicit: bool = False
    bindings: tuple[str, ...] = ()
    produced: tuple[str, ...] = field(default_factory=tuple)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.original_type:
            self.original_type = self.entity_type

    # -- binding ---------------------------------------------------------
    def bind(self, *instance_ids: str) -> None:
        """Select instances for this node (replaces previous selection)."""
        if not instance_ids:
            raise BindingError(f"{self}: bind() needs at least one instance")
        self.bindings = tuple(instance_ids)

    def unbind(self) -> None:
        self.bindings = ()

    @property
    def is_bound(self) -> bool:
        return bool(self.bindings)

    @property
    def is_executed(self) -> bool:
        return bool(self.produced)

    def results(self) -> tuple[str, ...]:
        """Instance ids available at this node (bound or produced)."""
        if self.produced:
            return self.produced
        return self.bindings

    @property
    def is_specialized(self) -> bool:
        return self.entity_type != self.original_type

    def __str__(self) -> str:
        suffix = f"={self.label}" if self.label else ""
        return f"{self.entity_type}[{self.node_id}]{suffix}"


@dataclass(frozen=True)
class FlowEdge:
    """A dependency arc: ``consumer`` depends on ``supplier``.

    The direction matches the schema: the produced entity points at its
    tool (functional) and at its data inputs (data).
    """

    consumer: str
    supplier: str
    kind: DepKind
    role: str
    optional: bool = False

    @property
    def is_functional(self) -> bool:
        return self.kind is DepKind.FUNCTIONAL

    @property
    def is_data(self) -> bool:
        return self.kind is DepKind.DATA

    def __str__(self) -> str:
        label = "f" if self.is_functional else ("d?" if self.optional else "d")
        return f"{self.consumer} --{label}:{self.role}--> {self.supplier}"
