"""Functional (Lisp-style) rendering of a flow — paper footnote 2.

*"Our representation of a flow is analogous to the Lisp representation of
a function, whereas a traditional flowmap is analogous to the C or Pascal
representation.  For example, we may write Fig. 3(a) as::

    placement <- placer(circuit_editor(circuit), placement_spec)

whereas Fig. 3(b) may be written as::

    placement <- (placer, (circuit_editor, circuit), placement_spec)

We are treating the tool as just another parameter."*

:func:`to_lisp` produces the second form, :func:`to_call` the first.
Names are the snake_cased entity types, or the node label when one is
set (as instance names appear inside icons in Fig. 10).
"""

from __future__ import annotations

import re

from .taskgraph import TaskGraph


def snake_case(name: str) -> str:
    """``ExtractedNetlist`` -> ``extracted_netlist``."""
    step = re.sub(r"(.)([A-Z][a-z]+)", r"\1_\2", name)
    return re.sub(r"([a-z0-9])([A-Z])", r"\1_\2", step).lower()


def _atom(flow: TaskGraph, node_id: str) -> str:
    node = flow.node(node_id)
    if node.label:
        raw = snake_case(re.sub(r"\s+", "_", node.label.strip()))
        return re.sub(r"__+", "_", raw)
    return snake_case(node.entity_type)


def _ordered_inputs(flow: TaskGraph, node_id: str) -> list[str]:
    """Suppliers of a node in schema role order (stable rendering)."""
    by_role = flow.data_suppliers(node_id)
    construction = flow.schema.construction(flow.node(node_id).entity_type)
    ordered: list[str] = []
    if construction is not None:
        for dep in construction.inputs:
            if dep.role in by_role:
                ordered.append(by_role[dep.role])
    for role in sorted(by_role):
        if by_role[role] not in ordered:
            ordered.append(by_role[role])
    return ordered


def to_lisp(flow: TaskGraph, node_id: str) -> str:
    """Lisp form: the tool is just another parameter."""
    if not flow.is_expanded(node_id):
        return _atom(flow, node_id)
    parts: list[str] = []
    tool = flow.functional_supplier(node_id)
    if tool is not None:
        parts.append(to_lisp(flow, tool))
    parts.extend(to_lisp(flow, supplier)
                 for supplier in _ordered_inputs(flow, node_id))
    return "(" + ", ".join(parts) + ")"


def to_call(flow: TaskGraph, node_id: str) -> str:
    """C/Pascal-style call form: ``tool(arg, ...)``."""
    if not flow.is_expanded(node_id):
        return _atom(flow, node_id)
    tool = flow.functional_supplier(node_id)
    args = ", ".join(to_call(flow, supplier)
                     for supplier in _ordered_inputs(flow, node_id))
    if tool is None:
        return f"compose_{_atom(flow, node_id)}({args})"
    return f"{to_call(flow, tool)}({args})" if flow.is_expanded(tool) \
        else f"{_atom(flow, tool)}({args})"


def flow_equation(flow: TaskGraph, node_id: str,
                  style: str = "lisp") -> str:
    """Full equation ``goal <- body`` in the requested style."""
    body = to_lisp(flow, node_id) if style == "lisp" \
        else to_call(flow, node_id)
    return f"{_atom(flow, node_id)} <- {body}"
