"""The four design approaches of section 3.4.

*"In the goal-based approach, designers identify a task by first selecting
the goal entity of the task from the task schema.  The tool-based approach
allows users to initially select either the tool-entity or the
tool-instance that they wish to work with.  In the data-based approach
users initially select an existing piece of data ...  The plan- or
flow-based approach allows designers to choose from a set or library of
flows that they (or another user) have built up previously."*

Each function returns a :class:`~repro.core.flow.DynamicFlow` with the
chosen starting node placed (and bound, where an instance was selected);
from there the designer expands in either direction.  All four approaches
share one representation and one operation vocabulary — the paper's point
that Hercules needs no per-approach user interface.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import FlowError
from ..schema.catalog import FlowCatalog
from ..schema.schema import TaskSchema
from .flow import DynamicFlow
from .node import FlowNode


class InstanceLike(Protocol):
    """Anything carrying an instance id and its entity type.

    :class:`repro.history.instance.EntityInstance` satisfies this; the
    core layer deliberately does not import the history package.
    """

    instance_id: str
    entity_type: str


def goal_based(schema: TaskSchema, goal_type: str,
               name: str = "goal-flow") -> tuple[DynamicFlow, FlowNode]:
    """Start from the goal entity type the designer wants produced."""
    flow = DynamicFlow(schema, name)
    node = flow.place(goal_type)
    return flow, node


def tool_based(schema: TaskSchema, tool_type: str,
               name: str = "tool-flow",
               tool_instance: InstanceLike | str | None = None
               ) -> tuple[DynamicFlow, FlowNode]:
    """Start from a tool entity type (or a concrete tool instance)."""
    entity = schema.entity(tool_type)
    if not entity.is_tool:
        raise FlowError(f"{tool_type!r} is not a tool entity type")
    flow = DynamicFlow(schema, name)
    node = flow.place(tool_type)
    if tool_instance is not None:
        node.bind(_instance_id(tool_instance))
    return flow, node


def data_based(schema: TaskSchema, instance: InstanceLike,
               name: str = "data-flow") -> tuple[DynamicFlow, FlowNode]:
    """Start from an existing piece of design data."""
    flow = DynamicFlow(schema, name)
    node = flow.place(instance.entity_type)
    node.bind(instance.instance_id)
    return flow, node


def plan_based(catalog: FlowCatalog[DynamicFlow],
               flow_name: str) -> DynamicFlow:
    """Start from a predefined flow in the flow catalog.

    The returned flow is a fresh copy; the designer may keep expanding it
    (it is still a dynamically defined flow, merely pre-built).
    """
    return catalog.select(flow_name)


def _instance_id(instance: InstanceLike | str) -> str:
    if isinstance(instance, str):
        return instance
    return instance.instance_id
