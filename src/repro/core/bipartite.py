"""Traditional bipartite flow-diagram view of a task graph (Fig. 3a).

Most 1990s flow managers (JESSI [3], NELSIS [5], Philips flowmaps [4])
drew flows as bipartite graphs alternating *activities* (tool runs) and
*data*.  The paper contrasts this with the task graph, where tools are
ordinary entities.  :func:`to_bipartite` converts a task graph into that
classical view — one :class:`Activity` per coalesced task invocation —
so the two representations of Fig. 3 can be generated from one flow and
compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .taskgraph import TaskGraph


@dataclass(frozen=True)
class Activity:
    """One activity box of a bipartite flow diagram.

    ``tool_type`` is the tool entity executing the activity (``None`` for
    an implicit composition), ``inputs`` / ``outputs`` are data node ids
    of the originating task graph, and ``input_roles`` preserves role
    labels for rendering.
    """

    activity_id: str
    tool_type: str | None
    tool_node: str | None
    inputs: tuple[str, ...]
    input_roles: tuple[tuple[str, str], ...]
    outputs: tuple[str, ...]


@dataclass(frozen=True)
class BipartiteDiagram:
    """A bipartite flow diagram: data places and activity boxes."""

    data_nodes: tuple[str, ...]
    activities: tuple[Activity, ...]

    def activity_count(self) -> int:
        return len(self.activities)

    def data_count(self) -> int:
        return len(self.data_nodes)

    def render(self, flow: TaskGraph) -> str:
        """Multi-line textual rendering of the diagram."""
        lines = ["bipartite flow diagram:"]
        for activity in self.activities:
            inputs = ", ".join(
                f"{role}={flow.node(node).entity_type}[{node}]"
                for role, node in activity.input_roles)
            outputs = ", ".join(
                f"{flow.node(node).entity_type}[{node}]"
                for node in activity.outputs)
            tool = activity.tool_type or "<compose>"
            lines.append(f"  ({inputs}) ==[{tool}]==> ({outputs})")
        return "\n".join(lines)


def to_bipartite(flow: TaskGraph) -> BipartiteDiagram:
    """Convert a task graph into the classical bipartite representation.

    Tool nodes disappear into activity boxes; every remaining node becomes
    a data place.  Tool nodes that are themselves produced inside the flow
    (a compiled simulator) stay visible as data places *feeding* the
    activity that uses them — the conversion is lossy exactly where the
    paper says the traditional view is weaker.
    """
    invocations = flow.invocations()
    consumed_tools = {inv.tool_node for inv in invocations
                      if inv.tool_node is not None}
    data_nodes = []
    for node in flow.nodes():
        produced_here = any(node.node_id in inv.outputs
                            for inv in invocations)
        if node.node_id in consumed_tools and not produced_here:
            continue  # plain tool: absorbed into the activity box
        data_nodes.append(node.node_id)
    activities = []
    for index, invocation in enumerate(sorted(
            invocations, key=lambda inv: inv.outputs)):
        tool_type = None
        if invocation.tool_node is not None:
            tool_type = flow.node(invocation.tool_node).entity_type
        activities.append(Activity(
            activity_id=f"a{index}",
            tool_type=tool_type,
            tool_node=invocation.tool_node,
            inputs=invocation.input_nodes,
            input_roles=invocation.inputs,
            outputs=invocation.outputs,
        ))
    return BipartiteDiagram(tuple(sorted(data_nodes)), tuple(activities))
