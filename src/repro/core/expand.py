"""Expand, unexpand and specialize operations on task graphs.

Section 3.2: *"Expand operations can be used to incorporate further
primitive tasks into a flow ... the circuit in Fig. 4(b) was specialized
to an Extracted Netlist before expansion.  (Specialization is the
selection of an entity subtype so that an expand operation can be
performed.)"* and section 4.1: *"Flows can be expanded in either direction
and can be of any depth."*

Three directions are provided:

* :func:`expand` — *backward*: bring a node's construction method (tool +
  inputs) into the flow;
* :func:`expand_toward` — *forward*: create a consumer that uses the node
  as one of its inputs (or, for a tool node, as its tool);
* :func:`unexpand` — remove a node's construction subgraph again,
  garbage-collecting implicit nodes that become orphans.

Entity reuse (Fig. 5) is supported by the ``reuse`` argument of
:func:`expand`, mapping input roles to existing nodes instead of creating
fresh ones.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ExpansionError, FlowError, SpecializationError
from .node import FlowNode
from .taskgraph import TaskGraph


def specialize(flow: TaskGraph, node_id: str, subtype: str) -> FlowNode:
    """Retype a node to one of its entity type's subtypes.

    Only permitted while the node is unexpanded (its construction method
    would change) and when every edge already touching it stays valid.
    """
    node = flow.node(node_id)
    if flow.is_expanded(node_id):
        raise SpecializationError(
            f"{node}: cannot specialize an expanded node; unexpand first")
    if not flow.schema.is_subtype(subtype, node.entity_type):
        raise SpecializationError(
            f"{node}: {subtype!r} is not a subtype of "
            f"{node.entity_type!r}")
    previous = node.entity_type
    node.entity_type = subtype
    try:
        flow.validate()
    except FlowError:
        node.entity_type = previous
        raise
    return node


def generalize(flow: TaskGraph, node_id: str) -> FlowNode:
    """Undo specialization, returning the node to its original type."""
    node = flow.node(node_id)
    if flow.is_expanded(node_id):
        raise SpecializationError(
            f"{node}: cannot generalize an expanded node; unexpand first")
    previous = node.entity_type
    node.entity_type = node.original_type
    try:
        flow.validate()
    except FlowError:
        node.entity_type = previous
        raise
    return node


def specialization_choices(flow: TaskGraph, node_id: str) -> tuple[str, ...]:
    """Subtypes the designer may specialize this node to."""
    node = flow.node(node_id)
    return flow.schema.descendants_of(node.entity_type)


def expand(flow: TaskGraph, node_id: str, *,
           include_optional: Sequence[str] | bool = (),
           reuse: Mapping[str, str] | None = None) -> tuple[FlowNode, ...]:
    """Backward-expand a node: add its tool and input nodes to the flow.

    Parameters
    ----------
    include_optional:
        Roles of optional dependencies to include, or ``True`` for all.
        Optional arcs (the dashed, cycle-breaking ones) are omitted by
        default, exactly as a designer would start an editor from scratch
        rather than from a previous version.
    reuse:
        ``role -> existing node id``: connect the role to a node already
        in the flow (entity reuse, Fig. 5) instead of creating a new one.
        A role may also reuse a node for the functional dependency by
        passing the pseudo-role ``"@tool"``.

    Returns the newly created nodes (suppliers), in creation order.
    """
    node = flow.node(node_id)
    reuse = dict(reuse or {})
    if flow.is_expanded(node_id):
        raise ExpansionError(f"{node}: already expanded")
    construction = flow.schema.construction(node.entity_type)
    if construction is None:
        if flow.schema.is_abstract(node.entity_type):
            choices = flow.schema.constructible_specializations(
                node.entity_type)
            raise SpecializationError(
                f"{node}: type {node.entity_type!r} is abstract; "
                f"specialize to one of {list(choices)} before expanding")
        raise ExpansionError(
            f"{node}: type {node.entity_type!r} is a source entity "
            "(no construction method); bind an instance instead")

    created: list[FlowNode] = []
    # tool (functional dependency)
    if construction.tool is not None:
        if "@tool" in reuse:
            flow.connect(node_id, reuse.pop("@tool"))
        else:
            tool_node = flow.add_node(construction.tool)
            created.append(tool_node)
            flow.connect(node_id, tool_node.node_id)
    # data inputs
    wanted_roles = {d.role for d in construction.required_inputs}
    if include_optional is True:
        wanted_roles.update(d.role for d in construction.optional_inputs)
    else:
        optional_roles = {d.role for d in construction.optional_inputs}
        for role in include_optional:
            if role not in optional_roles:
                raise ExpansionError(
                    f"{node}: {role!r} is not an optional input role "
                    f"(has {sorted(optional_roles)})")
            wanted_roles.add(role)
    unknown_reuse = set(reuse) - wanted_roles
    if unknown_reuse:
        raise ExpansionError(
            f"{node}: reuse names unknown/unwanted roles "
            f"{sorted(unknown_reuse)}")
    for dep in construction.inputs:
        if dep.role not in wanted_roles:
            continue
        if dep.role in reuse:
            flow.connect(node_id, reuse[dep.role], role=dep.role)
        else:
            supplier = flow.add_node(dep.target)
            created.append(supplier)
            flow.connect(node_id, supplier.node_id, role=dep.role)
    return tuple(created)


def expand_fully(flow: TaskGraph, node_id: str, *,
                 max_depth: int = 32) -> tuple[FlowNode, ...]:
    """Backward-expand recursively until only sources/abstract leaves remain.

    Abstract leaves are left unexpanded (they need specialization, a
    designer decision); source entities are natural leaves.  ``max_depth``
    guards against schemas whose subtype substitutions could recurse.
    """
    created: list[FlowNode] = []
    frontier = [(node_id, 0)]
    while frontier:
        current, depth = frontier.pop(0)
        if depth >= max_depth:
            raise ExpansionError(
                f"expansion exceeded max depth {max_depth}")
        node = flow.node(current)
        if flow.is_expanded(current):
            continue
        construction = flow.schema.construction(node.entity_type)
        if construction is None:
            continue  # source or abstract: stop here
        new_nodes = expand(flow, current)
        created.extend(new_nodes)
        frontier.extend((n.node_id, depth + 1) for n in new_nodes)
    return tuple(created)


def expand_toward(flow: TaskGraph, node_id: str, consumer_type: str, *,
                  role: str | None = None) -> FlowNode:
    """Forward-expand: create a consumer node fed by this node.

    If the node is a data entity, it is connected under the matching data
    dependency of ``consumer_type`` (by ``role`` or inferred when
    unambiguous).  If the node is a tool entity and ``consumer_type``
    functionally depends on it, it becomes the consumer's tool.
    """
    node = flow.node(node_id)
    producible = flow.schema.producible_from(node.entity_type)
    if consumer_type not in producible:
        raise ExpansionError(
            f"{node}: schema does not allow a {consumer_type!r} to be "
            f"produced from a {node.entity_type!r}; choices: "
            f"{sorted(producible)}")
    consumer = flow.add_node(consumer_type)
    try:
        flow.connect(consumer.node_id, node_id, role=role)
    except FlowError:
        # role=None may be ambiguous or the only match may be functional
        deps = flow.schema.effective_dependencies(consumer_type)
        functional = [d for d in deps if d.is_functional
                      and flow.schema.is_subtype(node.entity_type, d.target)]
        if role is None and functional:
            flow.connect(consumer.node_id, node_id)
            return consumer
        flow.remove_node(consumer.node_id)
        raise
    return consumer


def forward_choices(flow: TaskGraph, node_id: str) -> tuple[str, ...]:
    """Entity types a forward expansion of this node could produce."""
    node = flow.node(node_id)
    return flow.schema.producible_from(node.entity_type)


def unexpand(flow: TaskGraph, node_id: str) -> tuple[str, ...]:
    """Remove a node's construction subgraph from the flow.

    Edges from the node to its suppliers are removed; supplier nodes
    created implicitly by expansion that thereby become orphans (no other
    consumers, not explicit) are deleted recursively.  Returns the ids of
    deleted nodes.
    """
    node = flow.node(node_id)
    suppliers = flow.suppliers(node_id)
    if not suppliers:
        raise ExpansionError(f"{node}: not expanded")
    candidates = [e.supplier for e in suppliers]
    for edge in suppliers:
        flow.disconnect(edge.consumer, edge.supplier, edge.role
                        if edge.is_data else None)
    deleted: list[str] = []
    frontier = list(candidates)
    while frontier:
        current = frontier.pop()
        if current not in flow:
            continue
        supplier_node = flow.node(current)
        if supplier_node.explicit or flow.consumers(current):
            continue
        next_candidates = [e.supplier for e in flow.suppliers(current)]
        flow.remove_node(current)
        deleted.append(current)
        frontier.extend(next_candidates)
    return tuple(deleted)
