"""Textual and DOT renderings of task graphs.

The Hercules task window (Fig. 9) visualizes a flow as a graph of entity
icons.  :func:`ascii_graph` is the scriptable equivalent: a layered,
deterministic, line-oriented rendering used by the UI, the examples and
the figure benchmarks.  :func:`to_dot` emits Graphviz for anyone who wants
the pictures.
"""

from __future__ import annotations

from .taskgraph import TaskGraph


def _node_caption(flow: TaskGraph, node_id: str) -> str:
    node = flow.node(node_id)
    caption = f"{node.entity_type}[{node.node_id}]"
    if node.label:
        caption += f" '{node.label}'"
    if node.is_specialized:
        caption += f" (was {node.original_type})"
    if node.bindings:
        caption += " <= {" + ", ".join(node.bindings) + "}"
    if node.produced:
        caption += " => {" + ", ".join(node.produced) + "}"
    return caption


def layers(flow: TaskGraph) -> tuple[tuple[str, ...], ...]:
    """Nodes grouped by longest-path depth from the leaves.

    Layer 0 holds the leaves (external inputs); the goal entities land in
    the deepest layers.  Within a layer, node ids are sorted for
    deterministic output.
    """
    depth: dict[str, int] = {}
    for node_id in flow.topological_order():
        supplier_edges = flow.suppliers(node_id)
        if not supplier_edges:
            depth[node_id] = 0
        else:
            depth[node_id] = 1 + max(depth[e.supplier]
                                     for e in supplier_edges)
    if not depth:
        return ()
    grouped: dict[int, list[str]] = {}
    for node_id, level in depth.items():
        grouped.setdefault(level, []).append(node_id)
    return tuple(tuple(sorted(grouped[level]))
                 for level in sorted(grouped))


def ascii_graph(flow: TaskGraph, title: str | None = None) -> str:
    """Deterministic multi-line rendering of a task graph."""
    lines = [f"task graph: {title or flow.name}"]
    for level, node_ids in enumerate(layers(flow)):
        lines.append(f"  layer {level}:")
        for node_id in node_ids:
            lines.append(f"    {_node_caption(flow, node_id)}")
            for edge in sorted(flow.suppliers(node_id),
                               key=lambda e: (e.kind.value, e.role)):
                label = "f" if edge.is_functional else (
                    "d?" if edge.optional else "d")
                lines.append(
                    f"      --{label}:{edge.role}--> "
                    f"{_node_caption(flow, edge.supplier)}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def to_dot(flow: TaskGraph, title: str | None = None) -> str:
    """Graphviz DOT rendering (tools as ellipses, data as boxes)."""
    out = [f'digraph "{title or flow.name}" {{', "  rankdir=BT;"]
    for node in sorted(flow.nodes(), key=lambda n: n.node_id):
        entity = flow.schema.entity(node.entity_type)
        shape = "ellipse" if entity.is_tool else "box"
        label = node.entity_type
        if node.label:
            label += f"\\n{node.label}"
        out.append(f'  {node.node_id} [shape={shape}, label="{label}"];')
    for edge in sorted(flow.edges(),
                       key=lambda e: (e.consumer, e.supplier, e.role)):
        style = "dashed" if edge.optional else "solid"
        tag = "f" if edge.is_functional else "d"
        out.append(
            f'  {edge.consumer} -> {edge.supplier} '
            f'[label="{tag}:{edge.role}", style={style}];')
    out.append("}")
    return "\n".join(out)


def schema_to_dot(schema, title: str | None = None) -> str:
    """DOT rendering of a task schema itself (as in Fig. 1)."""
    out = [f'digraph "{title or schema.name}" {{', "  rankdir=BT;"]
    for entity in sorted(schema.entities(), key=lambda e: e.name):
        shape = "ellipse" if entity.is_tool else "box"
        style = ', style="rounded,dashed"' if entity.composed else ""
        out.append(f'  "{entity.name}" [shape={shape}{style}];')
        if entity.parent is not None:
            out.append(f'  "{entity.name}" -> "{entity.parent}" '
                       f'[label="isa", style=dotted, arrowhead=empty];')
    for dep in schema.dependencies():
        style = "dashed" if dep.optional else "solid"
        tag = "f" if dep.is_functional else "d"
        out.append(f'  "{dep.source}" -> "{dep.target}" '
                   f'[label="{tag}", style={style}];')
    out.append("}")
    return "\n".join(out)
