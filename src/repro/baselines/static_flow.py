"""JESSI-style static flow manager (baseline, paper section 2).

*"JESSI uses the term flow to mean a predefined sequence of activities,
where an activity represents a particular feature of a tool (taking
specific input data and producing specific output data) ... Flows are
also usually hardwired to specific tools, and hence require modification
whenever tool changes are made or new tools are added to the system."*

:class:`StaticFlowManager` reproduces exactly that model so the paper's
maintenance claim (CLAIM-C) can be measured: each :class:`StaticFlow` is
a fixed sequence of :class:`Activity` steps, each hardwired to one tool
*instance*; designers may only execute a flow start-to-finish (the "flow
straight-jacket"); and swapping a tool requires editing every flow that
references it, which :meth:`StaticFlowManager.replace_tool` counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..core.taskgraph import TaskGraph
from ..errors import BaselineError
from ..execution.executor import ExecutionReport, FlowExecutor
from ..history.database import HistoryDatabase


@dataclass(frozen=True)
class Activity:
    """One hardwired step of a static flow.

    ``inputs`` maps the produced entity's role names either to the label
    of an earlier step's output (``"@<step-label>"``) or to the name of
    an external input slot supplied at execution time.
    """

    label: str
    output_type: str
    tool_instance: str
    inputs: tuple[tuple[str, str], ...] = ()

    def input_map(self) -> dict[str, str]:
        return dict(self.inputs)


@dataclass(frozen=True)
class StaticFlow:
    """A fixed, linear-or-branched sequence of activities."""

    name: str
    activities: tuple[Activity, ...]
    description: str = ""

    def __post_init__(self) -> None:
        labels = [a.label for a in self.activities]
        if len(labels) != len(set(labels)):
            raise BaselineError(f"flow {self.name!r}: duplicate step "
                                "labels")
        seen: set[str] = set()
        for activity in self.activities:
            for _, source in activity.inputs:
                if source.startswith("@") and source[1:] not in seen:
                    raise BaselineError(
                        f"flow {self.name!r}: step {activity.label!r} "
                        f"references later/unknown step {source!r}")
            seen.add(activity.label)

    def tools(self) -> tuple[str, ...]:
        return tuple(a.tool_instance for a in self.activities)

    def external_slots(self) -> tuple[str, ...]:
        slots = []
        for activity in self.activities:
            for _, source in activity.inputs:
                if not source.startswith("@") and source not in slots:
                    slots.append(source)
        return tuple(slots)


@dataclass
class MaintenanceLog:
    """Counts the methodology-maintenance work (CLAIM-C observable)."""

    flows_edited: int = 0
    steps_edited: int = 0
    flows_added: int = 0
    events: list[str] = field(default_factory=list)


class StaticFlowManager:
    """Predefined flows only; execution follows the fixed sequence."""

    def __init__(self, db: HistoryDatabase, registry) -> None:
        self.db = db
        self.registry = registry
        self._flows: dict[str, StaticFlow] = {}
        self.maintenance = MaintenanceLog()

    # -- flow library -----------------------------------------------------
    def define_flow(self, flow: StaticFlow) -> None:
        if flow.name in self._flows:
            raise BaselineError(f"flow {flow.name!r} already defined")
        for activity in flow.activities:
            if activity.tool_instance:  # "" marks a composed step
                self.db.get(activity.tool_instance)
        self._flows[flow.name] = flow
        self.maintenance.flows_added += 1
        self.maintenance.events.append(f"define {flow.name}")

    def flow(self, name: str) -> StaticFlow:
        if name not in self._flows:
            raise BaselineError(f"no static flow {name!r}")
        return self._flows[name]

    def flows(self) -> tuple[str, ...]:
        return tuple(sorted(self._flows))

    def flows_referencing(self, tool_instance: str) -> tuple[str, ...]:
        return tuple(sorted(
            name for name, flow in self._flows.items()
            if tool_instance in flow.tools()))

    def replace_tool(self, old_instance: str,
                     new_instance: str) -> int:
        """Swap a hardwired tool everywhere; returns flows edited.

        This is the maintenance burden the paper criticizes: the dynamic
        approach would touch only the schema (usually zero edits, since
        tools are bound per run).
        """
        self.db.get(new_instance)
        edited = 0
        for name in self.flows_referencing(old_instance):
            flow = self._flows[name]
            new_activities = []
            steps = 0
            for activity in flow.activities:
                if activity.tool_instance == old_instance:
                    new_activities.append(
                        replace(activity, tool_instance=new_instance))
                    steps += 1
                else:
                    new_activities.append(activity)
            self._flows[name] = replace(flow,
                                        activities=tuple(new_activities))
            edited += 1
            self.maintenance.flows_edited += 1
            self.maintenance.steps_edited += steps
            self.maintenance.events.append(
                f"edit {name}: {old_instance} -> {new_instance}")
        return edited

    # -- execution (the straight-jacket) ----------------------------------
    def execute(self, name: str, external: Mapping[str, str], *,
                user: str = "", skip_steps: Sequence[str] = ()
                ) -> ExecutionReport:
        """Run a flow start to finish.

        ``external`` maps external slot names to instance ids.  Any
        attempt to skip a step is refused — designers cannot reorder or
        partially execute a static flow, unlike a dynamically defined
        one.
        """
        if skip_steps:
            raise BaselineError(
                "static flows must be followed step by step (the 'flow "
                f"straight-jacket'); cannot skip {list(skip_steps)}")
        flow = self.flow(name)
        missing = [s for s in flow.external_slots() if s not in external]
        if missing:
            raise BaselineError(
                f"flow {name!r}: missing external inputs {missing}")
        graph = self._to_task_graph(flow, external)
        executor = FlowExecutor(self.db, self.registry, user=user)
        return executor.execute(graph)

    def _to_task_graph(self, flow: StaticFlow,
                       external: Mapping[str, str]) -> TaskGraph:
        """Lower the static flow onto the shared execution machinery."""
        graph = TaskGraph(self.db.schema, flow.name)
        step_nodes: dict[str, str] = {}
        external_nodes: dict[str, str] = {}
        for activity in flow.activities:
            output = graph.add_node(activity.output_type,
                                    label=activity.label)
            construction = self.db.schema.construction(
                activity.output_type)
            if construction is None:
                raise BaselineError(
                    f"step {activity.label!r}: {activity.output_type!r} "
                    "has no construction method")
            if construction.tool is not None:
                tool_instance = self.db.get(activity.tool_instance)
                tool_node = graph.add_node(tool_instance.entity_type)
                tool_node.bind(activity.tool_instance)
                graph.connect(output.node_id, tool_node.node_id)
            for role, source in activity.inputs:
                if source.startswith("@"):
                    supplier = step_nodes[source[1:]]
                else:
                    if source not in external_nodes:
                        instance = self.db.get(external[source])
                        node = graph.add_node(instance.entity_type)
                        node.bind(instance.instance_id)
                        external_nodes[source] = node.node_id
                    supplier = external_nodes[source]
                graph.connect(output.node_id, supplier, role=role)
            step_nodes[activity.label] = output.node_id
        graph.validate()
        return graph
