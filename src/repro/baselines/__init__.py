"""Baseline systems from the paper's section 2, for comparison benches.

JESSI-style static flows [3], Casotto-style design traces [8], and
classical version trees — each implemented far enough to measure the
trade-offs the paper argues about.
"""

from .static_flow import (Activity, MaintenanceLog, StaticFlow,
                          StaticFlowManager)
from .trace_manager import Trace, TraceEvent, TraceManager
from .version_tree import (Version, VersionTreeManager,
                           version_tree_from_trace)

__all__ = [
    "Activity",
    "MaintenanceLog",
    "StaticFlow",
    "StaticFlowManager",
    "Trace",
    "TraceEvent",
    "TraceManager",
    "Version",
    "VersionTreeManager",
    "version_tree_from_trace",
]
