"""Classical version-tree manager (baseline for Fig. 11).

The traditional representation the paper contrasts against: versions of
one design object form a tree via explicit check-ins; the tree records
*that* c2 came from c1, but not *which tool* made it — the information
the flow trace keeps (Fig. 11b vs 11a).

:func:`version_tree_from_trace` converts a Hercules flow-trace projection
into this classical structure, so the benchmark can show the projection
is information-losing but consistent (same parent relation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import BaselineError
from ..history.trace import VersionNode


@dataclass(frozen=True)
class Version:
    """One node of a classical version tree."""

    version_id: str
    label: str
    parent: str | None


@dataclass
class VersionTreeManager:
    """Explicit check-in based versioning for one design object family."""

    family: str
    _versions: dict[str, Version] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=lambda:
                                      itertools.count(1))

    def check_in(self, label: str = "",
                 parent: str | None = None) -> Version:
        if parent is not None and parent not in self._versions:
            raise BaselineError(f"unknown parent version {parent!r}")
        version = Version(f"{self.family}-v{next(self._counter)}",
                          label, parent)
        self._versions[version.version_id] = version
        return version

    def version(self, version_id: str) -> Version:
        if version_id not in self._versions:
            raise BaselineError(f"unknown version {version_id!r}")
        return self._versions[version_id]

    def versions(self) -> tuple[Version, ...]:
        return tuple(self._versions.values())

    def children(self, version_id: str) -> tuple[Version, ...]:
        self.version(version_id)
        return tuple(v for v in self._versions.values()
                     if v.parent == version_id)

    def roots(self) -> tuple[Version, ...]:
        return tuple(v for v in self._versions.values()
                     if v.parent is None)

    def path_to_root(self, version_id: str) -> tuple[Version, ...]:
        chain = [self.version(version_id)]
        while chain[-1].parent is not None:
            chain.append(self.version(chain[-1].parent))
        return tuple(chain)

    def branch_count(self) -> int:
        """Number of versions with more than one child (branch points)."""
        return sum(1 for v in self._versions
                   if len(self.children(v)) > 1)

    def render(self) -> str:
        """Indented textual tree (the Fig. 11a picture)."""
        lines = [f"version tree: {self.family}"]

        def walk(version: Version, depth: int) -> None:
            label = f" '{version.label}'" if version.label else ""
            lines.append("  " * (depth + 1) + version.version_id + label)
            for child in sorted(self.children(version.version_id),
                                key=lambda v: v.version_id):
                walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda v: v.version_id):
            walk(root, 0)
        return "\n".join(lines)


def version_tree_from_trace(family: str,
                            nodes: Iterable[VersionNode],
                            labels: dict[str, str] | None = None
                            ) -> VersionTreeManager:
    """Build the classical tree from a flow-trace projection.

    The ``tool_id`` carried by each :class:`VersionNode` is deliberately
    dropped — that is exactly the information a classical version tree
    cannot represent.  ``labels`` optionally maps instance ids to display
    names (e.g. the paper's c1..c5).
    """
    labels = labels or {}

    def label_of(node: VersionNode) -> str:
        return labels.get(node.instance_id, node.instance_id)

    manager = VersionTreeManager(family)
    id_map: dict[str, str] = {}
    pending = list(nodes)
    progressed = True
    while pending and progressed:
        progressed = False
        remaining = []
        for node in pending:
            if node.parent_id is None:
                version = manager.check_in(label=label_of(node))
            elif node.parent_id in id_map:
                version = manager.check_in(label=label_of(node),
                                           parent=id_map[node.parent_id])
            else:
                remaining.append(node)
                continue
            id_map[node.instance_id] = version.version_id
            progressed = True
        pending = remaining
    if pending:
        raise BaselineError(
            "version projection contains orphans: "
            + ", ".join(n.instance_id for n in pending))
    return manager
