"""Casotto-style trace manager (baseline, paper section 2).

*"Casotto [8] avoids the problem of flow restriction entirely by merely
capturing a trace of designer activity and allowing existing traces to be
used as prototypes for new activities.  The problem with this approach is
that it provides no means for enforcing a particular design methodology
(though one may be defined), nor does it provide a means for organizing
and indexing traces in a more generalized fashion than with regard to
specific design data files."*

:class:`TraceManager` reproduces both the capability (record everything,
reuse traces as prototypes) and the two weaknesses, which the baseline
benchmarks measure:

* **no methodology enforcement** — :meth:`TraceManager.record` accepts
  any event, including sequences the task schema would reject;
* **file-bound indexing** — lookups scan events for exact data ids; there
  is no type-level or structural index, so query cost is linear in the
  total number of recorded events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One recorded tool invocation (data ids are opaque 'files')."""

    tool: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    comment: str = ""


@dataclass
class Trace:
    """A historical record of a sequence of tool invocations."""

    trace_id: str
    owner: str = ""
    events: list[TraceEvent] = field(default_factory=list)
    cursor: int = -1  # Chiueh&Katz-style cursor: index into events

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.cursor = len(self.events) - 1

    def reposition(self, index: int) -> None:
        """Move the activity cursor (to branch from an earlier state)."""
        if not -1 <= index < len(self.events):
            raise IndexError(f"cursor {index} outside trace "
                             f"{self.trace_id!r}")
        self.cursor = index

    def touched(self, data_id: str) -> bool:
        return any(data_id in event.inputs or data_id in event.outputs
                   for event in self.events)

    def __len__(self) -> int:
        return len(self.events)


class TraceManager:
    """Record traces; reuse them as prototypes; scan-based lookup."""

    def __init__(self) -> None:
        self._traces: dict[str, Trace] = {}
        self._counter = itertools.count(1)
        self.events_scanned = 0  # instrumentation for the query bench

    # -- capture -------------------------------------------------------
    def start_trace(self, owner: str = "") -> Trace:
        trace = Trace(f"trace#{next(self._counter):04d}", owner)
        self._traces[trace.trace_id] = trace
        return trace

    def record(self, trace: Trace | str, tool: str,
               inputs: Sequence[str], outputs: Sequence[str],
               comment: str = "") -> TraceEvent:
        """Append an event — *anything* is accepted (no methodology)."""
        resolved = self._resolve(trace)
        event = TraceEvent(tool, tuple(inputs), tuple(outputs), comment)
        resolved.append(event)
        return event

    def _resolve(self, trace: Trace | str) -> Trace:
        if isinstance(trace, Trace):
            return trace
        if trace not in self._traces:
            raise KeyError(f"no trace {trace!r}")
        return self._traces[trace]

    def traces(self) -> tuple[Trace, ...]:
        return tuple(self._traces[k] for k in sorted(self._traces))

    # -- prototype reuse ------------------------------------------------
    def prototype(self, trace: Trace | str, *,
                  substitute: Mapping[str, str] | None = None,
                  upto_cursor: bool = True) -> tuple[TraceEvent, ...]:
        """A replayable copy of a trace with data ids substituted.

        ``upto_cursor`` honours a repositioned cursor (the standard-cell
        to PLA scenario: branch from an earlier point).
        """
        resolved = self._resolve(trace)
        substitute = dict(substitute or {})
        end = resolved.cursor + 1 if upto_cursor else len(resolved.events)
        out = []
        for event in resolved.events[:end]:
            out.append(TraceEvent(
                event.tool,
                tuple(substitute.get(i, i) for i in event.inputs),
                (),  # outputs are produced anew on replay
                event.comment))
        return tuple(out)

    # -- file-bound lookup (the weakness) --------------------------------
    def traces_touching(self, data_id: str) -> tuple[Trace, ...]:
        """Linear scan over every event of every trace."""
        out = []
        for trace in self.traces():
            self.events_scanned += len(trace.events)
            if trace.touched(data_id):
                out.append(trace)
        return tuple(out)

    def derivations_of(self, data_id: str) -> tuple[TraceEvent, ...]:
        """Events that produced a given data id (again: full scan)."""
        out = []
        for trace in self.traces():
            for event in trace.events:
                self.events_scanned += 1
                if data_id in event.outputs:
                    out.append(event)
        return tuple(out)

    def total_events(self) -> int:
        return sum(len(t) for t in self._traces.values())
