"""Design goals evaluated against the history database.

A :class:`Goal` states what must exist for a design object to progress —
"a fresh verified physical view", "a performance under the models in
use".  Goal status is *derived*, never stored: a goal is

* ``ACHIEVED`` when an attached instance of the required type exists,
  satisfies the goal's predicate, and is up to date;
* ``STALE`` when such an instance exists but consistency maintenance
  says it used superseded inputs;
* ``OPEN`` otherwise.

This is the design-process face of the paper's consistency-maintenance
claim: the process manager asks the history, not a status file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from ..history.consistency import is_stale
from ..history.database import HistoryDatabase
from ..history.instance import EntityInstance
from .design import DesignObject


class GoalStatus(enum.Enum):
    OPEN = "open"
    STALE = "stale"
    ACHIEVED = "achieved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Predicate = Callable[[HistoryDatabase, EntityInstance], bool]


@dataclass(frozen=True)
class Goal:
    """One requirement on a design object."""

    name: str
    entity_type: str
    predicate: Predicate | None = None
    require_fresh: bool = True
    description: str = ""

    def evaluate(self, db: HistoryDatabase,
                 design: DesignObject) -> tuple[GoalStatus, str | None]:
        """Status plus the satisfying (or stale) instance id, if any."""
        best: tuple[GoalStatus, str | None] = (GoalStatus.OPEN, None)
        for instance_id in design.attached_ids():
            if instance_id not in db:
                continue
            instance = db.get(instance_id)
            if not db.schema.is_subtype(instance.entity_type,
                                        self.entity_type):
                continue
            if self.predicate is not None \
                    and not self.predicate(db, instance):
                continue
            if self.require_fresh and is_stale(db, instance_id):
                if best[0] is GoalStatus.OPEN:
                    best = (GoalStatus.STALE, instance_id)
                continue
            return (GoalStatus.ACHIEVED, instance_id)
        return best


def verified_predicate(db: HistoryDatabase,
                       instance: EntityInstance) -> bool:
    """Predicate for Verification goals: the comparison matched."""
    data: Any = db.data(instance)
    return bool(getattr(data, "matched", False))


def clean_performance_predicate(db: HistoryDatabase,
                                instance: EntityInstance) -> bool:
    """Predicate for Performance goals: no unknown output values."""
    data: Any = db.data(instance)
    return not getattr(data, "has_unknowns", True)
