"""Hierarchical design objects: the Design Process Level substrate.

Paper section 3.1: *"More complicated notions of design decomposition
(such as a hierarchy of cells within a design) can be handled at a higher
level of abstraction.  In the Odyssey CAD Framework, this is the Design
Process Level implemented in the Minerva Design Process Manager [11]."*

A :class:`DesignObject` is a node of the cell hierarchy (chip, block,
cell, ...).  It owns no design data itself; instead it *attaches* history
instances (its views and artifacts) and carries the goals the design
process manager evaluates against the history database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ReproError


class ProcessError(ReproError):
    """A design-process-level operation failed."""


@dataclass
class DesignObject:
    """One node of the design hierarchy."""

    name: str
    owner: str = ""
    description: str = ""
    parent: "DesignObject | None" = field(default=None, repr=False)
    children: list["DesignObject"] = field(default_factory=list,
                                           repr=False)
    attached: list[str] = field(default_factory=list)

    # -- hierarchy -----------------------------------------------------
    def add_child(self, name: str, *, owner: str = "",
                  description: str = "") -> "DesignObject":
        if any(child.name == name for child in self.children):
            raise ProcessError(
                f"{self.name!r} already has a child {name!r}")
        child = DesignObject(name, owner=owner, description=description,
                             parent=self)
        self.children.append(child)
        return child

    def child(self, name: str) -> "DesignObject":
        for candidate in self.children:
            if candidate.name == name:
                return candidate
        raise ProcessError(f"{self.name!r} has no child {name!r}")

    def find(self, path: str) -> "DesignObject":
        """Resolve a '/'-separated path relative to this node."""
        node = self
        for part in path.split("/"):
            if part:
                node = node.child(part)
        return node

    def path(self) -> str:
        parts = []
        node: DesignObject | None = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self) -> Iterator["DesignObject"]:
        """This node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- instance attachment ---------------------------------------------
    def attach(self, instance_id: str) -> None:
        """Associate a history instance (a view/artifact) with this cell."""
        if instance_id not in self.attached:
            self.attached.append(instance_id)

    def detach(self, instance_id: str) -> None:
        if instance_id not in self.attached:
            raise ProcessError(
                f"{self.path()!r}: {instance_id!r} is not attached")
        self.attached.remove(instance_id)

    def attached_ids(self, *, recursive: bool = False) -> tuple[str, ...]:
        if not recursive:
            return tuple(self.attached)
        out: list[str] = []
        for node in self.walk():
            out.extend(node.attached)
        return tuple(out)

    def render(self) -> str:
        """Indented hierarchy listing."""
        lines: list[str] = []

        def visit(node: DesignObject, depth: int) -> None:
            owner = f" [{node.owner}]" if node.owner else ""
            attached = (f" ({len(node.attached)} artifacts)"
                        if node.attached else "")
            lines.append("  " * depth + node.name + owner + attached)
            for child in node.children:
                visit(child, depth + 1)

        visit(self, 0)
        return "\n".join(lines)
