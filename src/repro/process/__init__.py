"""The Design Process Level: hierarchy, goals and process management.

The paper (section 3.1) delegates design decomposition — *"a hierarchy of
cells within a design"* — to the Odyssey framework's Design Process Level
(the Minerva Design Process Manager [11]).  This package reproduces that
level on top of the flow manager: design objects form a hierarchy, goals
are evaluated by querying the history database (including staleness), and
unachieved goals map back to dynamically defined flows.
"""

from .design import DesignObject, ProcessError
from .goals import (Goal, GoalStatus, clean_performance_predicate,
                    verified_predicate)
from .manager import DesignProcessManager, GoalReport, Progress

__all__ = [
    "DesignObject",
    "DesignProcessManager",
    "Goal",
    "GoalReport",
    "GoalStatus",
    "Progress",
    "ProcessError",
    "clean_performance_predicate",
    "verified_predicate",
]
