"""The design process manager (the reproduction's Minerva).

Couples a :class:`~repro.process.design.DesignObject` hierarchy with
goals and the design environment:

* :meth:`DesignProcessManager.status` — evaluate every goal of a cell
  (or the whole subtree) against the history database;
* :meth:`DesignProcessManager.progress` — achieved/total rollup per
  subtree;
* :meth:`DesignProcessManager.next_tasks` — for every open goal, a
  goal-based dynamically defined flow that would achieve it (the bridge
  back down to the Hercules task level);
* :meth:`DesignProcessManager.report` — the textual management view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flow import DynamicFlow
from ..execution.context import DesignEnvironment
from .design import DesignObject, ProcessError
from .goals import Goal, GoalStatus


@dataclass(frozen=True)
class GoalReport:
    """One goal's evaluated state on one design object."""

    design: str
    goal: Goal
    status: GoalStatus
    instance_id: str | None


@dataclass
class Progress:
    """Achievement rollup for a subtree."""

    achieved: int = 0
    stale: int = 0
    open: int = 0

    @property
    def total(self) -> int:
        return self.achieved + self.stale + self.open

    @property
    def fraction(self) -> float:
        return self.achieved / self.total if self.total else 1.0


class DesignProcessManager:
    """Minerva-style process management over the flow manager."""

    def __init__(self, env: DesignEnvironment, root: DesignObject) -> None:
        self.env = env
        self.root = root
        self._goals: dict[str, list[Goal]] = {}

    # -- goal management -------------------------------------------------
    def add_goal(self, design: DesignObject | str, goal: Goal) -> Goal:
        node = self._resolve(design)
        existing = self._goals.setdefault(node.path(), [])
        if any(g.name == goal.name for g in existing):
            raise ProcessError(
                f"{node.path()!r} already has goal {goal.name!r}")
        self.env.schema.entity(goal.entity_type)  # validated early
        existing.append(goal)
        return goal

    def goals_of(self, design: DesignObject | str) -> tuple[Goal, ...]:
        node = self._resolve(design)
        return tuple(self._goals.get(node.path(), ()))

    def _resolve(self, design: DesignObject | str) -> DesignObject:
        if isinstance(design, DesignObject):
            return design
        return self.root.find(design) if design else self.root

    # -- evaluation ----------------------------------------------------
    def status(self, design: DesignObject | str = "", *,
               recursive: bool = True) -> tuple[GoalReport, ...]:
        node = self._resolve(design)
        nodes = node.walk() if recursive else iter((node,))
        out: list[GoalReport] = []
        for current in nodes:
            for goal in self._goals.get(current.path(), ()):
                state, instance_id = goal.evaluate(self.env.db, current)
                out.append(GoalReport(current.path(), goal, state,
                                      instance_id))
        return tuple(out)

    def progress(self, design: DesignObject | str = "") -> Progress:
        rollup = Progress()
        for report in self.status(design):
            if report.status is GoalStatus.ACHIEVED:
                rollup.achieved += 1
            elif report.status is GoalStatus.STALE:
                rollup.stale += 1
            else:
                rollup.open += 1
        return rollup

    # -- bridge back to the task level ------------------------------------
    def next_tasks(self, design: DesignObject | str = ""
                   ) -> tuple[tuple[GoalReport, DynamicFlow], ...]:
        """A goal-based flow for every unachieved goal.

        Stale goals yield the retrace plan of their stale instance; open
        goals yield a fresh goal-based flow for the goal's entity type —
        the designer expands and binds from there.
        """
        out = []
        for report in self.status(design):
            if report.status is GoalStatus.ACHIEVED:
                continue
            if report.status is GoalStatus.STALE \
                    and report.instance_id is not None:
                plan = self.env.refresh_plan(report.instance_id)
                flow = DynamicFlow(self.env.schema, graph=plan)
            else:
                flow, _ = self.env.goal_flow(
                    report.goal.entity_type,
                    name=f"achieve-{report.goal.name}")
            out.append((report, flow))
        return tuple(out)

    # -- reporting ---------------------------------------------------
    def report(self) -> str:
        lines = [f"design process: {self.root.name}"]

        def visit(node: DesignObject, depth: int) -> None:
            rollup = self.progress(node)
            lines.append("  " * (depth + 1)
                         + f"{node.name}: {rollup.achieved}/{rollup.total}"
                         f" goals achieved"
                         + (f", {rollup.stale} stale" if rollup.stale
                            else ""))
            for goal_report in self.status(node, recursive=False):
                marker = {GoalStatus.ACHIEVED: "[x]",
                          GoalStatus.STALE: "[~]",
                          GoalStatus.OPEN: "[ ]"}[goal_report.status]
                suffix = (f" -> {goal_report.instance_id}"
                          if goal_report.instance_id else "")
                lines.append("  " * (depth + 2)
                             + f"{marker} {goal_report.goal.name}"
                             + suffix)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)
