"""Metrics aggregated from execution events.

A :class:`MetricsRegistry` is both a plain metrics API (counters,
gauges, timer histograms with p50/p95/max) and an event sink: subscribe
it to an :class:`~repro.obs.events.EventBus` (or replay a JSONL log
into it) and it aggregates invocation counts, tool durations and
failures per tool type and per flow — the numbers every perf PR must
cite before claiming a win.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from .events import (CACHE_HIT, CACHE_MISS, COMPOSITION_RUN,
                     EXECUTION_FAILED, FLOW_FINISHED, FLOW_STARTED,
                     INSTANCE_CREATED, TOOL_FINISHED, Event)


@dataclass(frozen=True)
class TimerStats:
    """Summary of one timer histogram."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float

    def render(self) -> str:
        return (f"n={self.count} total={self.total * 1e3:.2f}ms "
                f"mean={self.mean * 1e3:.2f}ms p50={self.p50 * 1e3:.2f}ms "
                f"p95={self.p95 * 1e3:.2f}ms max={self.max * 1e3:.2f}ms")


EMPTY_TIMER = TimerStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class MetricsRegistry:
    """Counters, gauges and timers, aggregated per tool type and flow."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # plain metrics API
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._timers.setdefault(name, []).append(value)

    def timer(self, name: str) -> TimerStats:
        with self._lock:
            values = sorted(self._timers.get(name, ()))
        if not values:
            return EMPTY_TIMER
        total = sum(values)
        return TimerStats(
            count=len(values),
            total=total,
            mean=total / len(values),
            p50=_percentile(values, 0.50),
            p95=_percentile(values, 0.95),
            max=values[-1],
        )

    def counters(self, prefix: str = "") -> dict[str, int]:
        with self._lock:
            return {name: count for name, count in self._counters.items()
                    if name.startswith(prefix)}

    def timers(self, prefix: str = "") -> dict[str, TimerStats]:
        names = [name for name in self._timers if name.startswith(prefix)]
        return {name: self.timer(name) for name in sorted(names)}

    # ------------------------------------------------------------------
    # event-sink interface
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Aggregate one execution event (EventBus sink interface)."""
        kind = event.event_type
        if kind in (TOOL_FINISHED, COMPOSITION_RUN):
            tool = event.tool_type or "@compose"
            self.inc(f"tool.{tool}.invocations")
            self.inc(f"tool.{tool}.runs", event.value("runs", 1))
            self.observe(f"tool.{tool}", event.duration)
            # queue wait is reported separately from execute time so
            # scheduling pressure never inflates tool durations
            queue_wait = float(event.value("queue_wait", 0.0))
            if queue_wait > 0:
                self.observe("queue_wait", queue_wait)
                self.observe(f"tool.{tool}.queue_wait", queue_wait)
            if event.flow:
                self.inc(f"flow.{event.flow}.invocations")
        elif kind == INSTANCE_CREATED:
            entity = event.value("entity_type", "?")
            self.inc("instances")
            self.inc(f"instances.{entity}")
        elif kind == FLOW_STARTED:
            self.inc("flows.started")
        elif kind == FLOW_FINISHED:
            self.inc("flows.finished")
            if event.flow:
                self.observe(f"flow.{event.flow}", event.duration)
        elif kind == EXECUTION_FAILED:
            self.inc("failures")
            if event.flow:
                self.inc(f"failures.{event.flow}")
        elif kind == CACHE_HIT:
            tool = event.tool_type or "@compose"
            self.inc("cache.hits")
            self.inc(f"cache.hits.{tool}")
            self.inc("cache.bytes_saved", int(event.value("bytes", 0)))
            self.observe("cache.time_saved",
                         float(event.value("saved", 0.0)))
        elif kind == CACHE_MISS:
            self.inc("cache.misses")
            self.inc(f"cache.misses.{event.tool_type or '@compose'}")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timer_names = sorted(self._timers)
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": {name: vars(self.timer(name))
                       for name in timer_names},
        }

    def render(self, top: int = 8) -> str:
        """The ``repro stats`` metrics summary."""
        lines = ["execution metrics:"]
        started = self.counter("flows.started")
        finished = self.counter("flows.finished")
        failures = self.counter("failures")
        lines.append(f"  flows: {started} started, {finished} finished, "
                     f"{failures} failed")
        instances = self.counter("instances")
        if instances:
            busiest = sorted(
                ((name.partition("instances.")[2], count)
                 for name, count in self.counters("instances.").items()),
                key=lambda kv: (-kv[1], kv[0]))[:top]
            lines.append(f"  instances created: {instances} (" + ", ".join(
                f"{name}={count}" for name, count in busiest) + ")")
        waits = self.timer("queue_wait")
        if waits.count:
            lines.append(f"  queue wait: {waits.render()}")
        hits = self.counter("cache.hits")
        misses = self.counter("cache.misses")
        if hits or misses:
            saved = self.timer("cache.time_saved")
            lines.append(
                f"  cache: {hits} hits, {misses} misses, "
                f"{self.counter('cache.bytes_saved')} bytes saved, "
                f"{saved.total * 1e3:.2f}ms saved")
        tools = self.timers("tool.")
        if tools:
            by_total = sorted(tools.items(),
                              key=lambda kv: (-kv[1].total, kv[0]))[:top]
            lines.append("  slowest tool types:")
            for name, stats in by_total:
                tool = name.partition("tool.")[2]
                lines.append(f"    {tool:<22} {stats.render()}")
        invocations = self.counters("flow.")
        if invocations:
            busiest_flows = sorted(invocations.items(),
                                   key=lambda kv: (-kv[1], kv[0]))[:top]
            lines.append("  invocations by flow: " + ", ".join(
                f"{name.partition('flow.')[2].rpartition('.invocations')[0]}"
                f"={count}" for name, count in busiest_flows))
        failure_flows = self.counters("failures.")
        if failure_flows:
            lines.append("  failures by flow: " + ", ".join(
                f"{name.partition('failures.')[2]}={count}"
                for name, count in sorted(failure_flows.items())))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._timers)} timers)")
