"""Metrics aggregated from execution events.

A :class:`MetricsRegistry` is both a plain metrics API (counters,
gauges, timer histograms with p50/p95/max) and an event sink: subscribe
it to an :class:`~repro.obs.events.EventBus` (or replay a JSONL log
into it) and it aggregates invocation counts, tool durations and
failures per tool type and per flow — the numbers every perf PR must
cite before claiming a win.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Any, Sequence

from .events import (CACHE_HIT, CACHE_MISS, COMPOSITION_RUN,
                     EXECUTION_FAILED, FLOW_FINISHED, FLOW_STARTED,
                     INSTANCE_CREATED, TOOL_FINISHED, WORKER_STATS,
                     Event)


@dataclass(frozen=True)
class TimerStats:
    """Summary of one timer histogram."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float

    def render(self) -> str:
        return (f"n={self.count} total={self.total * 1e3:.2f}ms "
                f"mean={self.mean * 1e3:.2f}ms p50={self.p50 * 1e3:.2f}ms "
                f"p95={self.p95 * 1e3:.2f}ms max={self.max * 1e3:.2f}ms")


EMPTY_TIMER = TimerStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over a pre-sorted sample.

    Edge cases are exact: one sample returns that sample (nothing to
    interpolate against), ``fraction`` 0.0/1.0 return min/max, and the
    interpolation index never reaches past the end of the list —
    ``fraction=1.0`` lands exactly on the last element with weight 0 on
    the (clamped) upper neighbour.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    fraction = min(1.0, max(0.0, fraction))
    position = fraction * (len(sorted_values) - 1)
    lower = min(int(position), len(sorted_values) - 2)
    weight = position - lower
    interpolated = (sorted_values[lower] * (1.0 - weight)
                    + sorted_values[lower + 1] * weight)
    # clamp away float rounding: a percentile must never leave the
    # segment it interpolates (keeps p50 <= p95 <= max exact)
    return max(sorted_values[lower],
               min(interpolated, sorted_values[lower + 1]))


def timer_stats_of(values: Sequence[float]) -> TimerStats:
    """Summarize a raw sample into a :class:`TimerStats`."""
    ordered = sorted(values)
    if not ordered:
        return EMPTY_TIMER
    total = sum(ordered)
    return TimerStats(
        count=len(ordered),
        total=total,
        mean=total / len(ordered),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        max=ordered[-1],
    )


_METRIC_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus charset."""
    cleaned = _METRIC_BAD_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class MetricsRegistry:
    """Counters, gauges and timers, aggregated per tool type and flow.

    Thread-safe: one lock guards every read and write of the three
    stores, so the parallel executors may ``observe()``/``inc()`` from
    worker threads while a reporter snapshots — no torn reads of a
    timer list mid-append, no lost counter increments.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # plain metrics API
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._timers.setdefault(name, []).append(value)

    def timer(self, name: str) -> TimerStats:
        with self._lock:
            values = list(self._timers.get(name, ()))
        return timer_stats_of(values)

    def counters(self, prefix: str = "") -> dict[str, int]:
        with self._lock:
            return {name: count for name, count in self._counters.items()
                    if name.startswith(prefix)}

    def timers(self, prefix: str = "") -> dict[str, TimerStats]:
        with self._lock:
            names = [name for name in self._timers
                     if name.startswith(prefix)]
        return {name: self.timer(name) for name in sorted(names)}

    # ------------------------------------------------------------------
    # event-sink interface
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Aggregate one execution event (EventBus sink interface)."""
        kind = event.event_type
        if kind in (TOOL_FINISHED, COMPOSITION_RUN):
            tool = event.tool_type or "@compose"
            self.inc(f"tool.{tool}.invocations")
            self.inc(f"tool.{tool}.runs", event.value("runs", 1))
            self.observe(f"tool.{tool}", event.duration)
            # queue wait is reported separately from execute time so
            # scheduling pressure never inflates tool durations
            queue_wait = float(event.value("queue_wait", 0.0))
            if queue_wait > 0:
                self.observe("queue_wait", queue_wait)
                self.observe(f"tool.{tool}.queue_wait", queue_wait)
            if event.flow:
                self.inc(f"flow.{event.flow}.invocations")
        elif kind == INSTANCE_CREATED:
            entity = event.value("entity_type", "?")
            self.inc("instances")
            self.inc(f"instances.{entity}")
        elif kind == FLOW_STARTED:
            self.inc("flows.started")
        elif kind == FLOW_FINISHED:
            self.inc("flows.finished")
            if event.flow:
                self.observe(f"flow.{event.flow}", event.duration)
        elif kind == EXECUTION_FAILED:
            self.inc("failures")
            if event.flow:
                self.inc(f"failures.{event.flow}")
        elif kind == CACHE_HIT:
            tool = event.tool_type or "@compose"
            self.inc("cache.hits")
            self.inc(f"cache.hits.{tool}")
            self.inc("cache.bytes_saved", int(event.value("bytes", 0)))
            self.observe("cache.time_saved",
                         float(event.value("saved", 0.0)))
        elif kind == CACHE_MISS:
            self.inc("cache.misses")
            self.inc(f"cache.misses.{event.tool_type or '@compose'}")
        elif kind == WORKER_STATS:
            worker = event.machine or "?"
            for counter in ("batches", "invocations", "steals",
                            "respawns", "cache_hits"):
                amount = int(event.value(counter, 0))
                if amount:
                    self.inc(f"worker.{worker}.{counter}", amount)
                    self.inc(f"workers.{counter}", amount)
            self.set_gauge(f"worker.{worker}.busy_seconds",
                           float(event.value("busy", event.duration)))
            self.set_gauge(f"worker.{worker}.idle_seconds",
                           float(event.value("idle", 0.0)))
            self.set_gauge(f"worker.{worker}.utilization",
                           float(event.value("utilization", 0.0)))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timer_names = sorted(self._timers)
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": {name: vars(self.timer(name))
                       for name in timer_names},
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text-format exposition of the registry.

        Counters become ``<prefix>_<name>_total`` counter families,
        gauges plain gauges, and timers summaries
        (``<prefix>_<name>_seconds`` with p50/p95 quantiles plus
        ``_count``/``_sum``).  Metric names are sanitized onto the
        Prometheus charset; families are grouped so every sample
        follows its ``# TYPE`` line, as the text format requires.
        """
        snapshot = self.snapshot()
        families: dict[str, tuple[str, list[str]]] = {}

        def family(metric: str, kind: str) -> list[str]:
            return families.setdefault(metric, (kind, []))[1]

        for name, count in snapshot["counters"].items():
            metric = f"{prefix}_{sanitize_metric_name(name)}_total"
            family(metric, "counter").append(f"{metric} {count}")
        for name, value in snapshot["gauges"].items():
            metric = f"{prefix}_{sanitize_metric_name(name)}"
            family(metric, "gauge").append(f"{metric} {value}")
        for name, stats in snapshot["timers"].items():
            metric = f"{prefix}_{sanitize_metric_name(name)}_seconds"
            samples = family(metric, "summary")
            samples.append(
                f'{metric}{{quantile="0.5"}} {stats["p50"]}')
            samples.append(
                f'{metric}{{quantile="0.95"}} {stats["p95"]}')
            samples.append(f"{metric}_count {stats['count']}")
            samples.append(f"{metric}_sum {stats['total']}")
        lines: list[str] = []
        for metric in sorted(families):
            kind, samples = families[metric]
            lines.append(f"# TYPE {metric} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self, top: int = 8) -> str:
        """The ``repro stats`` metrics summary."""
        lines = ["execution metrics:"]
        started = self.counter("flows.started")
        finished = self.counter("flows.finished")
        failures = self.counter("failures")
        lines.append(f"  flows: {started} started, {finished} finished, "
                     f"{failures} failed")
        instances = self.counter("instances")
        if instances:
            busiest = sorted(
                ((name.partition("instances.")[2], count)
                 for name, count in self.counters("instances.").items()),
                key=lambda kv: (-kv[1], kv[0]))[:top]
            lines.append(f"  instances created: {instances} (" + ", ".join(
                f"{name}={count}" for name, count in busiest) + ")")
        waits = self.timer("queue_wait")
        if waits.count:
            lines.append(f"  queue wait: {waits.render()}")
        hits = self.counter("cache.hits")
        misses = self.counter("cache.misses")
        if hits or misses:
            saved = self.timer("cache.time_saved")
            lines.append(
                f"  cache: {hits} hits, {misses} misses, "
                f"{self.counter('cache.bytes_saved')} bytes saved, "
                f"{saved.total * 1e3:.2f}ms saved")
        workers = sorted({name.split(".")[1]
                          for name in self.counters("worker.")}
                         | {name.split(".")[1]
                            for name in self.gauges()
                            if name.startswith("worker.")})
        if workers:
            lines.append("  workers:")
            for worker in workers:
                busy = self.gauge(f"worker.{worker}.busy_seconds")
                util = self.gauge(f"worker.{worker}.utilization")
                parts = [
                    f"batches={self.counter(f'worker.{worker}.batches')}",
                    f"inv={self.counter(f'worker.{worker}.invocations')}",
                    f"busy={busy * 1e3:.2f}ms",
                    f"util={util * 100.0:.0f}%",
                ]
                for counter in ("cache_hits", "steals", "respawns"):
                    count = self.counter(f"worker.{worker}.{counter}")
                    if count:
                        parts.append(f"{counter}={count}")
                lines.append(f"    {worker:<12} " + " ".join(parts))
        tools = self.timers("tool.")
        if tools:
            by_total = sorted(tools.items(),
                              key=lambda kv: (-kv[1].total, kv[0]))[:top]
            lines.append("  slowest tool types:")
            for name, stats in by_total:
                tool = name.partition("tool.")[2]
                lines.append(f"    {tool:<22} {stats.render()}")
        invocations = self.counters("flow.")
        if invocations:
            busiest_flows = sorted(invocations.items(),
                                   key=lambda kv: (-kv[1], kv[0]))[:top]
            lines.append("  invocations by flow: " + ", ".join(
                f"{name.partition('flow.')[2].rpartition('.invocations')[0]}"
                f"={count}" for name, count in busiest_flows))
        failure_flows = self.counters("failures.")
        if failure_flows:
            lines.append("  failures by flow: " + ", ".join(
                f"{name.partition('failures.')[2]}={count}"
                for name, count in sorted(failure_flows.items())))
        return "\n".join(lines)

    def __repr__(self) -> str:
        with self._lock:
            return (f"MetricsRegistry({len(self._counters)} counters, "
                    f"{len(self._gauges)} gauges, "
                    f"{len(self._timers)} timers)")
