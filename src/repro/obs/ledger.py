"""The run ledger: one compact record per executed flow, across runs.

The paper's claim is that one small derivation record per instance
yields a complete design-history database; events (PR 1) and spans
(PR 3) extend that to *how a single run behaved*.  The ledger adds the
longitudinal axis production flow managers need: at the end of every
executed flow one :class:`RunRecord` — run/trace identifiers, executor
kind, cache policy, per-tool-type duration and queue-wait stats, cache
and error counts — is appended to ``ledger.jsonl`` in the environment
directory.  Across runs those records are the time series that
:mod:`repro.obs.health` mines for drift and regressions, and that the
Prometheus exporter turns into ``repro_run_*`` series.

Records are written append-only through the same JSONL conventions as
the event log (schema-versioned lines, corrupt-tail tolerance on read),
so a missing or truncated ledger never breaks an environment — older
environments simply have no longitudinal history yet.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ObservabilityError
from .events import COMPOSE_TOOL
from .metrics import TimerStats, escape_label_value, timer_stats_of
from .sinks import iter_jsonl_objects
from .workers import WorkerRunStats, worker_utilization

LEDGER_SCHEMA_VERSION = "ledger.v1"

#: Executor kinds stamped into run records.
SEQUENTIAL_EXECUTOR = "sequential"
PARALLEL_EXECUTOR = "parallel"
SCHEDULED_EXECUTOR = "scheduled"
PROCESS_EXECUTOR = "procpool"


# ---------------------------------------------------------------------------
# shared JSON serializer (ledger records, ``repro stats --json``,
# ``repro events --json`` all funnel through here)
# ---------------------------------------------------------------------------
def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples into JSON-ready values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: to_jsonable(item)
                for name, item in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    return value


def render_json(payload: Any) -> str:
    """Canonical single-line JSON used by every machine-readable output."""
    return json.dumps(to_jsonable(payload), sort_keys=True)


# ---------------------------------------------------------------------------
# run records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ToolRunStats:
    """Per-tool-type timing summary of one run.

    ``invocations`` counts coalesced task invocations, ``runs`` the
    individual tool executions inside them (fan-outs run more than
    once); ``duration`` summarizes per-invocation execute times and
    ``queue_wait`` sums the time those invocations sat ready waiting
    for a machine.
    """

    invocations: int
    runs: int
    duration: TimerStats
    queue_wait: float = 0.0
    #: Transient failures the resilience layer retried away before the
    #: runs counted above succeeded (``timeouts``: watchdog kills).
    retries: int = 0
    timeouts: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "invocations": self.invocations,
            "runs": self.runs,
            "duration": dataclasses.asdict(self.duration),
            "queue_wait": self.queue_wait,
            "retries": self.retries,
            "timeouts": self.timeouts,
        }

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "ToolRunStats":
        return cls(
            invocations=int(spec.get("invocations", 0)),
            runs=int(spec.get("runs", 0)),
            duration=TimerStats(**spec.get("duration", {})),
            queue_wait=float(spec.get("queue_wait", 0.0)),
            retries=int(spec.get("retries", 0)),
            timeouts=int(spec.get("timeouts", 0)),
        )


@dataclass(frozen=True)
class RunRecord:
    """One executed flow, as remembered by the ledger."""

    run_id: str
    timestamp: float
    flow: str
    executor: str
    cache_policy: str
    trace_id: str = ""
    wall_time: float = 0.0
    serial_time: float = 0.0
    queue_wait: float = 0.0
    #: Realized serial/wall ratio — the PR 3 critical-path efficiency
    #: figure, persisted so degradation is detectable across runs.
    parallelism: float = 1.0
    #: Execution-slot count of the executor that ran the flow (machine
    #: pool size or worker process count; 1 for sequential).  Optional
    #: on the wire — omitted when 0, so the schema stays ledger.v1 and
    #: older ledgers load unchanged.
    pool_size: int = 0
    runs: int = 0
    created: int = 0
    reused: int = 0
    skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    error: str = ""
    #: Exception class name and failing tool type of the error above —
    #: lets ``repro health`` group error rates by tool instead of
    #: lumping every failure into one opaque message string.
    error_class: str = ""
    error_tool: str = ""
    #: Resilience telemetry: transient failures retried away, watchdog
    #: abandonments, invocations lost under graceful degradation, and
    #: the tool types the circuit breaker had quarantined by run end.
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    quarantined: tuple[str, ...] = ()
    tools: dict[str, ToolRunStats] = field(default_factory=dict)
    #: Per-worker telemetry of a procpool run (empty for in-process
    #: executors and for ledgers written before PR 8 — optional on the
    #: wire, so old ledgers load unchanged).
    workers: dict[str, WorkerRunStats] = field(default_factory=dict)
    #: Profiling summary of a ``--profile`` run (the
    #: :meth:`repro.obs.profiling.SamplingProfiler.summary` shape plus
    #: an optional ``query`` roll-up).  Optional on the wire — omitted
    #: when empty, so the schema stays ledger.v1 and ledgers written
    #: before PR 9 load unchanged.
    profile: dict[str, Any] = field(default_factory=dict)
    schema_version: str = LEDGER_SCHEMA_VERSION

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def worker_utilization(self) -> float:
        """Pool utilization: summed worker busy time / (n x wall)."""
        return worker_utilization(self.workers, self.wall_time)

    @classmethod
    def from_report(cls, report: Any, *, executor: str,
                    cache_policy: str = "off", trace_id: str = "",
                    run_id: str = "", timestamp: float | None = None,
                    error: BaseException | str | None = None,
                    workers: dict[str, WorkerRunStats] | None = None,
                    profile: dict[str, Any] | None = None,
                    pool_size: int = 0) -> "RunRecord":
        """Distill an :class:`~repro.execution.executor.ExecutionReport`.

        ``report`` is duck-typed (obs must not import the execution
        layer).  ``cache_misses`` counts the executed tool runs of a
        cache-enabled run: every run that actually executed was, by
        definition, not served from the cache.
        """
        per_tool: dict[str, tuple[list[float], int, float,
                                  int, int]] = {}
        for result in report.results:
            tool = result.tool_type or COMPOSE_TOOL
            durations, runs, waited, retried, timed_out = \
                per_tool.get(tool, ([], 0, 0.0, 0, 0))
            durations.append(result.duration)
            per_tool[tool] = (
                durations, runs + result.runs,
                waited + result.queue_wait,
                retried + getattr(result, "retries", 0),
                timed_out + getattr(result, "timeouts", 0))
        tools = {
            tool: ToolRunStats(
                invocations=len(durations),
                runs=runs,
                duration=timer_stats_of(durations),
                queue_wait=waited,
                retries=retried,
                timeouts=timed_out)
            for tool, (durations, runs, waited, retried, timed_out)
            in per_tool.items()
        }
        cached_runs = report.cache_hits
        misses = report.runs if cache_policy != "off" else 0
        # Degraded runs carry their losses inside the report; a fatal
        # run carries its (annotated) exception in ``error``.  Either
        # way the record keeps the error class and the failing tool
        # type so health checks can group failures by tool.
        failure_entries = list(getattr(report, "failures", ()))
        error_text = "" if error is None else str(error)
        error_class = ""
        error_tool = ""
        if isinstance(error, BaseException):
            error_class = type(error).__name__
            error_tool = getattr(error, "repro_tool_type", "") or ""
        elif error is None and failure_entries:
            first = failure_entries[0]
            error_text = first.error
            error_class = first.error_class
            error_tool = first.tool_type or ""
        return cls(
            run_id=run_id or uuid.uuid4().hex[:12],
            timestamp=time.time() if timestamp is None else timestamp,
            flow=report.flow_name,
            executor=executor,
            cache_policy=cache_policy,
            trace_id=trace_id or "",
            wall_time=report.wall_time,
            serial_time=report.serial_time,
            queue_wait=report.queue_wait_time,
            parallelism=report.speedup,
            pool_size=pool_size,
            runs=report.runs,
            created=len(report.created),
            reused=len(report.reused),
            skipped=len(report.skipped),
            cache_hits=cached_runs,
            cache_misses=misses,
            errors=(0 if error is None else 1) + len(failure_entries),
            error=error_text,
            error_class=error_class,
            error_tool=error_tool,
            retries=int(getattr(report, "retries", 0)),
            timeouts=int(getattr(report, "timeouts", 0)),
            failures=len(failure_entries),
            quarantined=tuple(sorted(
                getattr(report, "quarantined", ()))),
            tools=tools,
            workers=dict(workers or {}),
            profile=dict(profile or {}),
        )

    def to_dict(self) -> dict[str, Any]:
        spec = {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "flow": self.flow,
            "executor": self.executor,
            "cache_policy": self.cache_policy,
            "trace_id": self.trace_id,
            "wall_time": self.wall_time,
            "serial_time": self.serial_time,
            "queue_wait": self.queue_wait,
            "parallelism": self.parallelism,
            "runs": self.runs,
            "created": self.created,
            "reused": self.reused,
            "skipped": self.skipped,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "tools": {tool: stats.to_dict()
                      for tool, stats in sorted(self.tools.items())},
        }
        if self.pool_size:
            spec["pool_size"] = self.pool_size
        if self.error:
            spec["error"] = self.error
        if self.error_class:
            spec["error_class"] = self.error_class
        if self.error_tool:
            spec["error_tool"] = self.error_tool
        if self.quarantined:
            spec["quarantined"] = list(self.quarantined)
        if self.workers:
            spec["workers"] = {
                worker: stats.to_dict()
                for worker, stats in sorted(self.workers.items())}
        if self.profile:
            spec["profile"] = to_jsonable(self.profile)
        return spec

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "RunRecord":
        version = spec.get("schema_version", LEDGER_SCHEMA_VERSION)
        if version.partition(".")[0] != \
                LEDGER_SCHEMA_VERSION.partition(".")[0]:
            raise ObservabilityError(
                f"unsupported ledger schema version {version!r} "
                f"(this build reads {LEDGER_SCHEMA_VERSION!r})")
        return cls(
            run_id=spec["run_id"],
            timestamp=float(spec.get("timestamp", 0.0)),
            flow=spec.get("flow", ""),
            executor=spec.get("executor", SEQUENTIAL_EXECUTOR),
            cache_policy=spec.get("cache_policy", "off"),
            trace_id=spec.get("trace_id", ""),
            wall_time=float(spec.get("wall_time", 0.0)),
            serial_time=float(spec.get("serial_time", 0.0)),
            queue_wait=float(spec.get("queue_wait", 0.0)),
            parallelism=float(spec.get("parallelism", 1.0)),
            pool_size=int(spec.get("pool_size", 0)),
            runs=int(spec.get("runs", 0)),
            created=int(spec.get("created", 0)),
            reused=int(spec.get("reused", 0)),
            skipped=int(spec.get("skipped", 0)),
            cache_hits=int(spec.get("cache_hits", 0)),
            cache_misses=int(spec.get("cache_misses", 0)),
            errors=int(spec.get("errors", 0)),
            error=spec.get("error", ""),
            error_class=spec.get("error_class", ""),
            error_tool=spec.get("error_tool", ""),
            retries=int(spec.get("retries", 0)),
            timeouts=int(spec.get("timeouts", 0)),
            failures=int(spec.get("failures", 0)),
            quarantined=tuple(spec.get("quarantined", ())),
            tools={tool: ToolRunStats.from_dict(stats)
                   for tool, stats in spec.get("tools", {}).items()},
            workers={worker: WorkerRunStats.from_dict(stats)
                     for worker, stats
                     in spec.get("workers", {}).items()},
            profile=dict(spec.get("profile", {})),
            schema_version=version,
        )

    def render(self) -> str:
        """One human-readable line (the ``repro ledger show`` format)."""
        parts = [
            f"{self.run_id}",
            f"flow={self.flow}",
            f"exec={self.executor}",
            f"cache={self.cache_policy}",
            f"wall={self.wall_time * 1e3:.2f}ms",
            f"runs={self.runs}",
            f"created={self.created}",
        ]
        if self.cache_lookups:
            parts.append(f"hits={self.cache_hits}/{self.cache_lookups}")
        if self.queue_wait:
            parts.append(f"qwait={self.queue_wait * 1e3:.2f}ms")
        if self.parallelism > 1.05:
            parts.append(f"par={self.parallelism:.2f}x")
        if self.pool_size > 1:
            parts.append(f"pool={self.pool_size}")
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.timeouts:
            parts.append(f"timeouts={self.timeouts}")
        if self.failures:
            parts.append(f"FAILURES={self.failures}")
        if self.errors:
            parts.append(f"ERRORS={self.errors}")
            if self.error_class:
                tool = f"@{self.error_tool}" if self.error_tool else ""
                parts.append(f"error={self.error_class}{tool}")
        if self.quarantined:
            parts.append("quarantined="
                         + ",".join(self.quarantined))
        if self.workers:
            parts.append(f"workers={len(self.workers)}")
            parts.append(f"util={self.worker_utilization * 100.0:.0f}%")
        if self.profile:
            parts.append(
                f"profiled={self.profile.get('samples', 0)}smp")
        if self.trace_id:
            parts.append(f"trace={self.trace_id}")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# the ledger itself
# ---------------------------------------------------------------------------
class RunLedger:
    """Append-only JSONL store of :class:`RunRecord` entries.

    One instance per environment directory; appends are serialized
    under a lock (coordinating executors may finish concurrently) and
    each record is written and flushed in one call, so a crashed
    process leaves at worst one truncated trailing line — which the
    tolerant reader forgives.  A missing file is an empty ledger, never
    an error: environments predating the ledger load unchanged.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()

    def append(self, record: RunRecord) -> RunRecord:
        line = render_json(record.to_dict())
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        return record

    def record_run(self, report: Any, *, executor: str,
                   cache_policy: str = "off", trace_id: str = "",
                   error: BaseException | str | None = None,
                   workers: dict[str, WorkerRunStats] | None = None,
                   profile: dict[str, Any] | None = None,
                   pool_size: int = 0) -> RunRecord | None:
        """Build and append one record from an execution report.

        Ledger I/O failures (full disk, revoked permissions) are
        swallowed: losing one longitudinal data point must never fail
        the design run that produced it.
        """
        record = RunRecord.from_report(
            report, executor=executor, cache_policy=cache_policy,
            trace_id=trace_id, error=error, workers=workers,
            profile=profile, pool_size=pool_size)
        try:
            return self.append(record)
        except OSError:
            return None

    def records(self) -> tuple[RunRecord, ...]:
        """Every readable record, oldest first; missing file is empty."""
        if not self.path.exists():
            return ()
        return tuple(
            RunRecord.from_dict(spec)
            for _, spec in iter_jsonl_objects(self.path, strict=False))

    def last(self, count: int = 1) -> tuple[RunRecord, ...]:
        records = self.records()
        return records[-count:] if count > 0 else ()

    def find(self, run_id: str) -> RunRecord:
        """Look up one run by id (unambiguous prefixes accepted)."""
        records = self.records()
        exact = [r for r in records if r.run_id == run_id]
        if len(exact) == 1:
            return exact[0]
        matches = [r for r in records if r.run_id.startswith(run_id)]
        if not matches:
            raise ObservabilityError(
                f"no run {run_id!r} in ledger {self.path}")
        if len(matches) > 1:
            raise ObservabilityError(
                f"run id {run_id!r} is ambiguous: "
                f"{sorted(r.run_id for r in matches)}")
        return matches[0]

    def for_trace(self, trace_id: str) -> RunRecord | None:
        """The run record a trace id belongs to (joins instances to
        runs: history records carry the same trace id)."""
        if not trace_id:
            return None
        for record in reversed(self.records()):
            if record.trace_id == trace_id:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r})"


# ---------------------------------------------------------------------------
# Prometheus export of ledger-derived series
# ---------------------------------------------------------------------------
def render_prometheus_ledger(records: Sequence[RunRecord],
                             prefix: str = "repro") -> str:
    """``repro_run_*`` series in Prometheus text format.

    Monotone totals aggregate the whole ledger; per-run gauges and the
    per-tool duration summary describe the latest record, which is what
    a scrape of a live environment wants to see.
    """
    lines: list[str] = []

    def sample(metric: str, kind: str, value: float,
               labels: dict[str, str] | None = None,
               suffix: str = "", declare: bool = True) -> None:
        if declare:
            lines.append(f"# TYPE {metric} {kind}")
        rendered = ""
        if labels:
            pairs = ",".join(
                f'{name}="{escape_label_value(str(item))}"'
                for name, item in sorted(labels.items()))
            rendered = "{" + pairs + "}"
        lines.append(f"{metric}{suffix}{rendered} {value}")

    total = len(records)
    sample(f"{prefix}_runs_total", "counter", total)
    sample(f"{prefix}_run_errors_total", "counter",
           sum(r.errors for r in records))
    sample(f"{prefix}_run_tool_runs_total", "counter",
           sum(r.runs for r in records))
    sample(f"{prefix}_run_created_instances_total", "counter",
           sum(r.created for r in records))
    sample(f"{prefix}_run_cache_hits_total", "counter",
           sum(r.cache_hits for r in records))
    sample(f"{prefix}_run_cache_misses_total", "counter",
           sum(r.cache_misses for r in records))
    sample(f"{prefix}_run_retries_total", "counter",
           sum(r.retries for r in records))
    sample(f"{prefix}_run_timeouts_total", "counter",
           sum(r.timeouts for r in records))
    sample(f"{prefix}_run_failures_total", "counter",
           sum(r.failures for r in records))
    sample(f"{prefix}_run_worker_steals_total", "counter",
           sum(stats.steals for r in records
               for stats in r.workers.values()))
    sample(f"{prefix}_run_worker_respawns_total", "counter",
           sum(stats.respawns for r in records
               for stats in r.workers.values()))
    if not records:
        return "\n".join(lines) + "\n"
    last = records[-1]
    labels = {"flow": last.flow, "executor": last.executor,
              "run": last.run_id}
    sample(f"{prefix}_run_wall_time_seconds", "gauge", last.wall_time,
           labels)
    sample(f"{prefix}_run_serial_time_seconds", "gauge",
           last.serial_time, labels)
    sample(f"{prefix}_run_queue_wait_seconds", "gauge", last.queue_wait,
           labels)
    sample(f"{prefix}_run_parallelism", "gauge", last.parallelism,
           labels)
    sample(f"{prefix}_run_cache_hit_rate", "gauge", last.cache_hit_rate,
           labels)
    sample(f"{prefix}_run_timestamp_seconds", "gauge", last.timestamp,
           labels)
    metric = f"{prefix}_run_tool_duration_seconds"
    declared = False
    for tool, stats in sorted(last.tools.items()):
        tool_labels = {"tool": tool}
        sample(metric, "summary", stats.duration.p50,
               {**tool_labels, "quantile": "0.5"}, declare=not declared)
        declared = True
        sample(metric, "summary", stats.duration.p95,
               {**tool_labels, "quantile": "0.95"}, declare=False)
        sample(metric, "summary", stats.invocations, tool_labels,
               suffix="_count", declare=False)
        sample(metric, "summary", stats.duration.total, tool_labels,
               suffix="_sum", declare=False)
    if last.workers:
        sample(f"{prefix}_run_worker_utilization", "gauge",
               last.worker_utilization, labels)
        per_worker = (
            (f"{prefix}_run_worker_busy_seconds",
             lambda stats: stats.busy_time),
            (f"{prefix}_run_worker_idle_seconds",
             lambda stats: stats.idle_time),
            (f"{prefix}_run_worker_invocations",
             lambda stats: stats.invocations),
            (f"{prefix}_run_worker_rss_kilobytes",
             lambda stats: stats.rss_kb),
        )
        for metric, extract in per_worker:
            declared = False
            for worker, stats in sorted(last.workers.items()):
                sample(metric, "gauge", extract(stats),
                       {"worker": worker}, declare=not declared)
                declared = True
    return "\n".join(lines) + "\n"
