"""Worker-side telemetry for the process-pool executor.

The procpool tier (PR 7) made forked workers a black box: spans were
synthesized coordinator-side from a single reported duration.  This
module is the worker's half of the fix — a lightweight, pickle-safe
recorder that runs *inside* each forked worker and ships structured
timing home with every batch reply:

* :class:`WorkerTelemetry` captures per-invocation **phase samples**
  (envelope decode, fingerprint verify, tool body, result encode) on
  the worker's monotonic clock, plus cumulative counters (batches,
  envelopes, busy seconds, rss high-water via ``resource.getrusage``);
* :class:`ClockSync` is the coordinator's half of the spawn-time
  handshake: one ping/pong over the worker pipe estimates the offset
  between the worker clock and the coordinator's tracer clock
  (midpoint method), so worker timestamps merge skew-corrected;
* :func:`fit_phases` performs that merge: correct each worker-side
  sample by the estimated offset, then clamp it into the coordinator's
  observed dispatch window so the resulting spans always nest inside
  their parents, whatever the residual skew;
* :class:`WorkerRunStats` is the per-worker summary the ledger, the
  Prometheus export and ``repro health`` consume.

Everything here is stdlib-only and import-safe from both halves of the
fork; nothing imports the execution layer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

#: Phase names, in the order a worker executes them.
PHASE_DECODE = "decode"
PHASE_VERIFY = "verify"
PHASE_TOOL = "tool_body"
PHASE_ENCODE = "encode"

WORKER_PHASES: tuple[str, ...] = (
    PHASE_DECODE,
    PHASE_VERIFY,
    PHASE_TOOL,
    PHASE_ENCODE,
)

#: One phase sample as it crosses the pipe: (name, start, end) on the
#: worker's clock.  Plain tuples pickle smaller than dataclasses.
PhaseSample = tuple[str, float, float]


def _rss_kb() -> int:
    """High-water resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize to KiB.
    Platforms without :mod:`resource` report 0 rather than fail.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS only
        peak //= 1024
    return int(peak)


class WorkerTelemetry:
    """In-worker recorder: phase samples plus cumulative counters.

    One instance lives for the worker process's lifetime.  Phase
    collection is opt-in per envelope (the coordinator only asks for it
    when a tracer is attached), so untraced runs pay one boolean test
    per phase; the counters are always maintained — they are a handful
    of float adds per batch.
    """

    def __init__(self, worker: str, *,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.worker = worker
        self.clock = clock
        self.batches = 0
        self.envelopes = 0
        self.busy_time = 0.0
        self._collecting = False
        self._phases: list[PhaseSample] = []

    def begin_envelope(self, *, collect: bool = False) -> None:
        """Reset the per-envelope scratch; called before each unit."""
        self._collecting = collect
        self._phases = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase of the current envelope (no-op untraced)."""
        if not self._collecting:
            yield
            return
        started = self.clock()
        try:
            yield
        finally:
            self._phases.append((name, started, self.clock()))

    def phases(self) -> tuple[PhaseSample, ...]:
        """The current envelope's samples, in execution order."""
        return tuple(self._phases)

    def finish_envelope(self, duration: float) -> None:
        """Fold one completed envelope into the counters."""
        self.envelopes += 1
        self.busy_time += max(0.0, duration)

    def stats(self) -> dict[str, Any]:
        """Snapshot shipped home with every batch reply."""
        return {
            "worker": self.worker,
            "batches": self.batches,
            "envelopes": self.envelopes,
            "busy_time": round(self.busy_time, 6),
            "rss_kb": _rss_kb(),
        }


# ---------------------------------------------------------------------------
# coordinator side: clock handshake + skew-corrected merge
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClockSync:
    """Result of one spawn-time clock handshake.

    ``offset`` maps worker timestamps onto the coordinator clock:
    ``coordinator_time = worker_time - offset``.  The midpoint estimate
    is exact to within half the round-trip (``rtt``); on Linux both
    clocks are the same system-wide ``CLOCK_MONOTONIC``, so the offset
    is usually near zero — the handshake exists for the day it isn't
    (tracers with custom clocks, platforms with per-process clocks).
    """

    offset: float = 0.0
    rtt: float = 0.0
    synced: bool = False

    @classmethod
    def estimate(cls, t_sent: float, worker_clock: float,
                 t_received: float) -> "ClockSync":
        """Midpoint offset from one ping (NTP-style, single sample)."""
        midpoint = (t_sent + t_received) / 2.0
        return cls(offset=worker_clock - midpoint,
                   rtt=max(0.0, t_received - t_sent),
                   synced=True)

    def correct(self, worker_time: float) -> float:
        """Map one worker-clock timestamp onto the coordinator clock."""
        return worker_time - self.offset


def fit_phases(phases: Sequence[PhaseSample], sync: ClockSync,
               window: tuple[float, float] | None
               ) -> tuple[PhaseSample, ...]:
    """Merge worker phase samples into the coordinator's timeline.

    Each sample is skew-corrected by the handshake offset, then clamped
    into ``window`` — the coordinator-observed (send, receive) interval
    of the round trip that carried it.  Clamping guarantees the derived
    spans nest inside their parent task span even when the offset
    estimate is off by up to the handshake round-trip; intervals are
    truncated, never reordered, and ``end >= start`` always holds.
    """
    if not phases:
        return ()
    corrected = [(name, sync.correct(start), sync.correct(end))
                 for name, start, end in phases]
    if window is None:
        return tuple(corrected)
    lo, hi = window
    fitted: list[PhaseSample] = []
    for name, start, end in corrected:
        start = min(max(start, lo), hi)
        end = min(max(end, lo), hi)
        fitted.append((name, start, max(start, end)))
    return tuple(fitted)


# ---------------------------------------------------------------------------
# the per-worker run summary (ledger / health / Prometheus shape)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerRunStats:
    """One worker's contribution to one executed flow.

    ``batches``/``invocations``/``busy_time``/``rss_kb`` come from the
    worker's own telemetry (summed across respawns); ``steals``,
    ``cache_hits`` and ``respawns`` are coordinator-side lane counters
    — a *steal* is a claim whose tool type differs from the lane's
    previous claim, i.e. the lane abandoned its warm streak to drain
    whatever was runnable.  ``idle_time`` is wall minus busy, clamped
    at zero.
    """

    batches: int = 0
    invocations: int = 0
    steals: int = 0
    respawns: int = 0
    cache_hits: int = 0
    busy_time: float = 0.0
    idle_time: float = 0.0
    rss_kb: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "invocations": self.invocations,
            "steals": self.steals,
            "respawns": self.respawns,
            "cache_hits": self.cache_hits,
            "busy_time": self.busy_time,
            "idle_time": self.idle_time,
            "rss_kb": self.rss_kb,
        }

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "WorkerRunStats":
        return cls(
            batches=int(spec.get("batches", 0)),
            invocations=int(spec.get("invocations", 0)),
            steals=int(spec.get("steals", 0)),
            respawns=int(spec.get("respawns", 0)),
            cache_hits=int(spec.get("cache_hits", 0)),
            busy_time=float(spec.get("busy_time", 0.0)),
            idle_time=float(spec.get("idle_time", 0.0)),
            rss_kb=int(spec.get("rss_kb", 0)),
        )

    def render(self) -> str:
        parts = [
            f"batches={self.batches}",
            f"inv={self.invocations}",
            f"busy={self.busy_time * 1e3:.2f}ms",
            f"idle={self.idle_time * 1e3:.2f}ms",
        ]
        if self.cache_hits:
            parts.append(f"hits={self.cache_hits}")
        if self.steals:
            parts.append(f"steals={self.steals}")
        if self.respawns:
            parts.append(f"respawns={self.respawns}")
        if self.rss_kb:
            parts.append(f"rss={self.rss_kb}KiB")
        return " ".join(parts)


def worker_utilization(workers: dict[str, WorkerRunStats],
                       wall_time: float) -> float:
    """Pool utilization: summed busy time over workers x wall."""
    if not workers or wall_time <= 0:
        return 0.0
    busy = sum(stats.busy_time for stats in workers.values())
    return busy / (len(workers) * wall_time)


def worker_imbalance(workers: dict[str, WorkerRunStats]) -> float:
    """Max/mean busy-time ratio; 1.0 is a perfectly even pool."""
    if not workers:
        return 1.0
    busy = [stats.busy_time for stats in workers.values()]
    mean = sum(busy) / len(busy)
    if mean <= 0:
        return 1.0
    return max(busy) / mean


__all__ = [
    "ClockSync",
    "PHASE_DECODE",
    "PHASE_ENCODE",
    "PHASE_TOOL",
    "PHASE_VERIFY",
    "PhaseSample",
    "WORKER_PHASES",
    "WorkerRunStats",
    "WorkerTelemetry",
    "fit_phases",
    "worker_imbalance",
    "worker_utilization",
]
