"""Structured execution events and the bus that carries them.

The paper records *what* was created (derivation records); production
design management also needs *how* execution unfolded — scheduling
decisions, tool durations, parallel lanes, failures.  Every interesting
moment in the execution stack is an :class:`Event`: a small, immutable,
JSON-serializable record with a schema version, a monotonically
increasing sequence number, and the identifiers (flow, node, tool type,
invocation, derivation ids) needed to join it back onto the history
database.

The :class:`EventBus` is deliberately boring: sinks subscribe, emitters
call :meth:`EventBus.emit`.  A bus with no sinks short-circuits before
building the event, so uninstrumented callers pay one attribute load and
one truth test per emission point.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ObservabilityError

SCHEMA_VERSION = "obs.v1"

# ---------------------------------------------------------------------------
# event types
# ---------------------------------------------------------------------------
FLOW_STARTED = "flow_started"
NODE_READY = "node_ready"
TOOL_INVOKED = "tool_invoked"
TOOL_FINISHED = "tool_finished"
INSTANCE_CREATED = "instance_created"
COMPOSITION_RUN = "composition_run"
FLOW_FINISHED = "flow_finished"
EXECUTION_FAILED = "execution_failed"
LANE_ASSIGNED = "lane_assigned"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
TOOL_RETRIED = "tool_retried"
TOOL_TIMED_OUT = "tool_timed_out"
TOOL_QUARANTINED = "tool_quarantined"
#: End-of-run summary for one worker process (procpool): batches,
#: steals, respawns, busy/idle split — ``machine`` names the worker.
WORKER_STATS = "worker_stats"

EVENT_TYPES = frozenset({
    FLOW_STARTED,
    NODE_READY,
    TOOL_INVOKED,
    TOOL_FINISHED,
    INSTANCE_CREATED,
    COMPOSITION_RUN,
    FLOW_FINISHED,
    EXECUTION_FAILED,
    LANE_ASSIGNED,
    CACHE_HIT,
    CACHE_MISS,
    TOOL_RETRIED,
    TOOL_TIMED_OUT,
    TOOL_QUARANTINED,
    WORKER_STATS,
})

#: Tool-type key used for composition (tool-less) invocations, matching
#: the key :class:`~repro.execution.scheduler.DurationModel` uses.
COMPOSE_TOOL = "@compose"


@dataclass(frozen=True)
class Event:
    """One structured observation of flow execution.

    ``payload`` is stored as a sorted tuple of pairs so events stay
    hashable and compare exactly across a JSONL round-trip.
    """

    seq: int
    event_type: str
    timestamp: float
    flow: str = ""
    node: str = ""
    tool_type: str = ""
    invocation_id: str = ""
    machine: str = ""
    duration: float = 0.0
    payload: tuple[tuple[str, Any], ...] = ()
    schema_version: str = SCHEMA_VERSION

    def value(self, key: str, default: Any = None) -> Any:
        """Look up one payload entry."""
        for name, item in self.payload:
            if name == key:
                return item
        return default

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "seq": self.seq,
            "event_type": self.event_type,
            "timestamp": self.timestamp,
            "flow": self.flow,
            "node": self.node,
            "tool_type": self.tool_type,
            "invocation_id": self.invocation_id,
            "machine": self.machine,
            "duration": self.duration,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "Event":
        version = spec.get("schema_version", SCHEMA_VERSION)
        if version.partition(".")[0] != SCHEMA_VERSION.partition(".")[0]:
            raise ObservabilityError(
                f"unsupported event schema version {version!r} "
                f"(this build reads {SCHEMA_VERSION!r})")
        payload = spec.get("payload", {})
        return cls(
            seq=int(spec["seq"]),
            event_type=spec["event_type"],
            timestamp=float(spec["timestamp"]),
            flow=spec.get("flow", ""),
            node=spec.get("node", ""),
            tool_type=spec.get("tool_type", ""),
            invocation_id=spec.get("invocation_id", ""),
            machine=spec.get("machine", ""),
            duration=float(spec.get("duration", 0.0)),
            payload=tuple(sorted(payload.items())),
            schema_version=version,
        )

    def render(self) -> str:
        """One human-readable line (the ``repro events`` format)."""
        parts = [f"{self.seq:>6}", f"{self.event_type:<17}"]
        if self.flow:
            parts.append(f"flow={self.flow}")
        if self.node:
            parts.append(f"node={self.node}")
        if self.tool_type:
            parts.append(f"tool={self.tool_type}")
        if self.invocation_id:
            parts.append(f"run={self.invocation_id}")
        if self.machine:
            parts.append(f"on={self.machine}")
        if self.duration:
            parts.append(f"dur={self.duration * 1e3:.2f}ms")
        for key, item in self.payload:
            parts.append(f"{key}={item}")
        return " ".join(parts)


@dataclass
class EventBus:
    """Dispatches events to subscribed sinks, in emission order.

    Thread-safe: sequence allocation and sink dispatch happen under one
    lock, so the ``seq`` order equals the order sinks observe even when
    parallel lanes emit concurrently.  With no sinks subscribed,
    :meth:`emit` returns immediately (the default for uninstrumented
    executors).
    """

    clock: Callable[[], float] = time.time
    _sinks: list[Any] = field(default_factory=list)
    _seq: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count(1))
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def enabled(self) -> bool:
        """True when at least one sink will observe emissions."""
        return bool(self._sinks)

    def subscribe(self, sink: Any) -> Any:
        """Attach a sink (anything with ``handle(event)``)."""
        if not callable(getattr(sink, "handle", None)):
            raise ObservabilityError(
                f"sink {sink!r} has no handle(event) method")
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, event_type: str, *, flow: str = "", node: str = "",
             tool_type: str = "", invocation_id: str = "",
             machine: str = "", duration: float = 0.0,
             payload: dict[str, Any] | None = None) -> Event | None:
        """Build and dispatch one event (no-op without sinks)."""
        if not self._sinks:
            return None
        if event_type not in EVENT_TYPES:
            raise ObservabilityError(
                f"unknown event type {event_type!r}")
        with self._lock:
            event = Event(
                seq=next(self._seq),
                event_type=event_type,
                timestamp=self.clock(),
                flow=flow,
                node=node,
                tool_type=tool_type,
                invocation_id=invocation_id,
                machine=machine,
                duration=duration,
                payload=tuple(sorted((payload or {}).items())),
            )
            for sink in self._sinks:
                sink.handle(event)
        return event

    def close(self) -> None:
        """Close every sink that supports closing."""
        with self._lock:
            for sink in self._sinks:
                close = getattr(sink, "close", None)
                if callable(close):
                    close()


#: Shared do-nothing bus handed to uninstrumented executors.  It never
#: has sinks subscribed (instrumented callers build their own bus), so
#: every ``emit`` through it is a cheap early return.
NO_OP_BUS = EventBus()
