"""Observability for flow execution: events, spans, metrics, sinks.

Zero-dependency instrumentation layered over the execution stack: a
typed :class:`EventBus` carrying structured execution events, a
:class:`Tracer` producing hierarchical spans with critical-path
analysis and Chrome-trace export, pluggable sinks (in-memory ring
buffer, schema-versioned JSONL log), and a :class:`MetricsRegistry`
aggregating counters and timer histograms per tool type and per flow.
Everything an executor emits can be persisted, replayed and summarized
— ``repro events``, ``repro stats`` and ``repro trace`` are thin
shells over this module.
"""

from .events import (CACHE_HIT, CACHE_MISS, COMPOSE_TOOL, COMPOSITION_RUN,
                     EVENT_TYPES, EXECUTION_FAILED, FLOW_FINISHED,
                     FLOW_STARTED, INSTANCE_CREATED, LANE_ASSIGNED,
                     NODE_READY, SCHEMA_VERSION, TOOL_FINISHED,
                     TOOL_INVOKED, Event, EventBus, NO_OP_BUS)
from .metrics import EMPTY_TIMER, MetricsRegistry, TimerStats
from .sinks import (CallbackSink, EventSink, JSONLSink, NullSink,
                    RingBufferSink, iter_jsonl_objects, read_events,
                    replay_events, replay_into)
from .tracing import (CACHE_SPAN, COMPOSE_SPAN, DECOMPOSE_SPAN, NO_OP_TRACER,
                      NULL_SPAN, RUN_SPAN, SPAN_KINDS, TASK_SPAN, TOOL_SPAN,
                      TRACE_SCHEMA_VERSION, WAVE_SPAN, CriticalPathReport,
                      Span, SpanContext, TaskTiming, Tracer, critical_path,
                      export_chrome, read_spans, render_span_tree,
                      spans_of_trace, trace_ids, validate_chrome_trace,
                      validate_spans)

__all__ = [
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_SPAN",
    "COMPOSE_SPAN",
    "COMPOSE_TOOL",
    "COMPOSITION_RUN",
    "CallbackSink",
    "CriticalPathReport",
    "DECOMPOSE_SPAN",
    "EMPTY_TIMER",
    "EVENT_TYPES",
    "EXECUTION_FAILED",
    "Event",
    "EventBus",
    "EventSink",
    "FLOW_FINISHED",
    "FLOW_STARTED",
    "INSTANCE_CREATED",
    "JSONLSink",
    "LANE_ASSIGNED",
    "MetricsRegistry",
    "NODE_READY",
    "NO_OP_BUS",
    "NO_OP_TRACER",
    "NULL_SPAN",
    "NullSink",
    "RUN_SPAN",
    "RingBufferSink",
    "SCHEMA_VERSION",
    "SPAN_KINDS",
    "Span",
    "SpanContext",
    "TASK_SPAN",
    "TOOL_FINISHED",
    "TOOL_INVOKED",
    "TOOL_SPAN",
    "TRACE_SCHEMA_VERSION",
    "TaskTiming",
    "TimerStats",
    "Tracer",
    "WAVE_SPAN",
    "critical_path",
    "export_chrome",
    "iter_jsonl_objects",
    "read_events",
    "read_spans",
    "render_span_tree",
    "replay_events",
    "replay_into",
    "spans_of_trace",
    "trace_ids",
    "validate_chrome_trace",
    "validate_spans",
]
