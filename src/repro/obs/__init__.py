"""Observability for flow execution: events, metrics, sinks.

Zero-dependency instrumentation layered over the execution stack: a
typed :class:`EventBus` carrying structured execution events, pluggable
sinks (in-memory ring buffer, schema-versioned JSONL log), and a
:class:`MetricsRegistry` aggregating counters and timer histograms per
tool type and per flow.  Everything an executor emits can be persisted,
replayed and summarized — ``repro events`` and ``repro stats`` are thin
shells over this module.
"""

from .events import (CACHE_HIT, CACHE_MISS, COMPOSE_TOOL, COMPOSITION_RUN,
                     EVENT_TYPES, EXECUTION_FAILED, FLOW_FINISHED,
                     FLOW_STARTED, INSTANCE_CREATED, LANE_ASSIGNED,
                     NODE_READY, SCHEMA_VERSION, TOOL_FINISHED,
                     TOOL_INVOKED, Event, EventBus, NO_OP_BUS)
from .metrics import EMPTY_TIMER, MetricsRegistry, TimerStats
from .sinks import (CallbackSink, EventSink, JSONLSink, NullSink,
                    RingBufferSink, read_events, replay_events,
                    replay_into)

__all__ = [
    "CACHE_HIT",
    "CACHE_MISS",
    "COMPOSE_TOOL",
    "COMPOSITION_RUN",
    "CallbackSink",
    "EMPTY_TIMER",
    "EVENT_TYPES",
    "EXECUTION_FAILED",
    "Event",
    "EventBus",
    "EventSink",
    "FLOW_FINISHED",
    "FLOW_STARTED",
    "INSTANCE_CREATED",
    "JSONLSink",
    "LANE_ASSIGNED",
    "MetricsRegistry",
    "NODE_READY",
    "NO_OP_BUS",
    "NullSink",
    "RingBufferSink",
    "SCHEMA_VERSION",
    "TOOL_FINISHED",
    "TOOL_INVOKED",
    "TimerStats",
    "read_events",
    "replay_events",
    "replay_into",
]
