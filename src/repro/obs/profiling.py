"""Continuous profiling: sampled stacks, memory peaks, query timing.

Where the tracer answers *when* a tool ran, this module answers *where
the time went inside it*.  Three cooperating pieces:

* :class:`SamplingProfiler` — a background thread sweeps
  ``sys._current_frames()`` on a fixed interval and folds each running
  tool body's stack into collapsed-stack (flamegraph) form, keyed by
  the tool type the executor registered for that thread.  Executors
  wrap every tool body in :meth:`SamplingProfiler.invocation`, which
  also measures wall busy time and (optionally) the ``tracemalloc``
  allocation high-water of the invocation.  Sampling is deterministic
  to test: :meth:`sample_once` does one sweep synchronously and the
  clock is injectable.
* :class:`ProfileAggregate` — the mergeable result.  Worker processes
  profile in-process and ship ``to_dict()`` payloads back on the batch
  reply (procpool folds them across respawns exactly like the phase
  samples); the coordinator absorbs every payload into one run-wide
  aggregate.  Per-tool *self time* is ``min(samples x interval,
  measured busy)`` — and the procpool coordinator additionally clamps
  busy time to the fitted worker-side tool-body phase durations — so
  self time can never exceed the tool-span durations the trace
  recorded (the containment property CI checks).
* :class:`QueryRecorder` — per-statement timers for the history
  backends: fingerprinted counts/totals plus a threshold-gated JSONL
  slow-query log.  The sqlite backend routes every statement through
  it when attached; the JSON backend times its scan paths.

Memory tracking is opt-in (``track_memory``): ``tracemalloc`` slows an
allocation-heavy flow ~4x (measured on the Fig. 6 benchmark), which
would swamp the <7% profiling-overhead budget the bench gate enforces,
so ``repro run --profile`` keeps it off unless ``--profile-memory`` is
also given.

``repro run --profile`` wires all three up and appends one
``profile.v1`` record per run to the environment's ``profiles.jsonl``;
``repro profile show|flamegraph|queries|export`` reads them back.
"""

from __future__ import annotations

import hashlib
import pathlib
import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from types import FrameType
from typing import Any, Callable, Iterator, Mapping

from ..errors import ObservabilityError
from .ledger import render_json
from .sinks import iter_jsonl_objects

#: Default wall-clock spacing between stack sweeps (5 ms).
DEFAULT_PROFILE_INTERVAL = 0.005

#: Statements at or above this duration land in the slow-query log.
DEFAULT_SLOW_QUERY_THRESHOLD = 0.010

#: Stack frames beyond this depth fold into a leading "..." frame.
MAX_STACK_DEPTH = 60

#: Schema tag stamped into every ``profiles.jsonl`` record.
PROFILE_SCHEMA_VERSION = "profile.v1"

#: Synthetic frame for tools invoked but never caught by the sampler:
#: a flamegraph still shows every tool type that ran, weighted by its
#: invocation count, even when each call finished inside one interval.
UNSAMPLED_FRAME = "(faster-than-interval)"


def statement_fingerprint(statement: str) -> str:
    """Stable 12-hex-digit id of a whitespace-normalized statement."""
    normalized = " ".join(statement.split())
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()
    return digest[:12]


def _frame_label(frame: FrameType) -> str:
    """``module:function``, kept free of the collapsed-format
    separators (semicolons and spaces)."""
    code = frame.f_code
    stem = pathlib.PurePath(code.co_filename).stem or "?"
    label = f"{stem}:{code.co_name}"
    return label.replace(";", "_").replace(" ", "_")


def collapse_frames(frame: FrameType | None) -> str:
    """Render a frame chain as one collapsed-stack path, root first."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    truncated = frame is not None
    labels.reverse()
    if truncated:
        labels.insert(0, "...")
    return ";".join(labels)


@dataclass(frozen=True)
class ProfileSample:
    """One aggregated stack observation of a running tool body."""

    tool_type: str
    stack: str
    count: int

    def render(self) -> str:
        return f"{self.tool_type};{self.stack} {self.count}"


class ProfileAggregate:
    """Merged profile of one run: stacks, busy time, memory peaks.

    Not thread-safe by itself — :class:`SamplingProfiler` guards every
    mutation with its own lock; worker payloads are absorbed on the
    coordinator thread after the lanes join.
    """

    def __init__(self,
                 interval: float = DEFAULT_PROFILE_INTERVAL) -> None:
        self.interval = interval
        self.samples = 0
        self._stacks: dict[str, dict[str, int]] = {}
        self._busy: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._samples: dict[str, int] = {}
        self._mem_peak: dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def add_stack(self, tool_type: str, stack: str,
                  count: int = 1) -> None:
        folded = self._stacks.setdefault(tool_type, {})
        folded[stack] = folded.get(stack, 0) + count
        self._samples[tool_type] = \
            self._samples.get(tool_type, 0) + count
        self.samples += count

    def add_invocation(self, tool_type: str, busy: float,
                       mem_peak: int = 0) -> None:
        """One completed tool body: measured wall time + alloc peak."""
        self._busy[tool_type] = self._busy.get(tool_type, 0.0) + busy
        self._calls[tool_type] = self._calls.get(tool_type, 0) + 1
        if mem_peak > self._mem_peak.get(tool_type, 0):
            self._mem_peak[tool_type] = mem_peak

    def absorb(self, payload: Mapping[str, Any]) -> None:
        """Fold a ``to_dict()`` payload (worker reply, respawn base).

        Per-tool sample counts are re-derived from the stacks so a
        payload is never double-counted; busy/calls sum, peaks max.
        """
        if not self.interval:
            self.interval = float(payload.get("interval", 0.0))
        for tool_type, folded in payload.get("stacks", {}).items():
            for stack, count in folded.items():
                self.add_stack(tool_type, stack, int(count))
        for tool_type, stats in payload.get("tools", {}).items():
            busy = float(stats.get("busy_s", 0.0))
            calls = int(stats.get("calls", 0))
            peak = int(stats.get("mem_peak", 0))
            if busy:
                self._busy[tool_type] = \
                    self._busy.get(tool_type, 0.0) + busy
            if calls:
                self._calls[tool_type] = \
                    self._calls.get(tool_type, 0) + calls
            if peak > self._mem_peak.get(tool_type, 0):
                self._mem_peak[tool_type] = peak

    def clamp_to(self, caps: Mapping[str, float]) -> None:
        """Cap per-tool busy time (containment vs. traced spans).

        The procpool coordinator calls this with the summed *fitted*
        worker-side tool-body phase durations: worker clocks are
        skew-corrected and clamped into the observed dispatch window,
        so capping busy time to them guarantees self time stays inside
        the merged tool spans.
        """
        for tool_type, cap in caps.items():
            if tool_type in self._busy or tool_type in self._samples:
                self._busy[tool_type] = min(
                    self._busy.get(tool_type, cap), cap)

    # -- reading -------------------------------------------------------
    def tool_types(self) -> tuple[str, ...]:
        seen = set(self._stacks) | set(self._busy) | set(self._calls)
        return tuple(sorted(seen))

    def busy_time(self, tool_type: str) -> float:
        return self._busy.get(tool_type, 0.0)

    def sample_count(self, tool_type: str) -> int:
        return self._samples.get(tool_type, 0)

    def self_time(self, tool_type: str) -> float:
        """``min(samples x interval, measured busy)`` — the sampled
        estimate, bounded by the measured invocation time so it can
        never exceed what the trace recorded for the tool."""
        sampled = self._samples.get(tool_type, 0) * self.interval
        if tool_type in self._busy:
            return min(sampled, self._busy[tool_type])
        return sampled

    def samples_seen(self) -> tuple[ProfileSample, ...]:
        return tuple(
            ProfileSample(tool_type, stack, count)
            for tool_type in sorted(self._stacks)
            for stack, count in sorted(
                self._stacks[tool_type].items()))

    def collapsed(self) -> str:
        """Flamegraph collapsed-stack lines, tool type as root frame.

        Tools that ran but were never swept (every call finished
        between samples) still appear, under a synthetic
        ``(faster-than-interval)`` frame weighted by call count, so
        coverage checks see every tool type that executed.
        """
        lines: list[str] = []
        for tool_type in self.tool_types():
            folded = self._stacks.get(tool_type, {})
            for stack, count in sorted(folded.items()):
                lines.append(f"{tool_type};{stack} {count}")
            if not folded and self._calls.get(tool_type, 0):
                lines.append(f"{tool_type};{UNSAMPLED_FRAME} "
                             f"{self._calls[tool_type]}")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        tools: dict[str, dict[str, Any]] = {}
        for tool_type in self.tool_types():
            tools[tool_type] = {
                "busy_s": self._busy.get(tool_type, 0.0),
                "calls": self._calls.get(tool_type, 0),
                "samples": self._samples.get(tool_type, 0),
                "mem_peak": self._mem_peak.get(tool_type, 0),
            }
        return {
            "interval": self.interval,
            "samples": self.samples,
            "stacks": {tool_type: dict(folded)
                       for tool_type, folded
                       in sorted(self._stacks.items())},
            "tools": tools,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]
                  ) -> "ProfileAggregate":
        aggregate = cls(float(
            payload.get("interval", DEFAULT_PROFILE_INTERVAL)))
        aggregate.absorb(payload)
        return aggregate

    def summary(self) -> dict[str, Any]:
        """The compact per-tool table the run ledger records."""
        tools: dict[str, dict[str, Any]] = {}
        for tool_type in self.tool_types():
            tools[tool_type] = {
                "self_s": round(self.self_time(tool_type), 6),
                "busy_s": round(self._busy.get(tool_type, 0.0), 6),
                "calls": self._calls.get(tool_type, 0),
                "samples": self._samples.get(tool_type, 0),
                "mem_peak_kb":
                    (self._mem_peak.get(tool_type, 0) + 1023) // 1024,
            }
        return {
            "interval_ms": round(self.interval * 1e3, 3),
            "samples": self.samples,
            "tools": tools,
        }


def merge_profiles(*payloads: Mapping[str, Any] | None
                   ) -> dict[str, Any]:
    """Fold any number of ``to_dict()`` payloads into one ({} if all
    empty) — how procpool folds a respawned worker's profile into the
    base its dead incarnation left behind."""
    merged = ProfileAggregate(0.0)
    for payload in payloads:
        if payload:
            merged.absorb(payload)
    if not merged.tool_types() and not merged.samples:
        return {}
    if not merged.interval:
        merged.interval = DEFAULT_PROFILE_INTERVAL
    return merged.to_dict()


class SamplingProfiler:
    """Deterministic sampling profiler keyed by running tool type.

    Executors register the executing thread around every tool body via
    :meth:`invocation` (or the :meth:`run` shorthand); only registered
    threads are swept, so framework time never pollutes the profile.
    ``start()`` spawns the daemon sampler thread; tests instead call
    :meth:`sample_once` with scripted thread states and a scripted
    clock.
    """

    def __init__(self, interval: float = DEFAULT_PROFILE_INTERVAL, *,
                 clock: Callable[[], float] = time.perf_counter,
                 track_memory: bool = False) -> None:
        if interval <= 0:
            raise ObservabilityError(
                f"profiling interval must be > 0, got {interval}")
        self.interval = interval
        self.clock = clock
        self.track_memory = track_memory
        self.aggregate = ProfileAggregate(interval)
        self.query_recorder: QueryRecorder | None = None
        self._lock = threading.Lock()
        self._active: dict[int, str] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_tracemalloc = False

    # -- invocation bracketing -----------------------------------------
    @contextmanager
    def invocation(self, tool_type: str) -> Iterator[None]:
        """Register the calling thread as running ``tool_type``."""
        ident = threading.get_ident()
        with self._lock:
            self._active[ident] = tool_type
        tracing = self.track_memory and tracemalloc.is_tracing()
        if tracing:
            tracemalloc.reset_peak()
        begun = self.clock()
        try:
            yield
        finally:
            busy = self.clock() - begun
            peak = (tracemalloc.get_traced_memory()[1]
                    if tracing else 0)
            with self._lock:
                self._active.pop(ident, None)
                self.aggregate.add_invocation(tool_type, busy, peak)

    def run(self, tool_type: str, fn: Callable[[], Any]) -> Any:
        with self.invocation(tool_type):
            return fn()

    # -- sampling ------------------------------------------------------
    def sample_once(self) -> int:
        """One synchronous sweep; returns the stacks taken."""
        with self._lock:
            active = dict(self._active)
        if not active:
            return 0
        frames = sys._current_frames()
        collected = [(tool_type, collapse_frames(frames.get(ident)))
                     for ident, tool_type in active.items()
                     if frames.get(ident) is not None]
        del frames
        with self._lock:
            for tool_type, stack in collected:
                self.aggregate.add_stack(tool_type, stack)
        return len(collected)

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.track_memory and not tracemalloc.is_tracing():
            # nframe=1 is the cheapest tracemalloc mode; still ~4x on
            # allocation-heavy tools, hence the opt-in flag
            tracemalloc.start(1)
            self._started_tracemalloc = True
        self._stop.clear()
        thread = threading.Thread(target=self._sample_loop,
                                  name="repro-profiler", daemon=True)
        self._thread = thread
        thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=2.0)
            self._thread = None
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- merging / reading ---------------------------------------------
    def absorb(self, payload: Mapping[str, Any]) -> None:
        with self._lock:
            self.aggregate.absorb(payload)

    def clamp_to(self, caps: Mapping[str, float]) -> None:
        with self._lock:
            self.aggregate.clamp_to(caps)

    def payload(self) -> dict[str, Any]:
        with self._lock:
            return self.aggregate.to_dict()

    def collapsed(self) -> str:
        with self._lock:
            return self.aggregate.collapsed()

    def summary(self) -> dict[str, Any]:
        with self._lock:
            summary = self.aggregate.summary()
        if self.query_recorder is not None:
            query = self.query_recorder.summary()
            if query:
                summary["query"] = query
        return summary


class QueryRecorder:
    """Thread-safe per-statement query timers with a slow-query log.

    Every recorded statement is keyed by its fingerprint; statements
    at or above ``slow_threshold`` seconds are additionally appended
    to ``slow_log`` as one JSON object per line (fingerprint, the
    normalized statement, duration, row count).  Log-file errors are
    swallowed like the ledger's: observability must never break the
    flow being observed.
    """

    def __init__(self, *,
                 slow_threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
                 slow_log: str | pathlib.Path | None = None,
                 backend: str = "",
                 clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.slow_threshold = slow_threshold
        self.slow_log = (pathlib.Path(slow_log)
                         if slow_log is not None else None)
        self.backend = backend
        self.clock = clock
        self._lock = threading.Lock()
        self._statements: dict[str, dict[str, Any]] = {}
        self._slow = 0

    def record(self, statement: str, seconds: float,
               rows: int = 0) -> None:
        fingerprint = statement_fingerprint(statement)
        with self._lock:
            entry = self._statements.get(fingerprint)
            if entry is None:
                entry = {"statement": " ".join(statement.split()),
                         "count": 0, "total_s": 0.0, "max_s": 0.0,
                         "rows": 0}
                self._statements[fingerprint] = entry
            entry["count"] += 1
            entry["total_s"] += seconds
            entry["max_s"] = max(entry["max_s"], seconds)
            entry["rows"] += rows
            slow = seconds >= self.slow_threshold
            if slow:
                self._slow += 1
        if slow and self.slow_log is not None:
            self._append_slow(fingerprint, statement, seconds, rows)

    @contextmanager
    def timed(self, statement: str) -> Iterator[list[int]]:
        """Time a block; mutate the yielded ``[rows]`` cell to report
        the row count the block produced."""
        cell = [0]
        begun = self.clock()
        try:
            yield cell
        finally:
            self.record(statement, self.clock() - begun, cell[0])

    def _append_slow(self, fingerprint: str, statement: str,
                     seconds: float, rows: int) -> None:
        line = render_json({
            "ts": time.time(),
            "backend": self.backend,
            "fingerprint": fingerprint,
            "statement": " ".join(statement.split()),
            "seconds": round(seconds, 6),
            "rows": rows,
        })
        try:
            self.slow_log.parent.mkdir(parents=True, exist_ok=True)
            with open(self.slow_log, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            return {fingerprint: dict(entry)
                    for fingerprint, entry
                    in self._statements.items()}

    def summary(self) -> dict[str, Any]:
        """Roll-up for the ledger ({} when nothing was recorded)."""
        with self._lock:
            if not self._statements:
                return {}
            count = sum(e["count"]
                        for e in self._statements.values())
            total = sum(e["total_s"]
                        for e in self._statements.values())
            worst = max(e["max_s"]
                        for e in self._statements.values())
            return {
                "backend": self.backend,
                "statements": len(self._statements),
                "count": count,
                "total_s": round(total, 6),
                "max_s": round(worst, 6),
                "slow": self._slow,
            }


# ---------------------------------------------------------------------------
# the profiles.jsonl log
# ---------------------------------------------------------------------------
def profile_record(aggregate: ProfileAggregate, *, run_id: str = "",
                   trace_id: str = "", flow: str = "",
                   executor: str = "",
                   query: Mapping[str, Any] | None = None,
                   timestamp: float | None = None) -> dict[str, Any]:
    """One ``profile.v1`` record: the aggregate payload plus the run
    identity it belongs to (join keys into ledger and trace)."""
    record: dict[str, Any] = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "run_id": run_id,
        "trace_id": trace_id,
        "flow": flow,
        "executor": executor,
        "recorded_at": (timestamp if timestamp is not None
                        else time.time()),
    }
    record.update(aggregate.to_dict())
    if query:
        record["query"] = dict(query)
    return record


def append_profile(path: str | pathlib.Path,
                   record: Mapping[str, Any]) -> None:
    """Append one profile record to a JSONL log (canonical form)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(render_json(dict(record)) + "\n")


def read_profiles(path: str | pathlib.Path
                  ) -> tuple[dict[str, Any], ...]:
    """All profile records in the log, oldest first (lenient: a
    truncated trailing line is tolerated, like every other log)."""
    target = pathlib.Path(path)
    if not target.exists():
        return ()
    return tuple(spec for _, spec in iter_jsonl_objects(target,
                                                        strict=False)
                 if isinstance(spec, dict))


def find_profile(records: "tuple[dict[str, Any], ...]",
                 run_id: str | None = None) -> dict[str, Any]:
    """The latest record, or the one matching a run-id prefix."""
    if not records:
        raise ObservabilityError("no profiles recorded")
    if not run_id:
        return records[-1]
    matches = [record for record in records
               if str(record.get("run_id", "")).startswith(run_id)]
    if not matches:
        raise ObservabilityError(
            f"no profile recorded for run {run_id!r}")
    if len({record.get("run_id") for record in matches}) > 1:
        raise ObservabilityError(
            f"run id prefix {run_id!r} is ambiguous")
    return matches[-1]


def render_profile(record: Mapping[str, Any]) -> str:
    """Human-readable summary of one profile record."""
    aggregate = ProfileAggregate.from_dict(record)
    header = f"profile of run {record.get('run_id') or '?'}"
    flow = record.get("flow", "")
    executor = record.get("executor", "")
    if flow or executor:
        parts = [p for p in (f"flow {flow}" if flow else "",
                             f"{executor} executor"
                             if executor else "") if p]
        header += f" ({', '.join(parts)})"
    header += (f": {aggregate.samples} samples "
               f"@{aggregate.interval * 1e3:.1f}ms")
    lines = [header]
    for tool_type in aggregate.tool_types():
        stats = aggregate.to_dict()["tools"][tool_type]
        line = (f"  {tool_type}: self "
                f"{aggregate.self_time(tool_type) * 1e3:.2f}ms, busy "
                f"{stats['busy_s'] * 1e3:.2f}ms, "
                f"{stats['calls']} call(s), "
                f"{stats['samples']} sample(s)")
        if stats["mem_peak"]:
            line += f", peak {(stats['mem_peak'] + 1023) // 1024}kB"
        lines.append(line)
    query = record.get("query") or {}
    if query:
        lines.append(
            f"  queries ({query.get('backend') or '?'}): "
            f"{query.get('statements', 0)} statement(s), "
            f"{query.get('count', 0)} execution(s), total "
            f"{query.get('total_s', 0.0) * 1e3:.2f}ms, max "
            f"{query.get('max_s', 0.0) * 1e3:.2f}ms, "
            f"{query.get('slow', 0)} slow")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_PROFILE_INTERVAL",
    "DEFAULT_SLOW_QUERY_THRESHOLD",
    "MAX_STACK_DEPTH",
    "PROFILE_SCHEMA_VERSION",
    "ProfileAggregate",
    "ProfileSample",
    "QueryRecorder",
    "SamplingProfiler",
    "UNSAMPLED_FRAME",
    "append_profile",
    "collapse_frames",
    "find_profile",
    "merge_profiles",
    "profile_record",
    "read_profiles",
    "render_profile",
    "statement_fingerprint",
]
