"""Hierarchical span tracing with critical-path analysis.

The event layer records *that* execution happened (PR 1); spans record
*where the wall-clock went*.  A :class:`Tracer` produces a tree of
:class:`Span` records per executed run — ``run`` at the root, one
``wave`` per parallel branch or scheduler lane, one ``task`` per
coalesced invocation, and ``tool`` / ``compose`` / ``cache_lookup`` /
``decompose`` leaves — each carrying the trace/span identifiers that are
also stamped into the history records produced under it.  Provenance
queries answer "what produced this"; traces answer "what it cost"; the
shared ids make the two cross-queryable.

Span propagation is thread-safe by being *explicit*: the ambient span
context is thread-local, and a worker thread never inherits the
spawning thread's context implicitly — coordinators capture a
:class:`SpanContext` and adopt it in the worker via
:meth:`Tracer.activate`.  Finished spans flush through the existing sink
layer (anything with ``handle(record)``; :class:`~repro.obs.sinks.JSONLSink`
persists them as JSON lines), and :func:`read_spans` loads them back.

On top of the span tree this module implements :func:`critical_path`
(longest cost-weighted dependency chain over the executed task graph,
per-task slack, parallelism-efficiency ratio) and :func:`export_chrome`
(Chrome trace-event JSON that loads directly in Perfetto), both exposed
through the ``repro trace`` CLI.
"""

from __future__ import annotations

import itertools
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ObservabilityError
from .sinks import iter_jsonl_objects

TRACE_SCHEMA_VERSION = "trace.v1"

# ---------------------------------------------------------------------------
# span kinds (the taxonomy: run -> wave -> task -> leaf work)
# ---------------------------------------------------------------------------
RUN_SPAN = "run"
WAVE_SPAN = "wave"
TASK_SPAN = "task"
TOOL_SPAN = "tool"
COMPOSE_SPAN = "compose"
CACHE_SPAN = "cache_lookup"
DECOMPOSE_SPAN = "decompose"
#: In-worker phase of one tool/compose execution (envelope decode,
#: fingerprint verify, tool body, result encode) — emitted by the
#: procpool coordinator from worker-reported, skew-corrected samples.
PHASE_SPAN = "phase"

SPAN_KINDS = frozenset({
    RUN_SPAN,
    WAVE_SPAN,
    TASK_SPAN,
    TOOL_SPAN,
    COMPOSE_SPAN,
    CACHE_SPAN,
    DECOMPOSE_SPAN,
    PHASE_SPAN,
})


@dataclass(frozen=True)
class SpanContext:
    """The capturable identity of a live span (for propagation)."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed region of flow execution.

    ``start``/``end`` come from the tracer's clock (monotonic by
    default); ``attributes`` carry the structured joins — entity types,
    instance ids, cache policy/outcome, scheduler wave, queue wait.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    start: float
    end: float = 0.0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)
    schema_version: str = TRACE_SCHEMA_VERSION

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attributes: Any) -> "Span":
        """Merge structured attributes into the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def value(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "Span":
        version = spec.get("schema_version", TRACE_SCHEMA_VERSION)
        if version.partition(".")[0] != \
                TRACE_SCHEMA_VERSION.partition(".")[0]:
            raise ObservabilityError(
                f"unsupported trace schema version {version!r} "
                f"(this build reads {TRACE_SCHEMA_VERSION!r})")
        return cls(
            trace_id=spec["trace_id"],
            span_id=spec["span_id"],
            parent_id=spec.get("parent_id"),
            name=spec.get("name", ""),
            kind=spec.get("kind", TASK_SPAN),
            start=float(spec.get("start", 0.0)),
            end=float(spec.get("end", 0.0)),
            status=spec.get("status", "ok"),
            attributes=dict(spec.get("attributes", {})),
            schema_version=version,
        )

    def render(self) -> str:
        """One human-readable line (the ``repro trace show`` format)."""
        parts = [f"{self.kind}:{self.name}"
                 if not self.name.startswith(self.kind) else self.name,
                 f"{self.duration * 1e3:.2f}ms"]
        if self.status != "ok":
            parts.append(f"[{self.status}]")
        for key in ("machine", "tool_type", "cache", "wave"):
            item = self.attributes.get(key)
            if item not in (None, ""):
                parts.append(f"{key}={item}")
        queue_wait = self.attributes.get("queue_wait")
        if queue_wait:
            parts.append(f"wait={float(queue_wait) * 1e3:.2f}ms")
        return " ".join(parts)


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer.

    Its ``context`` is ``None``, so downstream consumers (history
    stamping, child spans) naturally skip trace linkage.
    """

    __slots__ = ()

    context: SpanContext | None = None
    duration: float = 0.0
    status: str = "ok"

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def value(self, key: str, default: Any = None) -> Any:
        return default


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds hierarchical spans and flushes finished ones to sinks.

    Mirrors the :class:`~repro.obs.events.EventBus` contract: with no
    sinks subscribed every :meth:`span` call yields the shared
    :data:`NULL_SPAN` and costs one truth test, so untraced execution
    stays on the fast path.  The ambient context stack is thread-local;
    cross-thread propagation is explicit via :meth:`activate`.
    """

    def __init__(self, *,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.last_trace_id: str | None = None
        self._sinks: list[Any] = []
        self._lock = threading.Lock()
        self._span_seq: "itertools.count[int]" = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # sink management (same shape as EventBus)
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when at least one sink will observe finished spans."""
        return bool(self._sinks)

    def subscribe(self, sink: Any) -> Any:
        """Attach a span sink (anything with ``handle(span)``)."""
        if not callable(getattr(sink, "handle", None)):
            raise ObservabilityError(
                f"sink {sink!r} has no handle(span) method")
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def close(self) -> None:
        """Close every sink that supports closing."""
        with self._lock:
            for sink in self._sinks:
                close = getattr(sink, "close", None)
                if callable(close):
                    close()

    # ------------------------------------------------------------------
    # ambient context (thread-local; propagated explicitly)
    # ------------------------------------------------------------------
    def _stack(self) -> list[SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> SpanContext | None:
        """The innermost active span context of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def activate(self, context: SpanContext | None) -> Iterator[None]:
        """Adopt a captured span context in the current thread.

        Worker threads never see the coordinator's ambient context; the
        coordinator captures ``span.context`` and activates it inside
        the worker so child spans attach to the right parent.  A
        ``None`` context (disabled tracer) is a no-op.
        """
        if context is None:
            yield
            return
        stack = self._stack()
        stack.append(context)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # span construction
    # ------------------------------------------------------------------
    def start_span(self, name: str, kind: str, *,
                   parent: SpanContext | None = None,
                   attributes: dict[str, Any] | None = None,
                   start: float | None = None) -> Span:
        """Open a span; without an explicit or ambient parent it roots
        a fresh trace.

        ``start`` overrides the clock — used when the span describes
        work that already happened somewhere else (a worker process)
        and its observed timestamps are being merged in after the fact.
        """
        if kind not in SPAN_KINDS:
            raise ObservabilityError(f"unknown span kind {kind!r}")
        if parent is None:
            parent = self.current()
        if parent is None:
            trace_id = uuid.uuid4().hex[:16]
            parent_id = None
            self.last_trace_id = trace_id
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            trace_id=trace_id,
            span_id=f"s{next(self._span_seq):06d}",
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=self.clock() if start is None else start,
            attributes=dict(attributes or {}),
        )

    def finish(self, span: Span, *, end: float | None = None) -> Span:
        """Stamp the end time and flush the span to every sink.

        ``end`` overrides the clock for retroactively merged spans
        (see :meth:`start_span`); it is clamped so the span never ends
        before it starts.
        """
        span.end = self.clock() if end is None else max(span.start, end)
        with self._lock:
            for sink in self._sinks:
                sink.handle(span)
        return span

    @contextmanager
    def span(self, name: str, kind: str, *,
             parent: SpanContext | None = None,
             attributes: dict[str, Any] | None = None
             ) -> Iterator["Span | _NullSpan"]:
        """Context manager: open, make ambient, finish and flush.

        An exception escaping the block marks the span
        ``error:<ExceptionType>`` before flushing, then propagates.
        """
        if not self._sinks:
            yield NULL_SPAN
            return
        span = self.start_span(name, kind, parent=parent,
                               attributes=attributes)
        stack = self._stack()
        stack.append(span.context)
        try:
            yield span
        except BaseException as error:
            span.status = f"error:{type(error).__name__}"
            raise
        finally:
            stack.pop()
            self.finish(span)


#: Shared do-nothing tracer handed to untraced executors.  It never has
#: sinks subscribed (traced callers build their own tracer), so every
#: ``span()`` through it yields :data:`NULL_SPAN` immediately.
NO_OP_TRACER = Tracer()


# ---------------------------------------------------------------------------
# persistence and validation
# ---------------------------------------------------------------------------
def read_spans(path: "str | pathlib.Path", *,
               strict: bool = True) -> tuple[Span, ...]:
    """Load spans back out of a JSONL trace file, in flush order.

    With ``strict=False`` a truncated/corrupt *trailing* line (a run
    killed mid-write) is tolerated; corruption followed by valid lines
    still raises.
    """
    return tuple(Span.from_dict(spec) for _, spec
                 in iter_jsonl_objects(path, strict=strict))


def trace_ids(spans: Iterable[Span]) -> tuple[str, ...]:
    """Distinct trace ids in first-appearance order."""
    seen: dict[str, None] = {}
    for span in spans:
        seen.setdefault(span.trace_id, None)
    return tuple(seen)


def spans_of_trace(spans: Sequence[Span],
                   trace_id: str | None = None) -> tuple[Span, ...]:
    """Select one trace's spans; defaults to the latest recorded trace
    (the trace of the last root span, since a file may append many runs).
    """
    if trace_id is None:
        for span in reversed(spans):
            if span.parent_id is None:
                trace_id = span.trace_id
                break
        else:
            if not spans:
                return ()
            trace_id = spans[-1].trace_id
    selected = tuple(s for s in spans if s.trace_id == trace_id)
    if not selected:
        raise ObservabilityError(
            f"no spans for trace {trace_id!r} "
            f"(recorded traces: {list(trace_ids(spans))})")
    return selected


def validate_spans(spans: Sequence[Span]) -> list[str]:
    """Structural problems of a span set: duplicate ids, dangling
    parents, multiple roots per trace, bad intervals, unknown kinds."""
    problems: list[str] = []
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace, members in sorted(by_trace.items()):
        ids: set[str] = set()
        for span in members:
            if span.span_id in ids:
                problems.append(
                    f"{trace}: duplicate span id {span.span_id}")
            ids.add(span.span_id)
        roots = [s for s in members if s.parent_id is None]
        if len(roots) != 1:
            problems.append(
                f"{trace}: expected exactly one root span, found "
                f"{len(roots)}")
        for span in members:
            if span.parent_id is not None and span.parent_id not in ids:
                problems.append(
                    f"{trace}: span {span.span_id} has unknown parent "
                    f"{span.parent_id}")
            if span.end < span.start:
                problems.append(
                    f"{trace}: span {span.span_id} ends before it "
                    "starts")
            if span.kind not in SPAN_KINDS:
                problems.append(
                    f"{trace}: span {span.span_id} has unknown kind "
                    f"{span.kind!r}")
    return problems


def render_span_tree(spans: Sequence[Span],
                     trace_id: str | None = None) -> str:
    """Indented tree of one trace (the ``repro trace show`` output)."""
    selected = spans_of_trace(spans, trace_id)
    if not selected:
        return "no spans recorded"
    children: dict[str | None, list[Span]] = {}
    ids = {s.span_id for s in selected}
    for span in selected:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    lines = [f"trace {selected[0].trace_id}: {len(selected)} spans"]

    def walk(parent: str | None, depth: int) -> None:
        for span in children.get(parent, ()):  # pre-order, by start
            lines.append("  " * depth + f"{span.render()}"
                         f"  ({span.span_id})")
            walk(span.span_id, depth + 1)

    walk(None, 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# worker-lane timeline (the ``repro trace timeline`` output)
# ---------------------------------------------------------------------------
def _union_length(intervals: Sequence[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly-overlapping intervals."""
    total = 0.0
    edge = float("-inf")
    for start, end in sorted(intervals):
        start = max(start, edge)
        if end > start:
            total += end - start
            edge = end
    return total


def _lane_sort_key(name: str) -> tuple[str, int]:
    """Natural sort for lane names: worker2 before worker10."""
    digits = ""
    while name and name[-1].isdigit():
        digits = name[-1] + digits
        name = name[:-1]
    return (name, int(digits) if digits else -1)


def timeline_model(spans: Sequence[Span],
                   trace_id: str | None = None) -> dict[str, Any]:
    """The lane/interval model behind the timeline, machine-readable.

    One entry per execution lane (the task spans' ``machine``
    attribute), each carrying its union busy/wait seconds and its task
    intervals **relative to the run base** (the earliest enqueue or the
    run span's start).  ``repro trace timeline --json`` emits this
    verbatim; :func:`render_timeline` paints it.
    """
    selected = spans_of_trace(spans, trace_id)
    if not selected:
        raise ObservabilityError(
            "no spans recorded"
            + (f" for trace {trace_id}" if trace_id else ""))
    tasks = [s for s in selected if s.kind == TASK_SPAN]
    run = next((s for s in selected if s.kind == RUN_SPAN), None)
    flow = (run.value("flow", "") if run is not None
            else tasks[0].value("flow", "") if tasks else "")
    model: dict[str, Any] = {"trace_id": selected[0].trace_id,
                             "flow": flow, "wall": 0.0, "lanes": []}
    if not tasks:
        return model
    starts = [s.start - float(s.value("queue_wait", 0.0) or 0.0)
              for s in tasks]
    base = min(starts + ([run.start] if run is not None else []))
    finish = max([s.end for s in tasks]
                 + ([run.end] if run is not None
                    and run.end > run.start else []))
    model["wall"] = max(finish - base, 1e-9)
    lanes: dict[str, list[Span]] = {}
    for span in tasks:
        lane = str(span.value("machine") or "?")
        lanes.setdefault(lane, []).append(span)
    for lane in sorted(lanes, key=_lane_sort_key):
        members = sorted(lanes[lane], key=lambda s: (s.start, s.span_id))
        # union, not sum: batched tasks on one lane share a dispatch
        # window and would otherwise double-count
        busy = _union_length([(s.start, s.end) for s in members])
        wait = _union_length(
            [(s.start - float(s.value("queue_wait", 0.0) or 0.0),
              s.start) for s in members
             if float(s.value("queue_wait", 0.0) or 0.0) > 0])
        model["lanes"].append({
            "lane": lane, "busy": busy, "wait": wait,
            "tasks": [{"name": s.name, "span_id": s.span_id,
                       "status": s.status,
                       "start": s.start - base, "end": s.end - base,
                       "queue_wait": float(
                           s.value("queue_wait", 0.0) or 0.0)}
                      for s in members]})
    return model


def render_timeline(spans: Sequence[Span],
                    trace_id: str | None = None, *,
                    width: int = 60) -> str:
    """ASCII Gantt of one trace, one row per execution lane.

    Lanes come from the task spans' ``machine`` attribute, so the
    rendering works for every executor that stamps one — procpool
    worker lanes and thread-scheduler machines alike.  Each row paints
    ``width`` columns of the run's wall interval: ``#`` where the lane
    executed a task, ``~`` where a task sat ready in the queue, ``!``
    where the task errored, ``.`` idle.  Per-lane busy/wait shares come
    from :func:`timeline_model`'s real union intervals, not the
    (quantized) columns.
    """
    if width < 10:
        raise ObservabilityError(
            f"timeline width must be >= 10 columns, got {width}")
    if not spans_of_trace(spans, trace_id):
        return "no spans recorded"
    model = timeline_model(spans, trace_id)
    header = f"timeline for trace {model['trace_id']}"
    if not model["lanes"]:
        return header + ": no task spans to lay out"
    if model["flow"]:
        header += f" (flow {model['flow']})"
    wall = model["wall"]

    def column(moment: float) -> int:
        fraction = moment / wall
        return min(width - 1, max(0, int(fraction * width)))

    task_count = sum(len(lane["tasks"]) for lane in model["lanes"])
    label_width = max(len(lane["lane"]) for lane in model["lanes"])
    lines = [
        header + (f": wall {wall * 1e3:.2f}ms, "
                  f"{len(model['lanes'])} lane(s), "
                  f"{task_count} task(s)"),
        "  legend: '#' executing  '~' queue wait  '!' error  '.' idle",
    ]
    for lane in model["lanes"]:
        row = ["."] * width
        for task in lane["tasks"]:
            if task["queue_wait"] > 0:
                for index in range(
                        column(task["start"] - task["queue_wait"]),
                        column(task["start"])):
                    if row[index] == ".":
                        row[index] = "~"
            mark = "#" if task["status"] == "ok" else "!"
            for index in range(column(task["start"]),
                               column(task["end"]) + 1):
                row[index] = mark
        lines.append(
            f"  {lane['lane']:<{label_width}} |{''.join(row)}| "
            f"busy {lane['busy'] / wall * 100.0:3.0f}% "
            f"wait {lane['wait'] / wall * 100.0:3.0f}% "
            f"({len(lane['tasks'])} task(s))")
    left = "0ms"
    right = f"{wall * 1e3:.2f}ms"
    gap = max(1, width + 2 - len(left) - len(right))
    lines.append(" " * (2 + label_width) + left + " " * gap + right)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# critical-path analysis
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskTiming:
    """One task span's place in the critical-path analysis."""

    span: Span
    slack: float
    on_path: bool


@dataclass
class CriticalPathReport:
    """Longest cost-weighted chain over one trace's executed tasks.

    ``parallelism`` is the efficiency ratio sum-of-span-time /
    wall-time: 1.0 means perfectly serial, N means N-wide overlap.
    """

    trace_id: str
    flow: str
    wall_time: float
    busy_time: float
    critical_length: float
    parallelism: float
    tasks: tuple[TaskTiming, ...]
    path: tuple[Span, ...]

    def render(self) -> str:
        share = (self.critical_length / self.wall_time * 100.0
                 if self.wall_time else 0.0)
        lines = [
            f"critical path for trace {self.trace_id}"
            + (f" (flow {self.flow})" if self.flow else ""),
            f"  wall {self.wall_time * 1e3:.2f}ms  "
            f"busy {self.busy_time * 1e3:.2f}ms  "
            f"parallelism {self.parallelism:.2f}x",
            f"  longest chain: {len(self.path)} tasks, "
            f"{self.critical_length * 1e3:.2f}ms ({share:.0f}% of wall)",
        ]
        for position, span in enumerate(self.path, start=1):
            tool = span.value("tool_type") or "?"
            lines.append(
                f"    {position}. {span.name:<40} tool={tool:<14} "
                f"{span.duration * 1e3:8.2f}ms")
        off_path = sorted((t for t in self.tasks if not t.on_path),
                          key=lambda t: -t.slack)
        if off_path:
            lines.append("  off-path tasks by slack:")
            for timing in off_path:
                tool = timing.span.value("tool_type") or "?"
                lines.append(
                    f"    {timing.span.name:<43} tool={tool:<14} "
                    f"{timing.span.duration * 1e3:8.2f}ms  "
                    f"slack {timing.slack * 1e3:.2f}ms")
        return "\n".join(lines)


def critical_path(spans: Sequence[Span],
                  trace_id: str | None = None) -> CriticalPathReport:
    """Analyze one trace: longest dependency chain, slack, efficiency.

    Dependencies come from the task spans' ``outputs``/``inputs`` node
    ids (the executed task graph); weights are execute durations, so a
    cache-hit task contributes its (near-zero) lookup time and never
    extends the path beyond what it actually cost.
    """
    selected = spans_of_trace(spans, trace_id)
    if not selected:
        raise ObservabilityError("no spans recorded")
    tasks = [s for s in selected if s.kind == TASK_SPAN]
    run = next((s for s in selected if s.kind == RUN_SPAN), None)
    if run is not None and run.duration > 0:
        wall = run.duration
    else:
        wall = (max(s.end for s in selected)
                - min(s.start for s in selected))
    busy = sum(s.duration for s in tasks)
    flow = (run.value("flow", "") if run is not None
            else (tasks[0].value("flow", "") if tasks else ""))

    producer: dict[str, int] = {}
    for index, span in enumerate(tasks):
        for node_id in span.value("outputs", ()) or ():
            producer[node_id] = index
    preds: list[set[int]] = [set() for _ in tasks]
    for index, span in enumerate(tasks):
        for node_id in span.value("inputs", ()) or ():
            supplier = producer.get(node_id)
            if supplier is not None and supplier != index:
                preds[index].add(supplier)
    succs: list[set[int]] = [set() for _ in tasks]
    for index, sources in enumerate(preds):
        for source in sources:
            succs[source].add(index)

    order = _topological(preds)
    up = [0.0] * len(tasks)          # longest chain ending at i
    best_pred: list[int | None] = [None] * len(tasks)
    for index in order:
        best, chosen = 0.0, None
        for source in preds[index]:
            if up[source] > best:
                best, chosen = up[source], source
        up[index] = tasks[index].duration + best
        best_pred[index] = chosen
    down = [0.0] * len(tasks)        # longest chain starting at i
    for index in reversed(order):
        follow = max((down[s] for s in succs[index]), default=0.0)
        down[index] = tasks[index].duration + follow

    critical = max(up, default=0.0)
    path: list[Span] = []
    if tasks:
        cursor: int | None = max(range(len(tasks)),
                                 key=lambda i: (up[i], -tasks[i].start))
        while cursor is not None:
            path.append(tasks[cursor])
            cursor = best_pred[cursor]
        path.reverse()
    on_path = {s.span_id for s in path}
    timings = tuple(
        TaskTiming(span,
                   slack=max(0.0, critical - (up[i] + down[i]
                                              - span.duration)),
                   on_path=span.span_id in on_path)
        for i, span in enumerate(tasks))
    return CriticalPathReport(
        trace_id=selected[0].trace_id,
        flow=flow,
        wall_time=wall,
        busy_time=busy,
        critical_length=critical,
        parallelism=(busy / wall if wall else 1.0),
        tasks=timings,
        path=tuple(path),
    )


def _topological(preds: Sequence[set[int]]) -> list[int]:
    """Kahn's order over predecessor sets (cycles raise)."""
    remaining = [len(p) for p in preds]
    ready = [i for i, count in enumerate(remaining) if count == 0]
    succs: dict[int, list[int]] = {}
    for index, sources in enumerate(preds):
        for source in sources:
            succs.setdefault(source, []).append(index)
    order: list[int] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for successor in succs.get(current, ()):
            remaining[successor] -= 1
            if remaining[successor] == 0:
                ready.append(successor)
    if len(order) != len(preds):
        raise ObservabilityError(
            "task spans form a dependency cycle; trace is inconsistent")
    return order


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ---------------------------------------------------------------------------
def export_chrome(spans: Sequence[Span],
                  trace_id: str | None = None) -> dict[str, Any]:
    """One trace as Chrome trace-event JSON (loads in Perfetto).

    Every span becomes one complete (``ph: "X"``) event; lanes (tids)
    follow the ``machine`` attribute so parallel execution renders as
    side-by-side tracks.
    """
    selected = spans_of_trace(spans, trace_id)
    if not selected:
        raise ObservabilityError("no spans to export")
    base = min(s.start for s in selected)
    by_id = {s.span_id: s for s in selected}
    lane_cache: dict[str, str] = {}

    def lane_of(span: Span) -> str:
        cached = lane_cache.get(span.span_id)
        if cached is not None:
            return cached
        machine = span.value("machine")
        if machine:
            lane = str(machine)
        elif span.parent_id in by_id:
            lane = lane_of(by_id[span.parent_id])
        else:
            lane = "flow"
        lane_cache[span.span_id] = lane
        return lane

    lanes: dict[str, int] = {}
    for span in sorted(selected, key=lambda s: (s.start, s.span_id)):
        lanes.setdefault(lane_of(span), len(lanes))
    events: list[dict[str, Any]] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": f"repro trace {selected[0].trace_id}"},
    }]
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "pid": 1, "tid": tid,
                       "name": "thread_name", "args": {"name": lane}})
    for span in sorted(selected, key=lambda s: (s.start, s.span_id)):
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": round((span.start - base) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 1,
            "tid": lanes[lane_of(span)],
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
                **span.attributes,
            },
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": selected[0].trace_id,
            "schema_version": TRACE_SCHEMA_VERSION,
        },
    }


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Minimal Chrome trace-event schema check (the CI smoke gate).

    Verifies the event list shape, non-negative timestamps/durations on
    complete events, and that any ``B``/``E`` duration events are
    properly matched per (pid, tid).
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_stacks: dict[tuple[Any, Any], list[str]] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{position} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "B", "E", "M", "I", "C"):
            problems.append(
                f"event #{position} has unsupported phase {phase!r}")
            continue
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)) \
                or event["ts"] < 0:
            problems.append(f"event #{position} has invalid ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"event #{position} has invalid dur")
            if not event.get("name"):
                problems.append(f"event #{position} has no name")
        elif phase == "B":
            open_stacks.setdefault(
                (event.get("pid"), event.get("tid")), []).append(
                    str(event.get("name")))
        elif phase == "E":
            stack = open_stacks.get((event.get("pid"), event.get("tid")))
            if not stack:
                problems.append(
                    f"event #{position}: E without matching B")
            else:
                stack.pop()
    for (pid, tid), stack in sorted(open_stacks.items(),
                                    key=lambda kv: str(kv[0])):
        for name in stack:
            problems.append(
                f"unclosed B event {name!r} on pid={pid} tid={tid}")
    return problems
