"""Longitudinal health checks over the run ledger.

The ledger records per-run performance; this module decides whether the
*latest* run is healthy relative to the runs before it.  Per tool type
it maintains a rolling baseline — an EWMA of per-run mean durations for
trend reporting plus a robust center/spread pair (median and MAD) for
gating — and flags a regression when the latest mean drifts more than
``k``·MAD above the median (with relative and absolute floors so
near-deterministic tools and sub-millisecond timers don't flake on
scheduler noise).

On top of the baselines sits a small catalog of *named* health checks,
each returning an ok/warn/fail verdict:

* ``tool-duration-drift`` — per-tool mean duration vs. the baseline;
* ``error-rate`` — the latest run failed while the baseline was clean
  (grouped by failing tool type when the record names one);
* ``tool-quarantine`` — the circuit breaker quarantined a tool type;
* ``cache-hit-rate`` — cache effectiveness collapsed vs. the baseline;
* ``parallelism-efficiency`` — the realized serial/wall ratio (the
  PR 3 critical-path efficiency figure) degraded vs. runs of the same
  executor kind, raw and normalized by the recorded execution-slot
  count (``parallelism / pool_size``, the multicore-smoke efficiency
  figure brought ledger-side);
* ``worker-utilization`` — procpool worker-pool health from the
  per-worker ledger telemetry: absolute busy-time imbalance across
  the pool, plus utilization drift vs. same-executor baselines;
* ``tool-self-time-drift`` — per-tool sampled self time (from the
  optional ``--profile`` summary on the record) vs. the profiled
  baseline runs;
* ``query-latency-drift`` — mean history-backend statement latency
  (from the same profile summary) vs. the profiled baseline.

``repro health`` renders the report and exits 1 on any fail, which is
what CI gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .ledger import RunRecord
from .workers import worker_imbalance

OK = "ok"
WARN = "warn"
FAIL = "fail"

_SEVERITY = {OK: 0, WARN: 1, FAIL: 2}

#: Default tuning: drift gate ``k``·MAD (MAD scaled to sigma-equivalent),
#: with floors so a tiny-but-stable baseline never gates on noise.
DEFAULT_WINDOW = 20
DEFAULT_K = 4.0
DEFAULT_MIN_SAMPLES = 2
DEFAULT_EWMA_ALPHA = 0.3
DEFAULT_REL_FLOOR = 0.25
#: Sub-10ms mean drift never gates: framework-level tasks (composition,
#: trivial tool stubs) time in the noise band of a fresh process, while
#: the tool runs worth gating on are external-process scale.
DEFAULT_ABS_FLOOR = 0.010
#: MAD -> sigma-equivalent scale for normally distributed samples.
MAD_SIGMA = 1.4826


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _mad(values: Sequence[float], center: float) -> float:
    """Median absolute deviation around a given center."""
    return _median([abs(value - center) for value in values])


def _ewma(values: Sequence[float], alpha: float) -> float:
    """Exponentially weighted moving average, oldest first."""
    if not values:
        return 0.0
    average = values[0]
    for value in values[1:]:
        average = alpha * value + (1.0 - alpha) * average
    return average


@dataclass(frozen=True)
class ToolBaseline:
    """Rolling duration baseline for one tool type."""

    tool: str
    samples: int
    ewma: float
    median: float
    mad: float
    #: Absolute drift (seconds above the median) that flips to FAIL.
    threshold: float

    def render(self) -> str:
        return (f"{self.tool}: n={self.samples} "
                f"median={self.median * 1e3:.2f}ms "
                f"ewma={self.ewma * 1e3:.2f}ms "
                f"mad={self.mad * 1e3:.2f}ms "
                f"threshold=+{self.threshold * 1e3:.2f}ms")


def tool_baselines(records: Sequence[RunRecord], *,
                   window: int = DEFAULT_WINDOW,
                   alpha: float = DEFAULT_EWMA_ALPHA,
                   k: float = DEFAULT_K,
                   rel_floor: float = DEFAULT_REL_FLOOR,
                   abs_floor: float = DEFAULT_ABS_FLOOR
                   ) -> dict[str, ToolBaseline]:
    """Per-tool-type baselines over the last ``window`` ledger records.

    The drift threshold is ``max(k * 1.4826 * MAD, rel_floor * median,
    abs_floor)``: MAD carries the gate when the baseline is noisy, the
    relative floor when it is tight, and the absolute floor keeps
    microsecond-scale tools from gating on clock jitter.
    """
    recent = [r for r in records if not r.errors][-window:]
    samples: dict[str, list[float]] = {}
    for record in recent:
        for tool, stats in record.tools.items():
            samples.setdefault(tool, []).append(stats.duration.mean)
    baselines: dict[str, ToolBaseline] = {}
    for tool, means in samples.items():
        median = _median(means)
        mad = _mad(means, median)
        threshold = max(k * MAD_SIGMA * mad, rel_floor * median,
                        abs_floor)
        baselines[tool] = ToolBaseline(
            tool=tool,
            samples=len(means),
            ewma=_ewma(means, alpha),
            median=median,
            mad=mad,
            threshold=threshold,
        )
    return baselines


# ---------------------------------------------------------------------------
# health checks
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CheckResult:
    """Verdict of one named health check."""

    name: str
    verdict: str
    detail: str

    def render(self) -> str:
        return f"[{self.verdict.upper():<4}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class HealthThresholds:
    """Tunable knobs shared by every check."""

    window: int = DEFAULT_WINDOW
    k: float = DEFAULT_K
    min_samples: int = DEFAULT_MIN_SAMPLES
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    rel_floor: float = DEFAULT_REL_FLOOR
    abs_floor: float = DEFAULT_ABS_FLOOR
    #: Baseline error rate above which a failing run only warns (the
    #: flow was already unstable; nothing *regressed*).
    error_rate_unstable: float = 0.25
    #: Minimum baseline hit rate before cache collapse can gate.
    cache_min_rate: float = 0.25
    cache_fail_ratio: float = 0.5
    cache_warn_ratio: float = 0.8
    #: Minimum baseline parallelism before efficiency loss can gate.
    parallelism_min: float = 1.5
    parallelism_fail_ratio: float = 0.6
    parallelism_warn_ratio: float = 0.8
    #: Worker-normalized efficiency gate (parallelism / pool size, the
    #: multicore-smoke figure brought ledger-side): baselines below the
    #: floor never gate — a flow without enough parallel work can't
    #: regress by staying serial.
    efficiency_min: float = 0.25
    efficiency_fail_ratio: float = 0.6
    efficiency_warn_ratio: float = 0.8
    #: Worker-pool gates (procpool runs with per-worker telemetry):
    #: total busy seconds below the floor never gate (framework-scale
    #: tools finish in the noise band); imbalance is max/mean busy
    #: across workers; utilization drift compares against the median
    #: of same-executor baseline runs.
    worker_busy_floor: float = 0.05
    worker_imbalance_warn: float = 2.5
    worker_imbalance_fail: float = 4.0
    worker_min_utilization: float = 0.2
    worker_fail_ratio: float = 0.6
    worker_warn_ratio: float = 0.8
    #: Absolute floor for the query-latency-drift gate: mean statement
    #: latencies live in the sub-millisecond band, so the tool-scale
    #: ``abs_floor`` would never let it gate.  Sub-2ms mean drift is
    #: still treated as noise.
    query_abs_floor: float = 0.002


def _worst(verdicts: Sequence[str]) -> str:
    return max(verdicts, key=lambda v: _SEVERITY[v]) if verdicts else OK


def check_tool_duration_drift(current: RunRecord,
                              baseline: Sequence[RunRecord],
                              thresholds: HealthThresholds
                              ) -> CheckResult:
    """Per-tool mean duration vs. the EWMA+MAD ledger baseline."""
    name = "tool-duration-drift"
    baselines = tool_baselines(
        baseline, window=thresholds.window, alpha=thresholds.ewma_alpha,
        k=thresholds.k, rel_floor=thresholds.rel_floor,
        abs_floor=thresholds.abs_floor)
    verdicts: list[str] = []
    details: list[str] = []
    for tool, stats in sorted(current.tools.items()):
        base = baselines.get(tool)
        if base is None or base.samples < thresholds.min_samples:
            continue
        drift = stats.duration.mean - base.median
        if drift > base.threshold:
            verdicts.append(FAIL)
            details.append(
                f"{tool} mean {stats.duration.mean * 1e3:.2f}ms is "
                f"+{drift * 1e3:.2f}ms over baseline median "
                f"{base.median * 1e3:.2f}ms "
                f"(threshold +{base.threshold * 1e3:.2f}ms, "
                f"n={base.samples})")
        elif drift > 0.5 * base.threshold:
            verdicts.append(WARN)
            details.append(
                f"{tool} drifting: mean {stats.duration.mean * 1e3:.2f}"
                f"ms, +{drift * 1e3:.2f}ms over median "
                f"{base.median * 1e3:.2f}ms")
    if not verdicts:
        return CheckResult(name, OK,
                           "tool durations within baseline"
                           if baselines else "no baseline yet")
    return CheckResult(name, _worst(verdicts), "; ".join(details))


def _describe_error(record: RunRecord) -> str:
    """``ToolError@Simulator: message`` when the record knows the error
    class and failing tool type, the bare message otherwise."""
    message = record.error or "unknown error"
    if not record.error_class:
        return message
    tool = f"@{record.error_tool}" if record.error_tool else ""
    return f"{record.error_class}{tool}: {message}"


def check_error_rate(current: RunRecord,
                     baseline: Sequence[RunRecord],
                     thresholds: HealthThresholds) -> CheckResult:
    """A failing run against a (mostly) clean baseline is a spike.

    When the record names the failing tool type, the baseline rate is
    computed per tool — ten clean runs of one flow don't excuse a
    simulator that has been failing every time it actually ran.
    """
    name = "error-rate"
    if not current.errors:
        return CheckResult(name, OK, "run completed without errors")
    described = _describe_error(current)
    if len(baseline) < thresholds.min_samples:
        return CheckResult(
            name, WARN,
            f"run failed ({described}); no baseline to compare against")
    if current.error_tool:
        # group the baseline by the failing tool: only runs that
        # invoked (or also failed on) this tool type are peers
        peers = [r for r in baseline
                 if current.error_tool in r.tools
                 or r.error_tool == current.error_tool]
        failing = [r for r in peers
                   if r.error_tool == current.error_tool]
        if len(peers) >= thresholds.min_samples:
            rate = len(failing) / len(peers)
            if rate <= thresholds.error_rate_unstable:
                return CheckResult(
                    name, FAIL,
                    f"run failed ({described}) while "
                    f"{current.error_tool} baseline error rate was "
                    f"{rate:.0%} over {len(peers)} runs")
            return CheckResult(
                name, WARN,
                f"run failed but {current.error_tool} was already "
                f"unstable (baseline error rate {rate:.0%})")
    rate = sum(1 for r in baseline if r.errors) / len(baseline)
    if rate <= thresholds.error_rate_unstable:
        return CheckResult(
            name, FAIL,
            f"run failed ({described}) while baseline error rate was "
            f"{rate:.0%} over {len(baseline)} runs")
    return CheckResult(
        name, WARN,
        f"run failed but the flow was already unstable "
        f"(baseline error rate {rate:.0%})")


def check_quarantine(current: RunRecord,
                     baseline: Sequence[RunRecord],
                     thresholds: HealthThresholds) -> CheckResult:
    """Quarantined tool types in the latest run always gate.

    The circuit breaker only opens after repeated consecutive
    failures, so an open breaker *is* the drift signal — no baseline
    comparison needed.
    """
    name = "tool-quarantine"
    if not current.quarantined:
        return CheckResult(name, OK, "no tool types quarantined")
    tools = ", ".join(current.quarantined)
    return CheckResult(
        name, FAIL,
        f"circuit breaker quarantined: {tools} "
        f"({current.failures} invocation failure(s) recorded)")


def check_cache_hit_rate(current: RunRecord,
                         baseline: Sequence[RunRecord],
                         thresholds: HealthThresholds) -> CheckResult:
    """Cache-effectiveness collapse vs. cache-enabled baseline runs."""
    name = "cache-hit-rate"
    if current.cache_policy == "off" or not current.cache_lookups:
        return CheckResult(name, OK, "cache not in use")
    rates = [r.cache_hit_rate for r in baseline
             if r.cache_policy != "off" and r.cache_lookups]
    if len(rates) < thresholds.min_samples:
        return CheckResult(name, OK, "no cache baseline yet")
    base_rate = _median(rates)
    if base_rate < thresholds.cache_min_rate:
        return CheckResult(
            name, OK,
            f"baseline hit rate {base_rate:.0%} too low to gate")
    rate = current.cache_hit_rate
    if rate < thresholds.cache_fail_ratio * base_rate:
        return CheckResult(
            name, FAIL,
            f"hit rate collapsed to {rate:.0%} "
            f"(baseline {base_rate:.0%} over {len(rates)} runs)")
    if rate < thresholds.cache_warn_ratio * base_rate:
        return CheckResult(
            name, WARN,
            f"hit rate {rate:.0%} below baseline {base_rate:.0%}")
    return CheckResult(
        name, OK, f"hit rate {rate:.0%} (baseline {base_rate:.0%})")


def check_parallelism_efficiency(current: RunRecord,
                                 baseline: Sequence[RunRecord],
                                 thresholds: HealthThresholds
                                 ) -> CheckResult:
    """Serial/wall efficiency vs. baseline runs of the same executor.

    Two gates.  *Raw drift* compares the realized serial/wall ratio
    against the same-executor baseline median — it catches a flow that
    stopped parallelizing.  *Worker-normalized drift* divides that
    ratio by the recorded pool size first (parallelism / pool_size,
    the per-slot efficiency the multicore-smoke CI job gates on), so a
    run that kept its speedup only by doubling the pool still fails.
    The normalized gate needs ``pool_size`` on the records, which
    in-process and pre-PR-10 ledgers may not carry — it silently sits
    out when the data is missing.
    """
    name = "parallelism-efficiency"
    peers = [r for r in baseline
             if r.executor == current.executor and not r.errors]
    if len(peers) < thresholds.min_samples:
        return CheckResult(
            name, OK, f"no {current.executor} baseline yet")
    verdicts: list[str] = []
    details: list[str] = []
    base = _median([r.parallelism for r in peers])
    if base < thresholds.parallelism_min:
        details.append(
            f"baseline parallelism {base:.2f}x below gating floor")
    else:
        ratio = current.parallelism / base if base else 1.0
        if ratio < thresholds.parallelism_fail_ratio:
            verdicts.append(FAIL)
            details.append(
                f"parallelism {current.parallelism:.2f}x degraded "
                f"from baseline {base:.2f}x over {len(peers)} runs")
        elif ratio < thresholds.parallelism_warn_ratio:
            verdicts.append(WARN)
            details.append(
                f"parallelism {current.parallelism:.2f}x below "
                f"baseline {base:.2f}x")
        else:
            details.append(
                f"parallelism {current.parallelism:.2f}x "
                f"(baseline {base:.2f}x)")
    rates = [r.parallelism / r.pool_size for r in peers
             if r.pool_size >= 2]
    if current.pool_size >= 2 \
            and len(rates) >= thresholds.min_samples:
        efficiency = current.parallelism / current.pool_size
        base_eff = _median(rates)
        if base_eff < thresholds.efficiency_min:
            details.append(
                f"baseline efficiency {base_eff:.0%} below gating "
                "floor")
        else:
            ratio = efficiency / base_eff if base_eff else 1.0
            if ratio < thresholds.efficiency_fail_ratio:
                verdicts.append(FAIL)
                details.append(
                    f"efficiency {efficiency:.0%} of "
                    f"{current.pool_size} slot(s) degraded from "
                    f"baseline {base_eff:.0%} over {len(rates)} runs")
            elif ratio < thresholds.efficiency_warn_ratio:
                verdicts.append(WARN)
                details.append(
                    f"efficiency {efficiency:.0%} below baseline "
                    f"{base_eff:.0%}")
            else:
                details.append(
                    f"efficiency {efficiency:.0%} across "
                    f"{current.pool_size} slot(s) "
                    f"(baseline {base_eff:.0%})")
    return CheckResult(name, _worst(verdicts), "; ".join(details))


def check_worker_utilization(current: RunRecord,
                             baseline: Sequence[RunRecord],
                             thresholds: HealthThresholds
                             ) -> CheckResult:
    """Worker-pool health of a procpool run: imbalance + utilization.

    Two gates over the per-worker ledger telemetry.  *Imbalance* is
    absolute — one worker doing several times the mean busy time means
    the pool ran effectively serial, whatever history says.
    *Utilization drift* is relative: summed busy / (workers x wall)
    compared against the median of same-executor baseline runs, with
    a gating floor so lightly loaded flows never flake.
    """
    name = "worker-utilization"
    if not current.workers:
        return CheckResult(name, OK, "no worker telemetry recorded")
    utilization = current.worker_utilization
    imbalance = worker_imbalance(current.workers)
    busy_total = sum(stats.busy_time
                     for stats in current.workers.values())
    verdicts: list[str] = []
    details: list[str] = []
    if len(current.workers) > 1 \
            and busy_total >= thresholds.worker_busy_floor:
        if imbalance >= thresholds.worker_imbalance_fail:
            verdicts.append(FAIL)
            details.append(
                f"pool imbalance {imbalance:.1f}x: the busiest of "
                f"{len(current.workers)} workers did "
                f"{imbalance:.1f}x the mean busy time")
        elif imbalance >= thresholds.worker_imbalance_warn:
            verdicts.append(WARN)
            details.append(
                f"pool imbalance {imbalance:.1f}x across "
                f"{len(current.workers)} workers")
    rates = [r.worker_utilization for r in baseline
             if r.executor == current.executor and r.workers
             and not r.errors]
    if len(rates) >= thresholds.min_samples:
        base = _median(rates)
        if base >= thresholds.worker_min_utilization:
            ratio = utilization / base if base else 1.0
            if ratio < thresholds.worker_fail_ratio:
                verdicts.append(FAIL)
                details.append(
                    f"utilization collapsed to {utilization:.0%} "
                    f"(baseline {base:.0%} over {len(rates)} runs)")
            elif ratio < thresholds.worker_warn_ratio:
                verdicts.append(WARN)
                details.append(
                    f"utilization {utilization:.0%} below baseline "
                    f"{base:.0%}")
    if not verdicts:
        return CheckResult(
            name, OK,
            f"utilization {utilization:.0%} across "
            f"{len(current.workers)} worker(s), "
            f"imbalance {imbalance:.1f}x")
    return CheckResult(name, _worst(verdicts), "; ".join(details))


def check_tool_self_time_drift(current: RunRecord,
                               baseline: Sequence[RunRecord],
                               thresholds: HealthThresholds
                               ) -> CheckResult:
    """Per-tool sampled self time vs. the profiled ledger baseline.

    Runs without a ``--profile`` summary pass trivially (the check
    only ever judges like against like); the gate itself is the same
    median/MAD formula the duration-drift check uses, applied to the
    ``self_s`` figure the sampling profiler recorded.
    """
    name = "tool-self-time-drift"
    tools = (current.profile or {}).get("tools", {})
    if not tools:
        return CheckResult(name, OK, "no profile recorded")
    history: dict[str, list[float]] = {}
    for record in baseline:
        if record.errors or not record.profile:
            continue
        for tool, stats in record.profile.get("tools", {}).items():
            history.setdefault(tool, []).append(
                float(stats.get("self_s", 0.0)))
    verdicts: list[str] = []
    details: list[str] = []
    for tool, stats in sorted(tools.items()):
        peers = history.get(tool, [])[-thresholds.window:]
        if len(peers) < thresholds.min_samples:
            continue
        median = _median(peers)
        mad = _mad(peers, median)
        threshold = max(thresholds.k * MAD_SIGMA * mad,
                        thresholds.rel_floor * median,
                        thresholds.abs_floor)
        drift = float(stats.get("self_s", 0.0)) - median
        if drift > threshold:
            verdicts.append(FAIL)
            details.append(
                f"{tool} self time "
                f"{float(stats.get('self_s', 0.0)) * 1e3:.2f}ms is "
                f"+{drift * 1e3:.2f}ms over baseline median "
                f"{median * 1e3:.2f}ms "
                f"(threshold +{threshold * 1e3:.2f}ms, "
                f"n={len(peers)})")
        elif drift > 0.5 * threshold:
            verdicts.append(WARN)
            details.append(
                f"{tool} self time drifting: "
                f"{float(stats.get('self_s', 0.0)) * 1e3:.2f}ms, "
                f"+{drift * 1e3:.2f}ms over median "
                f"{median * 1e3:.2f}ms")
    if not verdicts:
        return CheckResult(name, OK,
                           "tool self times within baseline"
                           if history else "no profiled baseline yet")
    return CheckResult(name, _worst(verdicts), "; ".join(details))


def _mean_query_latency(record: RunRecord) -> float | None:
    """Mean per-statement latency of a profiled run, None without
    query telemetry."""
    query = (record.profile or {}).get("query") or {}
    count = int(query.get("count", 0))
    if not count:
        return None
    return float(query.get("total_s", 0.0)) / count


def check_query_latency_drift(current: RunRecord,
                              baseline: Sequence[RunRecord],
                              thresholds: HealthThresholds
                              ) -> CheckResult:
    """Mean history-backend statement latency vs. profiled baselines.

    The per-statement timers ride the profile summary; a lost index or
    a backend regression shows up as the whole-run mean drifting above
    the median of earlier profiled runs.
    """
    name = "query-latency-drift"
    mean = _mean_query_latency(current)
    if mean is None:
        return CheckResult(name, OK, "no query telemetry recorded")
    peers = [latency for record in baseline
             if not record.errors
             and (latency := _mean_query_latency(record)) is not None]
    peers = peers[-thresholds.window:]
    if len(peers) < thresholds.min_samples:
        return CheckResult(name, OK, "no query baseline yet")
    median = _median(peers)
    mad = _mad(peers, median)
    threshold = max(thresholds.k * MAD_SIGMA * mad,
                    thresholds.rel_floor * median,
                    thresholds.query_abs_floor)
    drift = mean - median
    if drift > threshold:
        return CheckResult(
            name, FAIL,
            f"mean statement latency {mean * 1e6:.0f}us is "
            f"+{drift * 1e6:.0f}us over baseline median "
            f"{median * 1e6:.0f}us "
            f"(threshold +{threshold * 1e6:.0f}us, n={len(peers)})")
    if drift > 0.5 * threshold:
        return CheckResult(
            name, WARN,
            f"mean statement latency drifting: {mean * 1e6:.0f}us, "
            f"+{drift * 1e6:.0f}us over median {median * 1e6:.0f}us")
    return CheckResult(
        name, OK,
        f"mean statement latency {mean * 1e6:.0f}us "
        f"(baseline {median * 1e6:.0f}us over {len(peers)} runs)")


HealthCheck = Callable[[RunRecord, Sequence[RunRecord],
                        HealthThresholds], CheckResult]

#: The named check catalog, in report order.
HEALTH_CHECKS: tuple[tuple[str, HealthCheck], ...] = (
    ("tool-duration-drift", check_tool_duration_drift),
    ("error-rate", check_error_rate),
    ("tool-quarantine", check_quarantine),
    ("cache-hit-rate", check_cache_hit_rate),
    ("parallelism-efficiency", check_parallelism_efficiency),
    ("worker-utilization", check_worker_utilization),
    ("tool-self-time-drift", check_tool_self_time_drift),
    ("query-latency-drift", check_query_latency_drift),
)


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------
@dataclass
class HealthReport:
    """Verdicts of every named check against the latest ledger run."""

    run: RunRecord | None
    baseline_runs: int
    checks: tuple[CheckResult, ...]

    @property
    def verdict(self) -> str:
        return _worst([c.verdict for c in self.checks])

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(c for c in self.checks if c.verdict == FAIL)

    @property
    def exit_code(self) -> int:
        """CI contract: 1 on any failing check, 0 otherwise."""
        return 1 if self.failures else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "verdict": self.verdict,
            "run": self.run.to_dict() if self.run else None,
            "baseline_runs": self.baseline_runs,
            "checks": [{"name": c.name, "verdict": c.verdict,
                        "detail": c.detail} for c in self.checks],
        }

    def render(self) -> str:
        if self.run is None:
            return "health: no runs recorded yet"
        lines = [
            f"health of run {self.run.run_id} "
            f"(flow {self.run.flow}, {self.run.executor} executor, "
            f"baseline of {self.baseline_runs} runs): "
            f"{self.verdict.upper()}",
        ]
        lines.extend("  " + check.render() for check in self.checks)
        return "\n".join(lines)


def evaluate_health(records: Sequence[RunRecord], *,
                    thresholds: HealthThresholds | None = None
                    ) -> HealthReport:
    """Judge the latest ledger record against the runs before it."""
    thresholds = thresholds if thresholds is not None \
        else HealthThresholds()
    if not records:
        return HealthReport(run=None, baseline_runs=0, checks=())
    current = records[-1]
    baseline = list(records[:-1])[-thresholds.window:]
    checks = tuple(check(current, baseline, thresholds)
                   for _, check in HEALTH_CHECKS)
    return HealthReport(run=current, baseline_runs=len(baseline),
                        checks=checks)
