"""Event sinks: where emitted events go.

A sink is anything with ``handle(event)`` (and optionally ``close()``).
Three are provided:

* :class:`NullSink` — drops events (explicit no-op);
* :class:`RingBufferSink` — keeps the last N events in memory, the
  test/debug sink;
* :class:`JSONLSink` — schema-versioned append-only JSON-lines log,
  replayable with :func:`replay_events` into an identical event
  sequence (and therefore into any other sink, e.g. a
  :class:`~repro.obs.metrics.MetricsRegistry`).
"""

from __future__ import annotations

import collections
import json
import pathlib
import time
from typing import IO, Any, Callable, Iterable, Iterator

from ..errors import ObservabilityError
from .events import Event


class EventSink:
    """Base class documenting the sink interface."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further ``handle`` calls are undefined."""


class NullSink(EventSink):
    """Swallows every event."""

    def handle(self, event: Event) -> None:
        pass


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ObservabilityError("ring buffer capacity must be >= 1")
        self._buffer: collections.deque[Event] = collections.deque(
            maxlen=capacity)

    def handle(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self, event_type: str | None = None) -> tuple[Event, ...]:
        if event_type is None:
            return tuple(self._buffer)
        return tuple(e for e in self._buffer
                     if e.event_type == event_type)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class CallbackSink(EventSink):
    """Adapts a plain callable into a sink."""

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self._fn = fn

    def handle(self, event: Event) -> None:
        self._fn(event)


class JSONLSink(EventSink):
    """Append-only JSON-lines event log.

    One event per line, written eagerly and flushed so a crashed run
    still leaves a readable prefix.  The file opens lazily on the first
    event, so attaching the sink to an execution that emits nothing
    creates no file.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle: IO[str] | None = None

    def handle(self, event: Event) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        json.dump(event.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_jsonl_objects(path: str | pathlib.Path, *,
                       strict: bool = True
                       ) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(lineno, object)`` pairs from a JSON-lines file.

    ``strict=True`` raises on any corrupt line.  ``strict=False``
    tolerates corruption *at the tail only* — the partial final line a
    killed writer leaves behind — by buffering a decode failure and
    forgiving it if no valid line follows.  A corrupt line in the
    middle of the log (valid data after it) still raises, since that
    means real damage, not mere truncation.
    """
    log = pathlib.Path(path)
    if not log.exists():
        raise ObservabilityError(f"no event log at {log}")
    pending: ObservabilityError | None = None
    with open(log, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spec = json.loads(line)
            except json.JSONDecodeError as error:
                problem = ObservabilityError(
                    f"{log}:{lineno}: corrupt event line "
                    f"({error})")
                if strict:
                    raise problem from None
                pending = problem
                continue
            if pending is not None:
                raise pending from None  # corruption mid-file
            if not isinstance(spec, dict):
                problem = ObservabilityError(
                    f"{log}:{lineno}: expected a JSON object, got "
                    f"{type(spec).__name__}")
                if strict:
                    raise problem
                pending = problem
                continue
            yield lineno, spec


def follow_jsonl_objects(path: str | pathlib.Path, *,
                         poll_interval: float = 0.5,
                         sleep: Callable[[float], None] = time.sleep,
                         stop: Callable[[], bool] | None = None
                         ) -> Iterator[tuple[int, dict[str, Any]]]:
    """Tail a JSON-lines file: yield objects as a live writer appends.

    The torn-tail discipline of :func:`iter_jsonl_objects` applies
    incrementally: a partial trailing line (a write caught mid-flush)
    is buffered until its newline arrives, while a newline-*terminated*
    line that fails to parse raises — that is real damage, not
    truncation.  A missing file is waited for (watching an environment
    about to run), and a file that shrinks (rotation) restarts from the
    top.  ``stop`` is polled between reads; returning True ends the
    follow — without it the generator runs until the consumer stops
    iterating (e.g. KeyboardInterrupt in the CLI).
    """
    log = pathlib.Path(path)
    offset = 0
    lineno = 0
    buffered = ""
    while True:
        if log.exists():
            size = log.stat().st_size
            if size < offset:  # rotated/truncated: start over
                offset = 0
                lineno = 0
                buffered = ""
            if size > offset:
                with open(log, "r", encoding="utf-8") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
                    offset = handle.tell()
                buffered += chunk
                while "\n" in buffered:
                    line, _, buffered = buffered.partition("\n")
                    lineno += 1
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        spec = json.loads(line)
                    except json.JSONDecodeError as error:
                        raise ObservabilityError(
                            f"{log}:{lineno}: corrupt event line "
                            f"({error})") from None
                    if not isinstance(spec, dict):
                        raise ObservabilityError(
                            f"{log}:{lineno}: expected a JSON object, "
                            f"got {type(spec).__name__}")
                    yield lineno, spec
        if stop is not None and stop():
            return
        sleep(poll_interval)


def follow_events(path: str | pathlib.Path, *,
                  poll_interval: float = 0.5,
                  sleep: Callable[[float], None] = time.sleep,
                  stop: Callable[[], bool] | None = None
                  ) -> Iterator[Event]:
    """Tail a :class:`JSONLSink` event log (``repro events --follow``)."""
    for _, spec in follow_jsonl_objects(path, poll_interval=poll_interval,
                                        sleep=sleep, stop=stop):
        yield Event.from_dict(spec)


def replay_events(path: str | pathlib.Path, *,
                  strict: bool = True) -> Iterator[Event]:
    """Stream events back out of a :class:`JSONLSink` log, in order.

    See :func:`iter_jsonl_objects` for ``strict`` semantics.
    """
    for _, spec in iter_jsonl_objects(path, strict=strict):
        yield Event.from_dict(spec)


def read_events(path: str | pathlib.Path, *,
                strict: bool = True) -> tuple[Event, ...]:
    """Eager variant of :func:`replay_events`."""
    return tuple(replay_events(path, strict=strict))


def replay_into(events: Iterable[Event], *sinks: Any) -> int:
    """Feed an event sequence through sinks; returns the event count."""
    count = 0
    for event in events:
        for sink in sinks:
            sink.handle(event)
        count += 1
    return count
