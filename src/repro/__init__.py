"""repro: a full reproduction of *Design Management Using Dynamically
Defined Flows* (Sutton, Brockman, Director — DAC 1993).

The package implements the paper's Hercules/Odyssey stack:

* :mod:`repro.schema` — task schemas (entities, f/d dependencies,
  subtyping, composed entities, catalogs);
* :mod:`repro.core` — dynamically defined flows: task graphs built by
  expand/unexpand/specialize, the four design approaches, and the
  alternative flow representations of Fig. 3;
* :mod:`repro.execution` — encapsulations, sequential/parallel executors,
  and the :class:`~repro.execution.context.DesignEnvironment` façade;
* :mod:`repro.history` — the design history database: derivation records,
  backward/forward chaining, template queries, flow traces, version
  projection and consistency maintenance;
* :mod:`repro.views` — design views and view-correspondence flows;
* :mod:`repro.tools` — a working mini-CAD substrate (editors, placer,
  extractor, COSMOS-style compiled switch-level simulator, LVS verifier,
  plotter, layout generators, statistical optimizers);
* :mod:`repro.process` — the Design Process Level (hierarchies, goals,
  progress) referenced by the paper's section 3.1;
* :mod:`repro.baselines` — JESSI static flows, Casotto traces, classical
  version trees;
* :mod:`repro.ui` — the scriptable Hercules task window, browser and
  interactive shell;
* :mod:`repro.persistence` / :mod:`repro.cli` — saved environments and
  the ``python -m repro`` front end.

Quickstart::

    from repro import DesignEnvironment, odyssey_schema
    from repro.tools import install_standard_tools

    env = DesignEnvironment(odyssey_schema(), user="you")
    tools = install_standard_tools(env)
    flow, goal = env.goal_flow("Performance")
    flow.expand(goal)
    ...
"""

from .core import DynamicFlow, TaskGraph
from .errors import ReproError
from .execution import DesignEnvironment
from .history import HistoryDatabase
from .obs import (Event, EventBus, JSONLSink, MetricsRegistry,
                  RingBufferSink)
from .schema import SchemaBuilder, TaskSchema
from .schema.standard import fig1_schema, fig2_schema, odyssey_schema

__version__ = "1.0.0"

__all__ = [
    "DesignEnvironment",
    "DynamicFlow",
    "Event",
    "EventBus",
    "HistoryDatabase",
    "JSONLSink",
    "MetricsRegistry",
    "ReproError",
    "RingBufferSink",
    "SchemaBuilder",
    "TaskGraph",
    "TaskSchema",
    "__version__",
    "fig1_schema",
    "fig2_schema",
    "odyssey_schema",
]
