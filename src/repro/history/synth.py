"""Seeded synthetic design histories for benchmarks and property tests.

Real histories from the figure benchmarks top out at a few hundred
instances; the storage layer is specified to a hundred thousand.  This
module grows deterministic histories of any size and of three dependency
shapes — ``chain`` (long edit sequences), ``diamond`` (re-convergent
analysis pairs) and ``forkjoin`` (parallel branches joined by a
verifier) — so both storage backends can be driven through identical,
reproducible workloads.  The same seed, shape and size always produce
the same instance ids, derivations, timestamps and payloads, which is
what lets the cross-backend equality tests demand *identical* query
results rather than merely similar ones.

Histories are segmented: every segment starts from freshly installed
source data, so a head's backward trace covers one segment, not the
whole database.  That mirrors real use (many design tasks in one
history) and is what makes indexed queries sublinear — a trace should
never need to touch instances from unrelated tasks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..schema.builder import SchemaBuilder
from ..schema.schema import TaskSchema
from .database import HistoryDatabase
from .instance import DerivationRecord
from .store import HistoryStore

SHAPES = ("chain", "diamond", "forkjoin")

#: Instances per segment (one "design task"); traces stay this size.
SEGMENT = 64


def synth_schema() -> TaskSchema:
    """A minimal schema with one tool, one source family, one derived.

    ``Alpha`` is the source family (editable: a derived Alpha is a new
    version of its ``previous`` input, so edits create staleness);
    ``Beta`` is derived design data consuming an Alpha and up to three
    earlier Betas, enough fan-in for every generated shape.
    """
    return (SchemaBuilder("synth")
            .tool("SynthTool")
            .data("Alpha")
            .data("Beta")
            .produced_by("Alpha", "SynthTool",
                         inputs=[{"type": "Alpha", "role": "previous",
                                  "optional": True}])
            .produced_by("Beta", "SynthTool",
                         inputs=[{"type": "Alpha", "role": "source",
                                  "optional": True},
                                 {"type": "Beta", "role": "x",
                                  "optional": True},
                                 {"type": "Beta", "role": "y",
                                  "optional": True},
                                 {"type": "Beta", "role": "z",
                                  "optional": True}])
            .build())


def tick_clock(start: float = 1_000_000_000.0,
               step: float = 1.0) -> Callable[[], float]:
    """A deterministic clock: identical runs get identical timestamps."""
    state = {"now": start - step}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


@dataclass(frozen=True)
class SynthHistory:
    """A generated history plus the handles the benchmarks query."""

    db: HistoryDatabase
    shape: str
    seed: int
    tool_id: str
    sources: tuple[str, ...]   # installed Alpha ids, oldest first
    heads: tuple[str, ...]     # final Beta of each segment
    edited: tuple[str, ...]    # Alphas later superseded by an edit


def build_history(size: int, shape: str = "forkjoin", *, seed: int = 0,
                  store: HistoryStore | None = None,
                  edit_every: int = 8,
                  clock: Callable[[], float] | None = None
                  ) -> SynthHistory:
    """Grow a deterministic history of ``size`` instances.

    ``edit_every`` re-edits one already-consumed source Alpha per that
    many completed segments, so a fixed fraction of heads is stale —
    the staleness-scan benchmarks and the cross-backend equality tests
    both need superseded versions to exist.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; choose from "
                         f"{', '.join(SHAPES)}")
    if size < 3:
        raise ValueError(f"size must be >= 3, got {size}")
    rng = random.Random(seed)
    db = HistoryDatabase(synth_schema(), store=store,
                         clock=clock if clock is not None
                         else tick_clock())
    tool = db.install("SynthTool", {"tool": "synth"}, user="synth",
                      name="synth-tool")
    sources: list[str] = []
    heads: list[str] = []
    edited: list[str] = []
    segments = 0
    # instance count is tracked locally: len(db) is a COUNT(*) on the
    # sqlite backend, and calling it per loop turn would be quadratic
    count = 1  # the tool

    def derive(entity_type: str, inputs: dict[str, str],
               payload: dict) -> str:
        nonlocal count
        record = DerivationRecord.make(tool.instance_id, inputs,
                                       db.new_invocation_id())
        count += 1
        return db.record(entity_type, payload, record,
                         user="synth").instance_id

    while count < size:
        # each segment opens with a fresh source entering from outside
        source = db.install(
            "Alpha", {"segment": segments, "seed": seed}, user="synth",
            name=f"src-{segments}").instance_id
        sources.append(source)
        count += 1
        head = derive("Beta", {"source": source}, {"n": count})
        budget = min(SEGMENT, max(2, size - count)) - 2
        while budget > 0 and count < size:
            if shape == "chain":
                head = derive("Beta", {"x": head}, {"n": count})
                budget -= 1
            elif shape == "diamond":
                left = derive("Beta", {"x": head}, {"n": count})
                right = derive("Beta", {"x": head}, {"n": count})
                head = derive("Beta", {"x": left, "y": right},
                              {"n": count})
                budget -= 3
            else:  # forkjoin
                width = rng.randint(2, 3)
                branches = [derive("Beta", {"x": head}, {"n": count})
                            for _ in range(width)]
                roles = dict(zip(("x", "y", "z"), branches))
                head = derive("Beta", roles, {"n": count})
                budget -= width + 1
        heads.append(head)
        segments += 1
        if edit_every and segments % edit_every == 0 and count < size:
            # supersede a random earlier source: its segment goes stale
            victim = sources[rng.randrange(len(sources))]
            if victim not in edited:
                record = DerivationRecord.make(
                    tool.instance_id, {"previous": victim},
                    db.new_invocation_id())
                db.record("Alpha", {"edit-of": victim}, record,
                          user="synth", name="edit")
                count += 1
                edited.append(victim)
    db.store.flush()
    return SynthHistory(db=db, shape=shape, seed=seed,
                        tool_id=tool.instance_id,
                        sources=tuple(sources), heads=tuple(heads),
                        edited=tuple(edited))
