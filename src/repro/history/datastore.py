"""Content-addressed storage for design data.

Paper footnote 5: *"although each instance of an entity (including
different versions of the same design) has its own associated meta-data,
it may share the actual (physical) data with other instances."*  A
:class:`DataStore` is the reproduction's RCS/SCCS: blobs are keyed by a
digest of their canonical form, so identical payloads are stored once and
instances reference them by ``data_ref``.

Arbitrary Python design objects (netlists, layouts, compiled simulators)
participate through a :class:`CodecRegistry`: each class registers a type
tag plus ``to_payload``/``from_payload`` functions mapping to JSON-safe
structures.  Primitives, lists, dicts and tuples need no registration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import HistoryError


@dataclass(frozen=True)
class Codec:
    """Serialization recipe for one design-data class."""

    tag: str
    cls: type
    to_payload: Callable[[Any], Any]
    from_payload: Callable[[Any], Any]


class CodecRegistry:
    """Maps classes/tags to codecs; shared by datastore persistence."""

    def __init__(self) -> None:
        self._by_tag: dict[str, Codec] = {}
        self._by_cls: dict[type, Codec] = {}

    def register(self, tag: str, cls: type,
                 to_payload: Callable[[Any], Any],
                 from_payload: Callable[[Any], Any]) -> None:
        if tag in self._by_tag:
            raise HistoryError(f"codec tag {tag!r} already registered")
        if cls in self._by_cls:
            raise HistoryError(f"codec for {cls.__name__} already registered")
        codec = Codec(tag, cls, to_payload, from_payload)
        self._by_tag[tag] = codec
        self._by_cls[cls] = codec

    def register_dataclass_like(self, tag: str, cls: type) -> None:
        """Register a class exposing ``to_dict()`` and ``from_dict()``."""
        self.register(tag, cls,
                      to_payload=lambda obj: obj.to_dict(),
                      from_payload=cls.from_dict)

    def encode(self, obj: Any) -> Any:
        """Convert an object to a JSON-safe tagged structure."""
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, (list, tuple)):
            return {"__seq__": "tuple" if isinstance(obj, tuple) else "list",
                    "items": [self.encode(item) for item in obj]}
        if isinstance(obj, dict):
            return {"__map__": [[self.encode(k), self.encode(v)]
                                for k, v in obj.items()]}
        codec = self._by_cls.get(type(obj))
        if codec is None:
            raise HistoryError(
                f"no codec registered for {type(obj).__name__}; call "
                "CodecRegistry.register() (or register_dataclass_like)")
        return {"__tag__": codec.tag,
                "payload": self.encode(codec.to_payload(obj))}

    def decode(self, payload: Any) -> Any:
        """Inverse of :meth:`encode`."""
        if payload is None or isinstance(payload, (bool, int, float, str)):
            return payload
        if isinstance(payload, list):
            return [self.decode(item) for item in payload]
        if isinstance(payload, dict):
            if "__seq__" in payload:
                items = [self.decode(item) for item in payload["items"]]
                return tuple(items) if payload["__seq__"] == "tuple" \
                    else items
            if "__map__" in payload:
                return {self.decode(k): self.decode(v)
                        for k, v in payload["__map__"]}
            if "__tag__" in payload:
                codec = self._by_tag.get(payload["__tag__"])
                if codec is None:
                    raise HistoryError(
                        f"no codec for tag {payload['__tag__']!r}")
                return codec.from_payload(self.decode(payload["payload"]))
        raise HistoryError(f"cannot decode payload of type "
                           f"{type(payload).__name__}")


#: Registry shared by default; tools register their data classes here at
#: import time.
GLOBAL_CODECS = CodecRegistry()


#: Length histories written before full-digest storage used for refs.
SHORT_REF_LENGTH = 16


class DataStore:
    """Content-addressed blob store for design data.

    Blobs are keyed by the **full** sha256 hex digest of their canonical
    form.  Earlier histories truncated digests to 16 hex characters;
    those short refs still resolve through a prefix alias table, but new
    refs are always full-length so downstream users (derivation cache
    keys in particular) cannot collide.

    Without a ``backend`` the decoded objects live in process dicts and
    persist through :meth:`to_dict` (the JSON history format).  With a
    blob-capable :class:`~repro.history.store.HistoryStore` backend
    (the SQLite backend), canonical JSON text is written through to the
    store on every :meth:`put` and rows are decoded lazily on first
    :meth:`get`; the in-process dicts then act as a decode cache, so
    object identity within one session matches the in-memory behaviour.
    """

    def __init__(self, codecs: CodecRegistry | None = None, *,
                 backend=None) -> None:
        self.codecs = codecs if codecs is not None else GLOBAL_CODECS
        self.backend = backend
        self._blobs: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self._aliases: dict[str, str] = {}

    def _canonical(self, encoded: Any) -> str:
        return json.dumps(encoded, sort_keys=True, separators=(",", ":"))

    def _admit(self, digest: str, obj: Any, size: int,
               canonical: str | None = None) -> None:
        if digest not in self._blobs:
            self._blobs[digest] = obj
            self._sizes[digest] = size
        self._aliases.setdefault(digest[:SHORT_REF_LENGTH], digest)
        if self.backend is not None:
            if canonical is None:
                canonical = self._canonical(self.codecs.encode(obj))
            self.backend.put_blob(digest, canonical, size)
            self.backend.put_blob_alias(digest[:SHORT_REF_LENGTH], digest)

    def put(self, obj: Any) -> str:
        """Store an object; return its content digest (``data_ref``)."""
        encoded = self.codecs.encode(obj)
        canonical = self._canonical(encoded)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        self._admit(digest, obj, len(canonical), canonical)
        return digest

    def resolve(self, data_ref: str) -> str:
        """Map a (possibly legacy short) ref to its full digest."""
        if data_ref in self._blobs:
            return data_ref
        full = self._aliases.get(data_ref)
        if full is not None:
            return full
        if self.backend is not None:
            if self.backend.get_blob(data_ref) is not None:
                return data_ref
            full = self.backend.resolve_blob_alias(data_ref)
            if full is not None:
                return full
        raise HistoryError(f"no data blob {data_ref!r}")

    def get(self, data_ref: str) -> Any:
        full = self.resolve(data_ref)
        if full in self._blobs:
            return self._blobs[full]
        # backend-resident blob not decoded yet this session
        canonical = self.backend.get_blob(full)
        if canonical is None:
            raise HistoryError(f"no data blob {data_ref!r}")
        obj = self.codecs.decode(json.loads(canonical))
        self._blobs[full] = obj
        self._sizes[full] = len(canonical)
        self._aliases.setdefault(full[:SHORT_REF_LENGTH], full)
        return obj

    def size(self, data_ref: str) -> int:
        """Canonical-form byte size of a stored blob."""
        full = self.resolve(data_ref)
        if full in self._sizes:
            return self._sizes[full]
        size = self.backend.blob_size(full)
        if size is None:
            raise HistoryError(f"no data blob {data_ref!r}")
        return size

    def __contains__(self, data_ref: str) -> bool:
        if data_ref in self._blobs or data_ref in self._aliases:
            return True
        if self.backend is None:
            return False
        return (self.backend.get_blob(data_ref) is not None
                or self.backend.resolve_blob_alias(data_ref) is not None)

    def __len__(self) -> int:
        if self.backend is not None:
            return len(self.backend.blob_refs())
        return len(self._blobs)

    def refs(self) -> tuple[str, ...]:
        if self.backend is not None:
            return self.backend.blob_refs()
        return tuple(self._blobs)

    def aliases(self) -> dict[str, str]:
        """Every known short/legacy ref -> full digest mapping."""
        return dict(self._aliases)

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        if self.backend is not None:
            return {ref: json.loads(self.backend.get_blob(ref))
                    for ref in self.backend.blob_refs()}
        return {ref: self.codecs.encode(obj)
                for ref, obj in self._blobs.items()}

    def load_dict(self, payload: dict[str, Any]) -> None:
        for ref, encoded in payload.items():
            canonical = self._canonical(encoded)
            digest = hashlib.sha256(
                canonical.encode("utf-8")).hexdigest()
            self._admit(digest, self.codecs.decode(encoded),
                        len(canonical), canonical)
            # refs recorded by truncating builds keep resolving
            if ref != digest:
                self._aliases.setdefault(ref, digest)
                if self.backend is not None:
                    self.backend.put_blob_alias(ref, digest)
