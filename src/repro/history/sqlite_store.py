"""Indexed SQLite-WAL backend for the design history database.

The JSON backend must parse the entire history file before it can
answer a single query; at the ROADMAP's million-instance scale that
load dominates every interaction.  This backend keeps the history in
one SQLite file (WAL journal) with:

* an ``instances`` table keyed by instance id, with the numeric id
  suffix and invocation number stored as columns so id allocation
  after reopen is two ``MAX()`` lookups instead of a scan;
* a redundant ``edges`` table — both dependency directions indexed —
  maintained incrementally on every write (the dask scheduler idiom:
  constant-time edge access in exchange for redundant state);
* a ``derivation_keys`` table persisting the re-execution cache's
  key -> outputs index, signature-guarded so stale encapsulation
  fingerprints are dropped rather than believed;
* content-addressed ``blobs`` (canonical JSON text keyed by full
  sha256) with a legacy short-ref alias table.

Reads decode rows lazily into :class:`EntityInstance` objects and
memoize them, so a backward trace over a 10^5-instance history touches
only the rows on the trace path.  Writes batch into one transaction,
committed by :meth:`flush` (persistence calls it on save) or every
``COMMIT_EVERY`` rows, whichever comes first.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import threading
import time
from typing import Any, Iterable, Iterator

from ..errors import HistoryError
from ..obs.profiling import statement_fingerprint
from .instance import EntityInstance
from .store import (BACKEND_SQLITE, HistoryStore, parse_invocation,
                    parse_serial)

#: Pending writes are committed at least this often.
COMMIT_EVERY = 5000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS instances(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    instance_id TEXT UNIQUE NOT NULL,
    entity_type TEXT NOT NULL,
    serial INTEGER NOT NULL DEFAULT 0,
    invocation TEXT NOT NULL DEFAULT '',
    invocation_num INTEGER NOT NULL DEFAULT 0,
    payload TEXT NOT NULL);
CREATE INDEX IF NOT EXISTS idx_instances_type
    ON instances(entity_type, seq);
CREATE INDEX IF NOT EXISTS idx_instances_invocation
    ON instances(invocation);
CREATE TABLE IF NOT EXISTS edges(
    antecedent TEXT NOT NULL,
    consumer TEXT NOT NULL,
    seq INTEGER NOT NULL);
CREATE INDEX IF NOT EXISTS idx_edges_forward
    ON edges(antecedent, seq);
CREATE INDEX IF NOT EXISTS idx_edges_reverse
    ON edges(consumer, seq);
CREATE TABLE IF NOT EXISTS derivation_keys(
    key TEXT NOT NULL,
    outputs TEXT NOT NULL,
    duration REAL NOT NULL DEFAULT 0,
    PRIMARY KEY(key, outputs));
CREATE TABLE IF NOT EXISTS blobs(
    digest TEXT PRIMARY KEY,
    canonical TEXT NOT NULL,
    size INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS blob_aliases(
    alias TEXT PRIMARY KEY,
    digest TEXT NOT NULL);
"""

#: ``meta`` key holding the encapsulation-registry signature the
#: derivation-key index was built against.
KEY_INDEX_SIGNATURE = "key_index_signature"

#: The read statements ``repro profile queries`` audits with
#: ``EXPLAIN QUERY PLAN``: every hot lookup this store issues, plus the
#: one deliberate full scan (history iteration has no useful index).
#: Entries are ``(name, statement, dummy params, expect_index)``.
AUDITED_QUERIES: tuple[tuple[str, str, tuple[Any, ...], bool], ...] = (
    ("instance-by-id",
     "SELECT payload FROM instances WHERE instance_id = ?",
     ("x",), True),
    ("instance-exists",
     "SELECT 1 FROM instances WHERE instance_id = ?",
     ("x",), True),
    ("instances-of-type",
     "SELECT instance_id FROM instances WHERE entity_type = ?"
     " ORDER BY seq",
     ("x",), True),
    ("instances-of-invocation",
     "SELECT instance_id FROM instances WHERE invocation = ?"
     " ORDER BY seq",
     ("x",), True),
    ("consumers-forward",
     "SELECT consumer FROM edges WHERE antecedent = ? ORDER BY seq",
     ("x",), True),
    ("highest-serial",
     "SELECT MAX(serial) FROM instances WHERE entity_type = ?",
     ("x",), True),
    ("blob-by-digest",
     "SELECT canonical FROM blobs WHERE digest = ?",
     ("x",), True),
    ("history-scan",
     "SELECT instance_id, payload FROM instances ORDER BY seq",
     (), False),
)


class SqliteHistoryStore(HistoryStore):
    """History storage in one indexed SQLite-WAL file."""

    kind = BACKEND_SQLITE
    blob_backend = True
    supports_key_index = True

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        try:
            self._conn = sqlite3.connect(str(self.path),
                                         check_same_thread=False)
        except sqlite3.Error as error:
            raise HistoryError(
                f"cannot open history database {self.path}: {error}"
            ) from error
        self._lock = threading.RLock()
        self._cache: dict[str, EntityInstance] = {}
        # forward edges are append-only: a memoized consumer list stays
        # valid as long as add() extends it, so staleness scans that
        # re-walk the same neighborhoods pay one SELECT per node, not
        # one per visit
        self._consumers: dict[str, list[str]] = {}
        self._pending = 0
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.DatabaseError as error:
            raise HistoryError(
                f"{self.path} is not a history database: {error}"
            ) from error

    # -- write batching ----------------------------------------------------
    def _wrote(self) -> None:
        self._pending += 1
        if self._pending >= COMMIT_EVERY:
            self._conn.commit()
            self._pending = 0

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()
            self._pending = 0

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    # -- query observability -----------------------------------------------
    # Every statement funnels through one of these four helpers.  With
    # no recorder attached they are a plain ``execute`` — the timing
    # branch costs nothing on the default path.
    def _execute(self, statement: str,
                 params: tuple[Any, ...] = ()) -> sqlite3.Cursor:
        recorder = self._recorder
        if recorder is None:
            return self._conn.execute(statement, params)
        started = time.perf_counter()
        cursor = self._conn.execute(statement, params)
        recorder.record(statement, time.perf_counter() - started,
                        rows=max(cursor.rowcount, 0))
        return cursor

    def _executemany(self, statement: str,
                     rows: list[tuple[Any, ...]]) -> None:
        recorder = self._recorder
        if recorder is None:
            self._conn.executemany(statement, rows)
            return
        started = time.perf_counter()
        self._conn.executemany(statement, rows)
        recorder.record(statement, time.perf_counter() - started,
                        rows=len(rows))

    def _fetchone(self, statement: str,
                  params: tuple[Any, ...] = ()) -> Any:
        recorder = self._recorder
        if recorder is None:
            return self._conn.execute(statement, params).fetchone()
        started = time.perf_counter()
        row = self._conn.execute(statement, params).fetchone()
        recorder.record(statement, time.perf_counter() - started,
                        rows=1 if row is not None else 0)
        return row

    def _fetchall(self, statement: str,
                  params: tuple[Any, ...] = ()) -> list[Any]:
        recorder = self._recorder
        if recorder is None:
            return self._conn.execute(statement, params).fetchall()
        started = time.perf_counter()
        rows = self._conn.execute(statement, params).fetchall()
        recorder.record(statement, time.perf_counter() - started,
                        rows=len(rows))
        return rows

    def query_plan_audit(self) -> tuple[dict[str, Any], ...]:
        """``EXPLAIN QUERY PLAN`` over every audited read statement.

        One entry per :data:`AUDITED_QUERIES` row: the normalized
        statement, its fingerprint, the plan details, and whether the
        plan uses an index / degrades to a full table scan.  ``repro
        profile queries`` renders this and fails on an indexed
        statement that regressed to a scan.
        """
        audits: list[dict[str, Any]] = []
        with self._lock:
            for name, statement, params, expect_index in AUDITED_QUERIES:
                rows = self._conn.execute(
                    "EXPLAIN QUERY PLAN " + statement, params).fetchall()
                plan = tuple(str(row[-1]) for row in rows)
                uses_index = any(
                    "USING INDEX" in detail
                    or "USING COVERING INDEX" in detail
                    or "PRIMARY KEY" in detail
                    for detail in plan)
                full_scan = any(
                    detail.startswith("SCAN") and "INDEX" not in detail
                    for detail in plan)
                audits.append({
                    "name": name,
                    "statement": " ".join(statement.split()),
                    "fingerprint": statement_fingerprint(statement),
                    "plan": plan,
                    "uses_index": uses_index,
                    "full_scan": full_scan,
                    "expect_index": expect_index,
                })
        return tuple(audits)

    # -- instance rows -------------------------------------------------
    def add(self, instance: EntityInstance) -> None:
        derivation = instance.derivation
        invocation = derivation.invocation if derivation is not None else ""
        entity_type, serial = parse_serial(instance.instance_id)
        with self._lock:
            cursor = self._execute(
                "INSERT INTO instances(instance_id, entity_type, serial,"
                " invocation, invocation_num, payload)"
                " VALUES(?, ?, ?, ?, ?, ?)",
                (instance.instance_id, instance.entity_type,
                 serial if entity_type == instance.entity_type else 0,
                 invocation, parse_invocation(invocation),
                 json.dumps(instance.to_dict(), sort_keys=True,
                            separators=(",", ":"))))
            seq = cursor.lastrowid
            if derivation is not None:
                self._executemany(
                    "INSERT INTO edges(antecedent, consumer, seq)"
                    " VALUES(?, ?, ?)",
                    [(antecedent, instance.instance_id, seq)
                     for antecedent in derivation.all_antecedents()])
                for antecedent in derivation.all_antecedents():
                    memo = self._consumers.get(antecedent)
                    if memo is not None:
                        memo.append(instance.instance_id)
            self._cache[instance.instance_id] = instance
            self._wrote()

    def replace(self, instance: EntityInstance) -> None:
        with self._lock:
            self._execute(
                "UPDATE instances SET payload = ? WHERE instance_id = ?",
                (json.dumps(instance.to_dict(), sort_keys=True,
                            separators=(",", ":")),
                 instance.instance_id))
            self._cache[instance.instance_id] = instance
            self._wrote()

    def get(self, instance_id: str) -> EntityInstance | None:
        with self._lock:
            cached = self._cache.get(instance_id)
            if cached is not None:
                return cached
            row = self._fetchone(
                "SELECT payload FROM instances WHERE instance_id = ?",
                (instance_id,))
            if row is None:
                return None
            instance = EntityInstance.from_dict(json.loads(row[0]))
            self._cache[instance_id] = instance
            return instance

    def __contains__(self, instance_id: str) -> bool:
        with self._lock:
            if instance_id in self._cache:
                return True
            row = self._fetchone(
                "SELECT 1 FROM instances WHERE instance_id = ?",
                (instance_id,))
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            return self._fetchone(
                "SELECT COUNT(*) FROM instances")[0]

    def iter_instances(self) -> Iterator[EntityInstance]:
        with self._lock:
            rows = self._fetchall(
                "SELECT instance_id, payload FROM instances"
                " ORDER BY seq")
        for instance_id, payload in rows:
            cached = self._cache.get(instance_id)
            if cached is not None:
                yield cached
            else:
                instance = EntityInstance.from_dict(json.loads(payload))
                self._cache[instance_id] = instance
                yield instance

    def ids_of_type(self, entity_type: str) -> tuple[str, ...]:
        with self._lock:
            rows = self._fetchall(
                "SELECT instance_id FROM instances WHERE entity_type = ?"
                " ORDER BY seq", (entity_type,))
        return tuple(row[0] for row in rows)

    # -- dependency indexes ----------------------------------------------
    def consumers_of(self, instance_id: str) -> tuple[str, ...]:
        with self._lock:
            memo = self._consumers.get(instance_id)
            if memo is None:
                rows = self._fetchall(
                    "SELECT consumer FROM edges WHERE antecedent = ?"
                    " ORDER BY seq", (instance_id,))
                memo = [row[0] for row in rows]
                self._consumers[instance_id] = memo
            return tuple(memo)

    def antecedents_of(self, instance_id: str) -> tuple[str, ...]:
        instance = self.get(instance_id)
        if instance is None or instance.derivation is None:
            return ()
        return instance.derivation.all_antecedents()

    def ids_for_invocation(self, invocation: str) -> tuple[str, ...]:
        with self._lock:
            rows = self._fetchall(
                "SELECT instance_id FROM instances WHERE invocation = ?"
                " ORDER BY seq", (invocation,))
        return tuple(row[0] for row in rows)

    # -- id allocation support ---------------------------------------------
    def highest_serial(self, entity_type: str) -> int:
        with self._lock:
            row = self._fetchone(
                "SELECT MAX(serial) FROM instances WHERE entity_type = ?",
                (entity_type,))
        return row[0] or 0

    def highest_invocation(self) -> int:
        with self._lock:
            row = self._fetchone(
                "SELECT MAX(invocation_num) FROM instances")
        return row[0] or 0

    # -- derivation-key index ---------------------------------------------
    def key_index_signature(self) -> str | None:
        with self._lock:
            row = self._fetchone(
                "SELECT value FROM meta WHERE key = ?",
                (KEY_INDEX_SIGNATURE,))
        return row[0] if row is not None else None

    def reset_key_index(self, signature: str) -> None:
        with self._lock:
            self._execute("DELETE FROM derivation_keys")
            self._execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                (KEY_INDEX_SIGNATURE, signature))
            self._wrote()

    def put_key_group(self, key: str,
                      outputs: Iterable[tuple[str, str]],
                      duration: float = 0.0) -> None:
        encoded = json.dumps([[t, i] for t, i in outputs],
                             sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._execute(
                "INSERT INTO derivation_keys(key, outputs, duration)"
                " VALUES(?, ?, ?) ON CONFLICT(key, outputs)"
                " DO UPDATE SET duration = MAX(duration, excluded.duration)",
                (key, encoded, duration))
            self._wrote()

    def iter_key_groups(self) -> Iterator[
            tuple[str, tuple[tuple[str, str], ...], float]]:
        with self._lock:
            rows = self._fetchall(
                "SELECT key, outputs, duration FROM derivation_keys"
                " ORDER BY key, outputs")
        for key, outputs, duration in rows:
            pairs = tuple((entity_type, instance_id)
                          for entity_type, instance_id
                          in json.loads(outputs))
            yield key, pairs, duration

    # -- content-addressed blobs --------------------------------------------
    def put_blob(self, digest: str, canonical: str, size: int) -> None:
        with self._lock:
            self._execute(
                "INSERT OR IGNORE INTO blobs(digest, canonical, size)"
                " VALUES(?, ?, ?)", (digest, canonical, size))
            self._wrote()

    def get_blob(self, digest: str) -> str | None:
        with self._lock:
            row = self._fetchone(
                "SELECT canonical FROM blobs WHERE digest = ?",
                (digest,))
        return row[0] if row is not None else None

    def blob_size(self, digest: str) -> int | None:
        with self._lock:
            row = self._fetchone(
                "SELECT size FROM blobs WHERE digest = ?",
                (digest,))
        return row[0] if row is not None else None

    def blob_refs(self) -> tuple[str, ...]:
        with self._lock:
            rows = self._fetchall(
                "SELECT digest FROM blobs ORDER BY digest")
        return tuple(row[0] for row in rows)

    def put_blob_alias(self, alias: str, digest: str) -> None:
        with self._lock:
            self._execute(
                "INSERT OR IGNORE INTO blob_aliases(alias, digest)"
                " VALUES(?, ?)", (alias, digest))
            self._wrote()

    def resolve_blob_alias(self, alias: str) -> str | None:
        with self._lock:
            row = self._fetchone(
                "SELECT digest FROM blob_aliases WHERE alias = ?",
                (alias,))
        return row[0] if row is not None else None

    def __repr__(self) -> str:
        return f"SqliteHistoryStore({str(self.path)!r})"
