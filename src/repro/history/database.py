"""The design history database.

Section 3.3: *"the task schema aids design data management by forming the
data schema for a design meta-data (design history) database"*.  The
database stores :class:`~repro.history.instance.EntityInstance` records
(meta-data) against a :class:`~repro.history.datastore.DataStore`
(physical data) and maintains the forward index that makes
forward-chaining queries (section 4.2) cheap.

Because *all design objects are created through the execution of flows*,
the two write paths are:

* :meth:`HistoryDatabase.install` — data/tools entering from outside any
  flow (source entities: stimuli, installed tools, imported libraries);
* :meth:`HistoryDatabase.record` — objects produced by a task invocation,
  always with a :class:`~repro.history.instance.DerivationRecord`.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Callable, Iterable

from ..errors import HistoryError, UnknownInstanceError
from ..obs import INSTANCE_CREATED, NO_OP_BUS, EventBus, SpanContext
from ..schema.schema import TaskSchema
from .datastore import CodecRegistry, DataStore
from .instance import DerivationRecord, EntityInstance
from .store import HistoryStore, InMemoryHistoryStore


class BrowseFilter:
    """Filters of the Fig. 9 instance browser.

    Keywords match case-insensitively against name, comment and
    annotation values; date limits bound the creation time-stamp; the
    user limit matches the creating user exactly.
    """

    def __init__(self, *, keywords: Iterable[str] = (),
                 since: float | None = None, until: float | None = None,
                 user: str | None = None) -> None:
        self.keywords = tuple(k.lower() for k in keywords)
        self.since = since
        self.until = until
        self.user = user

    def matches(self, instance: EntityInstance) -> bool:
        if self.user is not None and instance.user != self.user:
            return False
        if self.since is not None and instance.timestamp < self.since:
            return False
        if self.until is not None and instance.timestamp > self.until:
            return False
        if self.keywords:
            haystack = " ".join(
                [instance.name, instance.comment, instance.instance_id]
                + [v for _, v in instance.annotations]).lower()
            if not all(keyword in haystack for keyword in self.keywords):
                return False
        return True


class HistoryDatabase:
    """Instance meta-data store, dependency indexes and persistence.

    All reads and writes route through a
    :class:`~repro.history.store.HistoryStore` backend — dictionaries
    for the compatibility JSON format, or the indexed SQLite-WAL store
    (:class:`~repro.history.sqlite_store.SqliteHistoryStore`) — so the
    chaining/staleness query layers stay backend-agnostic while edge
    lookups stay constant-time at any history size.
    """

    def __init__(self, schema: TaskSchema, *,
                 datastore: DataStore | None = None,
                 codecs: CodecRegistry | None = None,
                 clock: Callable[[], float] | None = None,
                 bus: EventBus | None = None,
                 store: HistoryStore | None = None) -> None:
        self.schema = schema
        self.store = store if store is not None else InMemoryHistoryStore()
        if datastore is not None:
            self.datastore = datastore
        else:
            self.datastore = DataStore(
                codecs,
                backend=self.store if self.store.blob_backend else None)
        self.bus = bus if bus is not None else NO_OP_BUS
        self._clock = clock if clock is not None else time.time
        # id counters are seeded lazily from the store's maxima, so a
        # reopened (possibly huge) history never needs a warm-up scan
        self._type_counters: dict[str, itertools.count] = {}
        self._invocation_counter: itertools.count | None = None
        # secondary-index maintainers (e.g. the derivation cache) called
        # with every newly added instance; see add_record_listener()
        self._record_listeners: list[Callable[[EntityInstance], None]] = []

    @property
    def backend(self) -> str:
        """Name of the storage backend (``json``/``sqlite``)."""
        return self.store.kind

    # ------------------------------------------------------------------
    # identifier & invocation allocation
    # ------------------------------------------------------------------
    def _new_id(self, entity_type: str) -> str:
        counter = self._type_counters.get(entity_type)
        if counter is None:
            counter = itertools.count(
                self.store.highest_serial(entity_type) + 1)
            self._type_counters[entity_type] = counter
        return f"{entity_type}#{next(counter):04d}"

    def new_invocation_id(self) -> str:
        """Fresh identifier grouping sibling outputs of one task run.

        The counter resumes past the highest invocation on record:
        reused invocation ids would merge unrelated runs into fake
        multi-output sibling groups (breaking derivation grouping).
        """
        if self._invocation_counter is None:
            self._invocation_counter = itertools.count(
                self.store.highest_invocation() + 1)
        return f"run#{next(self._invocation_counter):05d}"

    # ------------------------------------------------------------------
    # write paths
    # ------------------------------------------------------------------
    def install(self, entity_type: str, data: Any, *, user: str = "",
                name: str = "", comment: str = "",
                annotations: dict[str, str] | None = None
                ) -> EntityInstance:
        """Register data or a tool entering the design from outside."""
        return self._add(entity_type, data, None, user=user, name=name,
                         comment=comment, annotations=annotations)

    def record(self, entity_type: str, data: Any,
               derivation: DerivationRecord, *, user: str = "",
               name: str = "", comment: str = "",
               annotations: dict[str, str] | None = None,
               trace: SpanContext | None = None) -> EntityInstance:
        """Register an object produced by a task invocation.

        ``trace`` carries the producing span's identity when the run is
        traced; the ids are stamped into the instance so provenance and
        timing stay joinable (``repro history`` prints the span).
        """
        if derivation is None:
            raise HistoryError("record() requires a derivation; use "
                               "install() for external data")
        self._check_derivation(entity_type, derivation)
        return self._add(entity_type, data, derivation, user=user,
                         name=name, comment=comment,
                         annotations=annotations, trace=trace)

    def _check_derivation(self, entity_type: str,
                          derivation: DerivationRecord) -> None:
        for antecedent in derivation.all_antecedents():
            if antecedent not in self.store:
                raise UnknownInstanceError(antecedent)
        construction = self.schema.construction(entity_type)
        if construction is None:
            raise HistoryError(
                f"{entity_type!r} has no construction method; a derived "
                "instance of it cannot exist")
        if construction.tool is None:
            if derivation.tool is not None:
                raise HistoryError(
                    f"composed entity {entity_type!r} must not record a "
                    "tool in its derivation")
        else:
            if derivation.tool is None:
                raise HistoryError(
                    f"{entity_type!r} requires tool "
                    f"{construction.tool!r} in its derivation")
            tool_instance = self.get(derivation.tool)
            if not self.schema.is_subtype(tool_instance.entity_type,
                                          construction.tool):
                raise HistoryError(
                    f"{entity_type!r} derivation names tool "
                    f"{tool_instance.entity_type!r}, schema requires "
                    f"{construction.tool!r}")
        valid_roles = {d.role: d for d in construction.inputs}
        for role, input_id in derivation.inputs:
            if role not in valid_roles:
                raise HistoryError(
                    f"{entity_type!r} derivation uses unknown input role "
                    f"{role!r}")
            input_instance = self.get(input_id)
            if not self.schema.is_subtype(input_instance.entity_type,
                                          valid_roles[role].target):
                raise HistoryError(
                    f"{entity_type!r} role {role!r} expects "
                    f"{valid_roles[role].target!r}, got "
                    f"{input_instance.entity_type!r}")

    def _add(self, entity_type: str, data: Any,
             derivation: DerivationRecord | None, *, user: str, name: str,
             comment: str, annotations: dict[str, str] | None,
             trace: SpanContext | None = None) -> EntityInstance:
        self.schema.entity(entity_type)  # raises if unknown
        data_ref = None if data is None else self.datastore.put(data)
        instance = EntityInstance(
            instance_id=self._new_id(entity_type),
            entity_type=entity_type,
            user=user,
            timestamp=self._clock(),
            name=name,
            comment=comment,
            data_ref=data_ref,
            derivation=derivation,
            annotations=tuple(sorted((annotations or {}).items())),
            trace_id=trace.trace_id if trace is not None else "",
            span_id=trace.span_id if trace is not None else "",
        )
        self._index(instance)
        for listener in self._record_listeners:
            listener(instance)
        if self.bus.enabled:
            payload = {"entity_type": entity_type,
                       "instance_id": instance.instance_id,
                       "installed": derivation is None}
            if trace is not None:
                payload["trace_id"] = trace.trace_id
                payload["span_id"] = trace.span_id
            self.bus.emit(
                INSTANCE_CREATED,
                flow=(annotations or {}).get("flow", ""),
                invocation_id=(derivation.invocation
                               if derivation is not None else ""),
                machine=(annotations or {}).get("machine", ""),
                payload=payload)
        return instance

    def add_record_listener(
            self, listener: Callable[[EntityInstance], None]) -> None:
        """Call ``listener(instance)`` for every instance added from now.

        Listeners maintain secondary indexes (the derivation cache's
        key -> instance-ids map); they run synchronously inside the write
        path, after the instance is indexed.
        """
        if listener not in self._record_listeners:
            self._record_listeners.append(listener)

    def remove_record_listener(
            self, listener: Callable[[EntityInstance], None]) -> None:
        if listener in self._record_listeners:
            self._record_listeners.remove(listener)

    def _index(self, instance: EntityInstance) -> None:
        # the store maintains the type, forward/reverse dependency and
        # invocation indexes incrementally inside its write path
        self.store.add(instance)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> EntityInstance:
        instance = self.store.get(instance_id)
        if instance is None:
            raise UnknownInstanceError(instance_id)
        return instance

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self.store

    def __len__(self) -> int:
        return len(self.store)

    def data(self, instance: EntityInstance | str) -> Any:
        """Fetch the physical data behind an instance (or id)."""
        if isinstance(instance, str):
            instance = self.get(instance)
        if instance.data_ref is None:
            return None
        return self.datastore.get(instance.data_ref)

    def instances(self) -> tuple[EntityInstance, ...]:
        return tuple(self.store.iter_instances())

    def iter_instances(self) -> Iterable[EntityInstance]:
        """Stream instances in insertion order without materializing."""
        return self.store.iter_instances()

    def browse(self, entity_type: str | None = None, *,
               include_subtypes: bool = True,
               filters: BrowseFilter | None = None
               ) -> tuple[EntityInstance, ...]:
        """List instances, newest last (as the Fig. 9 browser does)."""
        if entity_type is None:
            selected = list(self.store.iter_instances())
        else:
            self.schema.entity(entity_type)
            types = [entity_type]
            if include_subtypes:
                types.extend(self.schema.descendants_of(entity_type))
            candidates = itertools.chain.from_iterable(
                self.store.ids_of_type(t) for t in types)
            selected = [self.get(i) for i in candidates]
        if filters is not None:
            selected = [i for i in selected if filters.matches(i)]
        selected.sort(key=lambda i: (i.timestamp, i.instance_id))
        return tuple(selected)

    def latest(self, entity_type: str, *,
               include_subtypes: bool = True) -> EntityInstance:
        """Most recently created instance of a type."""
        found = self.browse(entity_type, include_subtypes=include_subtypes)
        if not found:
            raise HistoryError(f"no instances of {entity_type!r}")
        return found[-1]

    def consumers_of(self, instance_id: str) -> tuple[str, ...]:
        """Instances whose derivation directly uses the given instance."""
        self.get(instance_id)
        return self.store.consumers_of(instance_id)

    def antecedents_of(self, instance_id: str) -> tuple[str, ...]:
        """Instances the given instance's derivation directly uses."""
        self.get(instance_id)
        return self.store.antecedents_of(instance_id)

    def update_metadata(self, instance_id: str, *,
                        name: str | None = None,
                        comment: str | None = None,
                        annotations: dict[str, str] | None = None
                        ) -> EntityInstance:
        """Annotate an instance (the browser's Comment/Edit operation).

        Derivation meta-data is immutable; only the human-facing fields
        may change.
        """
        instance = self.get(instance_id)
        if name is not None:
            instance = instance.renamed(name)
        if comment is not None:
            instance = instance.renamed(instance.name, comment)
        if annotations:
            instance = instance.annotated(**annotations)
        self.store.replace(instance)
        return instance

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema.name,
            "instances": [i.to_dict()
                          for i in self.store.iter_instances()],
            "blobs": self.datastore.to_dict(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, schema: TaskSchema, payload: dict[str, Any], *,
                  codecs: CodecRegistry | None = None,
                  clock: Callable[[], float] | None = None,
                  bus: EventBus | None = None,
                  store: HistoryStore | None = None) -> "HistoryDatabase":
        db = cls(schema, codecs=codecs, clock=clock, bus=bus, store=store)
        db.datastore.load_dict(payload.get("blobs", {}))
        for spec in payload.get("instances", ()):
            db._index(EntityInstance.from_dict(spec))
        # id/invocation counters seed themselves lazily from the
        # store's maxima, so nothing to recompute here
        return db

    @classmethod
    def load(cls, schema: TaskSchema, path: str, *,
             codecs: CodecRegistry | None = None) -> "HistoryDatabase":
        return cls.from_dict(schema, read_history_json(path),
                             codecs=codecs)

    def converted(self, store: HistoryStore, *,
                  codecs: CodecRegistry | None = None
                  ) -> "HistoryDatabase":
        """Copy this history verbatim into a different storage backend.

        Instance ids, derivation records, timestamps, data refs and
        legacy blob aliases are preserved exactly, so both copies answer
        every derivation query identically (`repro migrate` relies on
        this).
        """
        db = HistoryDatabase(self.schema, codecs=codecs,
                             clock=self._clock, bus=self.bus, store=store)
        db.datastore.load_dict(self.datastore.to_dict())
        for alias, digest in self.datastore.aliases().items():
            db.datastore._aliases.setdefault(alias, digest)
            if db.datastore.backend is not None:
                db.datastore.backend.put_blob_alias(alias, digest)
        for instance in self.store.iter_instances():
            if instance.instance_id not in db.store:
                db.store.add(instance)
        db.store.flush()
        return db

    def __repr__(self) -> str:
        return (f"HistoryDatabase({self.schema.name!r}, "
                f"{len(self.store)} instances, "
                f"backend={self.store.kind!r})")


def read_history_json(path: str) -> dict[str, Any]:
    """Parse a JSON history file with a diagnosable failure mode.

    A truncated or corrupted file (killed writer, partial copy) names
    the offending path and byte offset instead of surfacing an opaque
    ``JSONDecodeError`` with no context.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        offset = len(text[:error.pos].encode("utf-8"))
        total = len(text.encode("utf-8"))
        raise HistoryError(
            f"corrupt history file {path}: {error.msg} at byte offset "
            f"{offset} (of {total} bytes); the file is truncated or "
            "was written by an interrupted save") from error
