"""The design history database.

Section 3.3: *"the task schema aids design data management by forming the
data schema for a design meta-data (design history) database"*.  The
database stores :class:`~repro.history.instance.EntityInstance` records
(meta-data) against a :class:`~repro.history.datastore.DataStore`
(physical data) and maintains the forward index that makes
forward-chaining queries (section 4.2) cheap.

Because *all design objects are created through the execution of flows*,
the two write paths are:

* :meth:`HistoryDatabase.install` — data/tools entering from outside any
  flow (source entities: stimuli, installed tools, imported libraries);
* :meth:`HistoryDatabase.record` — objects produced by a task invocation,
  always with a :class:`~repro.history.instance.DerivationRecord`.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Callable, Iterable

from ..errors import HistoryError, UnknownInstanceError
from ..obs import INSTANCE_CREATED, NO_OP_BUS, EventBus, SpanContext
from ..schema.schema import TaskSchema
from .datastore import CodecRegistry, DataStore
from .instance import DerivationRecord, EntityInstance


class BrowseFilter:
    """Filters of the Fig. 9 instance browser.

    Keywords match case-insensitively against name, comment and
    annotation values; date limits bound the creation time-stamp; the
    user limit matches the creating user exactly.
    """

    def __init__(self, *, keywords: Iterable[str] = (),
                 since: float | None = None, until: float | None = None,
                 user: str | None = None) -> None:
        self.keywords = tuple(k.lower() for k in keywords)
        self.since = since
        self.until = until
        self.user = user

    def matches(self, instance: EntityInstance) -> bool:
        if self.user is not None and instance.user != self.user:
            return False
        if self.since is not None and instance.timestamp < self.since:
            return False
        if self.until is not None and instance.timestamp > self.until:
            return False
        if self.keywords:
            haystack = " ".join(
                [instance.name, instance.comment, instance.instance_id]
                + [v for _, v in instance.annotations]).lower()
            if not all(keyword in haystack for keyword in self.keywords):
                return False
        return True


class HistoryDatabase:
    """Instance meta-data store, forward index and persistence."""

    def __init__(self, schema: TaskSchema, *,
                 datastore: DataStore | None = None,
                 codecs: CodecRegistry | None = None,
                 clock: Callable[[], float] | None = None,
                 bus: EventBus | None = None) -> None:
        self.schema = schema
        self.datastore = datastore if datastore is not None \
            else DataStore(codecs)
        self.bus = bus if bus is not None else NO_OP_BUS
        self._clock = clock if clock is not None else time.time
        self._instances: dict[str, EntityInstance] = {}
        self._by_type: dict[str, list[str]] = {}
        self._forward: dict[str, list[str]] = {}
        self._type_counters: dict[str, itertools.count] = {}
        self._invocation_counter = itertools.count(1)
        # secondary-index maintainers (e.g. the derivation cache) called
        # with every newly added instance; see add_record_listener()
        self._record_listeners: list[Callable[[EntityInstance], None]] = []

    # ------------------------------------------------------------------
    # identifier & invocation allocation
    # ------------------------------------------------------------------
    def _new_id(self, entity_type: str) -> str:
        counter = self._type_counters.setdefault(entity_type,
                                                 itertools.count(1))
        return f"{entity_type}#{next(counter):04d}"

    def new_invocation_id(self) -> str:
        """Fresh identifier grouping sibling outputs of one task run."""
        return f"run#{next(self._invocation_counter):05d}"

    # ------------------------------------------------------------------
    # write paths
    # ------------------------------------------------------------------
    def install(self, entity_type: str, data: Any, *, user: str = "",
                name: str = "", comment: str = "",
                annotations: dict[str, str] | None = None
                ) -> EntityInstance:
        """Register data or a tool entering the design from outside."""
        return self._add(entity_type, data, None, user=user, name=name,
                         comment=comment, annotations=annotations)

    def record(self, entity_type: str, data: Any,
               derivation: DerivationRecord, *, user: str = "",
               name: str = "", comment: str = "",
               annotations: dict[str, str] | None = None,
               trace: SpanContext | None = None) -> EntityInstance:
        """Register an object produced by a task invocation.

        ``trace`` carries the producing span's identity when the run is
        traced; the ids are stamped into the instance so provenance and
        timing stay joinable (``repro history`` prints the span).
        """
        if derivation is None:
            raise HistoryError("record() requires a derivation; use "
                               "install() for external data")
        self._check_derivation(entity_type, derivation)
        return self._add(entity_type, data, derivation, user=user,
                         name=name, comment=comment,
                         annotations=annotations, trace=trace)

    def _check_derivation(self, entity_type: str,
                          derivation: DerivationRecord) -> None:
        for antecedent in derivation.all_antecedents():
            if antecedent not in self._instances:
                raise UnknownInstanceError(antecedent)
        construction = self.schema.construction(entity_type)
        if construction is None:
            raise HistoryError(
                f"{entity_type!r} has no construction method; a derived "
                "instance of it cannot exist")
        if construction.tool is None:
            if derivation.tool is not None:
                raise HistoryError(
                    f"composed entity {entity_type!r} must not record a "
                    "tool in its derivation")
        else:
            if derivation.tool is None:
                raise HistoryError(
                    f"{entity_type!r} requires tool "
                    f"{construction.tool!r} in its derivation")
            tool_instance = self._instances[derivation.tool]
            if not self.schema.is_subtype(tool_instance.entity_type,
                                          construction.tool):
                raise HistoryError(
                    f"{entity_type!r} derivation names tool "
                    f"{tool_instance.entity_type!r}, schema requires "
                    f"{construction.tool!r}")
        valid_roles = {d.role: d for d in construction.inputs}
        for role, input_id in derivation.inputs:
            if role not in valid_roles:
                raise HistoryError(
                    f"{entity_type!r} derivation uses unknown input role "
                    f"{role!r}")
            input_instance = self._instances[input_id]
            if not self.schema.is_subtype(input_instance.entity_type,
                                          valid_roles[role].target):
                raise HistoryError(
                    f"{entity_type!r} role {role!r} expects "
                    f"{valid_roles[role].target!r}, got "
                    f"{input_instance.entity_type!r}")

    def _add(self, entity_type: str, data: Any,
             derivation: DerivationRecord | None, *, user: str, name: str,
             comment: str, annotations: dict[str, str] | None,
             trace: SpanContext | None = None) -> EntityInstance:
        self.schema.entity(entity_type)  # raises if unknown
        data_ref = None if data is None else self.datastore.put(data)
        instance = EntityInstance(
            instance_id=self._new_id(entity_type),
            entity_type=entity_type,
            user=user,
            timestamp=self._clock(),
            name=name,
            comment=comment,
            data_ref=data_ref,
            derivation=derivation,
            annotations=tuple(sorted((annotations or {}).items())),
            trace_id=trace.trace_id if trace is not None else "",
            span_id=trace.span_id if trace is not None else "",
        )
        self._index(instance)
        for listener in self._record_listeners:
            listener(instance)
        if self.bus.enabled:
            payload = {"entity_type": entity_type,
                       "instance_id": instance.instance_id,
                       "installed": derivation is None}
            if trace is not None:
                payload["trace_id"] = trace.trace_id
                payload["span_id"] = trace.span_id
            self.bus.emit(
                INSTANCE_CREATED,
                flow=(annotations or {}).get("flow", ""),
                invocation_id=(derivation.invocation
                               if derivation is not None else ""),
                machine=(annotations or {}).get("machine", ""),
                payload=payload)
        return instance

    def add_record_listener(
            self, listener: Callable[[EntityInstance], None]) -> None:
        """Call ``listener(instance)`` for every instance added from now.

        Listeners maintain secondary indexes (the derivation cache's
        key -> instance-ids map); they run synchronously inside the write
        path, after the instance is indexed.
        """
        if listener not in self._record_listeners:
            self._record_listeners.append(listener)

    def remove_record_listener(
            self, listener: Callable[[EntityInstance], None]) -> None:
        if listener in self._record_listeners:
            self._record_listeners.remove(listener)

    def _index(self, instance: EntityInstance) -> None:
        self._instances[instance.instance_id] = instance
        self._by_type.setdefault(instance.entity_type, []).append(
            instance.instance_id)
        if instance.derivation is not None:
            for antecedent in instance.derivation.all_antecedents():
                self._forward.setdefault(antecedent, []).append(
                    instance.instance_id)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, instance_id: str) -> EntityInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise UnknownInstanceError(instance_id) from None

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def data(self, instance: EntityInstance | str) -> Any:
        """Fetch the physical data behind an instance (or id)."""
        if isinstance(instance, str):
            instance = self.get(instance)
        if instance.data_ref is None:
            return None
        return self.datastore.get(instance.data_ref)

    def instances(self) -> tuple[EntityInstance, ...]:
        return tuple(self._instances.values())

    def browse(self, entity_type: str | None = None, *,
               include_subtypes: bool = True,
               filters: BrowseFilter | None = None
               ) -> tuple[EntityInstance, ...]:
        """List instances, newest last (as the Fig. 9 browser does)."""
        if entity_type is None:
            candidates: Iterable[str] = self._instances
        else:
            self.schema.entity(entity_type)
            types = [entity_type]
            if include_subtypes:
                types.extend(self.schema.descendants_of(entity_type))
            candidates = itertools.chain.from_iterable(
                self._by_type.get(t, ()) for t in types)
        selected = [self._instances[i] for i in candidates]
        if filters is not None:
            selected = [i for i in selected if filters.matches(i)]
        selected.sort(key=lambda i: (i.timestamp, i.instance_id))
        return tuple(selected)

    def latest(self, entity_type: str, *,
               include_subtypes: bool = True) -> EntityInstance:
        """Most recently created instance of a type."""
        found = self.browse(entity_type, include_subtypes=include_subtypes)
        if not found:
            raise HistoryError(f"no instances of {entity_type!r}")
        return found[-1]

    def consumers_of(self, instance_id: str) -> tuple[str, ...]:
        """Instances whose derivation directly uses the given instance."""
        self.get(instance_id)
        return tuple(self._forward.get(instance_id, ()))

    def update_metadata(self, instance_id: str, *,
                        name: str | None = None,
                        comment: str | None = None,
                        annotations: dict[str, str] | None = None
                        ) -> EntityInstance:
        """Annotate an instance (the browser's Comment/Edit operation).

        Derivation meta-data is immutable; only the human-facing fields
        may change.
        """
        instance = self.get(instance_id)
        if name is not None:
            instance = instance.renamed(name)
        if comment is not None:
            instance = instance.renamed(instance.name, comment)
        if annotations:
            instance = instance.annotated(**annotations)
        self._instances[instance_id] = instance
        return instance

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema.name,
            "instances": [i.to_dict() for i in self._instances.values()],
            "blobs": self.datastore.to_dict(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, schema: TaskSchema, payload: dict[str, Any], *,
                  codecs: CodecRegistry | None = None,
                  clock: Callable[[], float] | None = None,
                  bus: EventBus | None = None) -> "HistoryDatabase":
        db = cls(schema, codecs=codecs, clock=clock, bus=bus)
        db.datastore.load_dict(payload.get("blobs", {}))
        for spec in payload.get("instances", ()):
            db._index(EntityInstance.from_dict(spec))
        # advance id counters past what was loaded
        highest_invocation = 0
        for instance in db._instances.values():
            entity_type, _, number = instance.instance_id.partition("#")
            if number.isdigit():
                counter = db._type_counters.setdefault(
                    entity_type, itertools.count(1))
                current = next(counter)
                target = max(current, int(number) + 1)
                db._type_counters[entity_type] = itertools.count(target)
            if instance.derivation is not None:
                _, _, run = instance.derivation.invocation.partition("#")
                if run.isdigit():
                    highest_invocation = max(highest_invocation, int(run))
        # the invocation counter must also survive reload: reused
        # invocation ids would merge unrelated runs into fake
        # multi-output sibling groups (breaking derivation grouping)
        db._invocation_counter = itertools.count(highest_invocation + 1)
        return db

    @classmethod
    def load(cls, schema: TaskSchema, path: str, *,
             codecs: CodecRegistry | None = None) -> "HistoryDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(schema, json.load(handle), codecs=codecs)

    def __repr__(self) -> str:
        return (f"HistoryDatabase({self.schema.name!r}, "
                f"{len(self._instances)} instances)")
