"""Design history: instances, derivation records, traces and queries.

Implements the paper's claim that *"if flows are properly defined, queries
into the derivation history of design objects obviate the need for
additional version management schemes"* (section 1): every design object
gets one derivation record; backward/forward chaining, flow-template
queries, version trees and staleness checks are all derived views.
"""

from .consistency import (StaleInput, all_up_to_date, consistency_report,
                          forward_closure, is_stale, is_up_to_date,
                          newest_version, refresh_plan, retrace,
                          stale_inputs, successor_versions)
from .database import (BrowseFilter, HistoryDatabase, read_history_json)
from .datastore import GLOBAL_CODECS, Codec, CodecRegistry, DataStore
from .instance import DerivationRecord, EntityInstance
from .sqlite_store import SqliteHistoryStore
from .store import (BACKEND_JSON, BACKEND_SQLITE, BACKENDS, HistoryStore,
                    InMemoryHistoryStore)
from .statistics import (HistoryStatistics, derivation_depth,
                         history_statistics, trace_size)
from .query import (antecedents_of_type, count_instances,
                    dependents_of_type, derivation_inputs, derivation_tool,
                    find_bindings, template_query, was_performed)
from .trace import (FlowTrace, TraceEdge, VersionNode, backward_trace,
                    forward_trace, full_trace, lineage)

__all__ = [
    "BACKEND_JSON",
    "BACKEND_SQLITE",
    "BACKENDS",
    "BrowseFilter",
    "Codec",
    "CodecRegistry",
    "DataStore",
    "DerivationRecord",
    "EntityInstance",
    "FlowTrace",
    "GLOBAL_CODECS",
    "HistoryStatistics",
    "HistoryDatabase",
    "HistoryStore",
    "InMemoryHistoryStore",
    "SqliteHistoryStore",
    "StaleInput",
    "TraceEdge",
    "VersionNode",
    "all_up_to_date",
    "antecedents_of_type",
    "backward_trace",
    "consistency_report",
    "count_instances",
    "dependents_of_type",
    "derivation_depth",
    "derivation_inputs",
    "derivation_tool",
    "find_bindings",
    "forward_closure",
    "forward_trace",
    "full_trace",
    "history_statistics",
    "is_stale",
    "is_up_to_date",
    "lineage",
    "newest_version",
    "read_history_json",
    "refresh_plan",
    "retrace",
    "stale_inputs",
    "successor_versions",
    "template_query",
    "trace_size",
    "was_performed",
]
