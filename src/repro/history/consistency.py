"""Design consistency maintenance (paper section 3.3).

*"Design consistency maintenance (i.e., automatic retracing of a flow to
update derived design data), is readily supported through the storage of
the design history.  Queries into the design history can quickly determine
whether such retracing need occur."*

Staleness is defined version-wise: a derived instance is **stale** when
some instance in its derivation history has a newer *successor version*
(a descendant through editing tasks within the same entity family).
:func:`refresh_plan` turns a stale instance's backward trace into an
executable task graph with the stale inputs rebound to their newest
versions and every affected intermediate cleared for recomputation;
:func:`retrace` executes that plan through any object with an
``execute(flow)`` method (the :class:`repro.execution.executor.FlowExecutor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from ..core.taskgraph import TaskGraph
from ..errors import ConsistencyError
from .database import HistoryDatabase
from .instance import EntityInstance
from .trace import backward_trace, lineage


class FlowRunner(Protocol):
    """Anything that can execute a bound task graph (duck-typed to avoid
    a package cycle between history and execution)."""

    def execute(self, flow: TaskGraph) -> object: ...


def forward_closure(db: HistoryDatabase, instance_id: str) -> set[str]:
    """Ids reachable from an instance along the forward index.

    A dirty-set propagation primitive: walks ``db.consumers_of`` (a
    constant-time index lookup per edge on every backend) without
    materializing trace edges or pulling unrelated antecedents the way
    :func:`forward_trace` must for its richer DAG view.
    """
    seen = {instance_id}
    frontier = [instance_id]
    while frontier:
        for consumer in db.consumers_of(frontier.pop()):
            if consumer not in seen:
                seen.add(consumer)
                frontier.append(consumer)
    return seen


def successor_versions(db: HistoryDatabase, instance_id: str
                       ) -> tuple[EntityInstance, ...]:
    """Newer versions of an instance within its entity family.

    A successor is a forward-chained descendant whose version lineage
    passes through the given instance — i.e. it was reached by a chain of
    editing tasks starting from it.  Only the forward closure is walked:
    any instance whose lineage passes through ``instance_id`` is by
    definition forward-reachable from it, so the closure loses no
    candidates while skipping the full trace construction.
    """
    instance = db.get(instance_id)
    family = db.schema.root_of(instance.entity_type)
    out = []
    for other_id in forward_closure(db, instance_id):
        if other_id == instance_id:
            continue
        other = db.get(other_id)
        if not db.schema.is_subtype(other.entity_type, family):
            continue
        if instance_id in lineage(db, other_id, family):
            out.append(other)
    out.sort(key=lambda i: (i.timestamp, i.instance_id))
    return tuple(out)


def newest_version(db: HistoryDatabase, instance_id: str) -> EntityInstance:
    """The latest successor version (the instance itself if current)."""
    successors = successor_versions(db, instance_id)
    return successors[-1] if successors else db.get(instance_id)


@dataclass(frozen=True)
class StaleInput:
    """One reason an instance is out of date."""

    used: str        # instance id recorded in the derivation history
    newest: str      # its most recent successor version

    def __str__(self) -> str:
        return f"{self.used} superseded by {self.newest}"


def stale_inputs(db: HistoryDatabase, instance_id: str
                 ) -> tuple[StaleInput, ...]:
    """Instances in the derivation history that have newer versions.

    Ancestors in the instance's *own* version lineage are exempt: an
    edited netlist is not stale merely because it supersedes its own
    ``previous`` input — superseding it is the purpose of the edit.
    Successor versions whose lineage passes through the instance itself
    are likewise not counted against it.
    """
    own_lineage = set(lineage(db, instance_id))
    trace = backward_trace(db, instance_id)
    in_trace = set(trace.instances())
    out = []
    for used_id in trace.instances():
        if used_id == instance_id or used_id in own_lineage:
            continue
        candidates = [
            s for s in successor_versions(db, used_id)
            if instance_id not in lineage(db, s.instance_id)
            # a successor already inside the derivation means the
            # derivation passes through the newer version: not stale
            and s.instance_id not in in_trace]
        if candidates:
            out.append(StaleInput(used_id, candidates[-1].instance_id))
    return tuple(out)


def is_stale(db: HistoryDatabase, instance_id: str) -> bool:
    """True when the instance's derivation used superseded data."""
    return bool(stale_inputs(db, instance_id))


def is_up_to_date(db: HistoryDatabase, instance_id: str) -> bool:
    return not is_stale(db, instance_id)


def all_up_to_date(db: HistoryDatabase,
                   instance_ids: Iterable[str]) -> bool:
    """True when every instance exists and none is stale.

    The derivation cache's reuse gate: a remembered result may only be
    coalesced into a new execution while its entire derivation history is
    still current.  Unknown ids (e.g. an index restored against a
    different history) count as not up to date rather than raising.
    """
    for instance_id in instance_ids:
        if instance_id not in db or is_stale(db, instance_id):
            return False
    return True


def refresh_plan(db: HistoryDatabase, instance_id: str,
                 name: str = "retrace") -> TaskGraph:
    """Build the retrace flow for a stale instance.

    The backward trace becomes a task graph; every superseded instance is
    rebound to its newest version, and every node downstream of a change
    has its binding cleared so the executor recomputes it.  Raises
    :class:`ConsistencyError` if the instance is already up to date.
    """
    stale = {s.used: s.newest for s in stale_inputs(db, instance_id)}
    if not stale:
        raise ConsistencyError(
            f"{instance_id!r} is up to date; nothing to retrace")
    trace = backward_trace(db, instance_id)
    graph = trace.to_task_graph(name)
    dirty: set[str] = set()
    for node_id in graph.topological_order():
        node = graph.node(node_id)
        bound = node.bindings[0] if node.bindings else None
        suppliers_dirty = any(e.supplier in dirty
                              for e in graph.suppliers(node_id))
        if bound is not None and bound in stale:
            node.bind(stale[bound])
            dirty.add(node_id)
        elif suppliers_dirty:
            node.unbind()
            dirty.add(node_id)
    if not dirty:
        raise ConsistencyError(
            f"stale inputs of {instance_id!r} do not appear in its "
            "retrace flow")
    return graph


def retrace(db: HistoryDatabase, instance_id: str, runner: FlowRunner,
            name: str = "retrace"):
    """Execute the refresh plan; return the runner's execution report."""
    plan = refresh_plan(db, instance_id, name)
    return runner.execute(plan)


def consistency_report(db: HistoryDatabase, entity_type: str | None = None
                       ) -> dict[str, tuple[StaleInput, ...]]:
    """Map every stale instance (optionally of one type) to its reasons."""
    report: dict[str, tuple[StaleInput, ...]] = {}
    for instance in db.browse(entity_type):
        if instance.derivation is None:
            continue
        reasons = stale_inputs(db, instance.instance_id)
        if reasons:
            report[instance.instance_id] = reasons
    return report
