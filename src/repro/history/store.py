"""Pluggable storage backends for the design history database.

The paper's history database answers three query families — backward
chaining, forward chaining and staleness scans — all of which reduce to
edge lookups over the instance-derivation DAG.  Following the dask
scheduler idiom, a :class:`HistoryStore` keeps **redundant** forward and
reverse dependency indexes so both directions are constant-time,
maintained incrementally inside the write path rather than recomputed
by whole-history scans.

Two implementations exist:

* :class:`InMemoryHistoryStore` — plain dictionaries, the compatibility
  default behind the JSON persistence format (``history.json``);
* :class:`~repro.history.sqlite_store.SqliteHistoryStore` — an indexed
  SQLite-WAL file with persistent dependency indexes, a derivation-key
  index for the re-execution cache and content-addressed blob storage,
  so opening a million-instance history costs the rows a query touches,
  not a full parse.

:class:`~repro.history.database.HistoryDatabase` routes every read and
write through this interface; the query layers on top
(:mod:`repro.history.trace`, :mod:`repro.history.consistency`,
:mod:`repro.history.query`) stay backend-agnostic.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .instance import EntityInstance

#: Backend names accepted by persistence and the CLI ``--backend`` flag.
BACKEND_JSON = "json"
BACKEND_SQLITE = "sqlite"
BACKENDS = (BACKEND_JSON, BACKEND_SQLITE)


def parse_serial(instance_id: str) -> tuple[str, int]:
    """Split ``"Netlist#0007"`` into ``("Netlist", 7)`` (0 if unnumbered)."""
    entity_type, _, number = instance_id.partition("#")
    return entity_type, int(number) if number.isdigit() else 0


def parse_invocation(invocation: str) -> int:
    """Numeric part of a ``"run#00042"`` invocation id (0 if unnumbered)."""
    _, _, number = invocation.partition("#")
    return int(number) if number.isdigit() else 0


class HistoryStore:
    """Abstract storage backend: instance rows plus dependency indexes.

    Implementations must preserve insertion order for
    :meth:`iter_instances` / :meth:`ids_of_type` and maintain the
    forward (antecedent -> consumers) and reverse (consumer ->
    antecedents) dependency indexes on every :meth:`add`.
    """

    #: Backend name as selected by persistence (``json``/``sqlite``).
    kind: str = BACKEND_JSON
    #: True when the store also persists content-addressed blobs (the
    #: :class:`~repro.history.datastore.DataStore` then writes through).
    blob_backend: bool = False
    #: True when the store persists the derivation-key index consulted
    #: by :class:`~repro.execution.cache.DerivationCache`.
    supports_key_index: bool = False
    #: Optional query-observability hook (duck-typed to
    #: :class:`~repro.obs.profiling.QueryRecorder` — this module never
    #: imports obs).  ``None`` keeps every read on the untimed fast
    #: path.
    _recorder = None

    def set_query_recorder(self, recorder) -> None:
        """Route per-statement timings into ``recorder`` (None stops)."""
        self._recorder = recorder

    # -- instance rows -------------------------------------------------
    def add(self, instance: EntityInstance) -> None:
        raise NotImplementedError

    def replace(self, instance: EntityInstance) -> None:
        """Swap an instance's meta-data; the derivation is immutable."""
        raise NotImplementedError

    def get(self, instance_id: str) -> EntityInstance | None:
        raise NotImplementedError

    def __contains__(self, instance_id: str) -> bool:
        return self.get(instance_id) is not None

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_instances(self) -> Iterator[EntityInstance]:
        raise NotImplementedError

    def ids_of_type(self, entity_type: str) -> tuple[str, ...]:
        """Instance ids of one *concrete* type (no subtype expansion)."""
        raise NotImplementedError

    # -- dependency indexes ----------------------------------------------
    def consumers_of(self, instance_id: str) -> tuple[str, ...]:
        """Forward index: instances whose derivation uses this one."""
        raise NotImplementedError

    def antecedents_of(self, instance_id: str) -> tuple[str, ...]:
        """Reverse index: instances this one's derivation uses."""
        raise NotImplementedError

    def ids_for_invocation(self, invocation: str) -> tuple[str, ...]:
        """Sibling outputs recorded under one task invocation."""
        raise NotImplementedError

    # -- id allocation support ---------------------------------------------
    def highest_serial(self, entity_type: str) -> int:
        """Largest numeric id suffix seen for a type (0 when none)."""
        raise NotImplementedError

    def highest_invocation(self) -> int:
        """Largest numeric invocation suffix seen (0 when none)."""
        raise NotImplementedError

    # -- derivation-key index (optional) -----------------------------------
    def key_index_signature(self) -> str | None:
        """Registry signature the persisted key index was built against."""
        return None

    def reset_key_index(self, signature: str) -> None:
        raise NotImplementedError

    def put_key_group(self, key: str,
                      outputs: Iterable[tuple[str, str]],
                      duration: float = 0.0) -> None:
        raise NotImplementedError

    def iter_key_groups(self) -> Iterator[
            tuple[str, tuple[tuple[str, str], ...], float]]:
        raise NotImplementedError

    # -- content-addressed blobs (optional) ---------------------------------
    def put_blob(self, digest: str, canonical: str, size: int) -> None:
        raise NotImplementedError

    def get_blob(self, digest: str) -> str | None:
        """Canonical JSON text of a blob (None when absent)."""
        raise NotImplementedError

    def blob_size(self, digest: str) -> int | None:
        raise NotImplementedError

    def blob_refs(self) -> tuple[str, ...]:
        raise NotImplementedError

    def put_blob_alias(self, alias: str, digest: str) -> None:
        raise NotImplementedError

    def resolve_blob_alias(self, alias: str) -> str | None:
        raise NotImplementedError

    # -- lifecycle -------------------------------------------------------
    def flush(self) -> None:
        """Make writes durable (commit); a no-op for in-memory stores."""

    def close(self) -> None:
        """Release any file handles; the store is unusable afterwards."""


class InMemoryHistoryStore(HistoryStore):
    """Dictionary-backed store: the JSON backend's working set.

    Matches the pre-interface behaviour of
    :class:`~repro.history.database.HistoryDatabase` exactly — plain
    dicts, insertion-ordered, with the forward index maintained on every
    write — plus the reverse/invocation indexes and serial maxima the
    interface standardizes.
    """

    kind = BACKEND_JSON

    def __init__(self) -> None:
        self._instances: dict[str, EntityInstance] = {}
        self._by_type: dict[str, list[str]] = {}
        self._forward: dict[str, list[str]] = {}
        self._by_invocation: dict[str, list[str]] = {}
        self._serial_max: dict[str, int] = {}
        self._invocation_max = 0

    # -- instance rows -------------------------------------------------
    def add(self, instance: EntityInstance) -> None:
        self._instances[instance.instance_id] = instance
        self._by_type.setdefault(instance.entity_type, []).append(
            instance.instance_id)
        entity_type, serial = parse_serial(instance.instance_id)
        if serial > self._serial_max.get(entity_type, 0):
            self._serial_max[entity_type] = serial
        derivation = instance.derivation
        if derivation is not None:
            for antecedent in derivation.all_antecedents():
                self._forward.setdefault(antecedent, []).append(
                    instance.instance_id)
            if derivation.invocation:
                self._by_invocation.setdefault(
                    derivation.invocation, []).append(instance.instance_id)
                run = parse_invocation(derivation.invocation)
                self._invocation_max = max(self._invocation_max, run)

    def replace(self, instance: EntityInstance) -> None:
        self._instances[instance.instance_id] = instance

    def get(self, instance_id: str) -> EntityInstance | None:
        return self._instances.get(instance_id)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def iter_instances(self) -> Iterator[EntityInstance]:
        recorder = self._recorder
        if recorder is None:
            return iter(tuple(self._instances.values()))
        # The materialization IS the scan: every history-wide walk
        # (staleness sweeps, ``repro history``) lands here, so the JSON
        # backend's full-scan cost shows up next to SQLite's statements
        # under one fingerprint scheme.
        with recorder.timed("MEM SCAN instances") as cell:
            rows = tuple(self._instances.values())
            cell[0] = len(rows)
        return iter(rows)

    def ids_of_type(self, entity_type: str) -> tuple[str, ...]:
        recorder = self._recorder
        if recorder is None:
            return tuple(self._by_type.get(entity_type, ()))
        with recorder.timed(
                "MEM SELECT instances BY entity_type") as cell:
            rows = tuple(self._by_type.get(entity_type, ()))
            cell[0] = len(rows)
        return rows

    # -- dependency indexes ----------------------------------------------
    def consumers_of(self, instance_id: str) -> tuple[str, ...]:
        recorder = self._recorder
        if recorder is None:
            return tuple(self._forward.get(instance_id, ()))
        with recorder.timed(
                "MEM SELECT consumers BY antecedent") as cell:
            rows = tuple(self._forward.get(instance_id, ()))
            cell[0] = len(rows)
        return rows

    def antecedents_of(self, instance_id: str) -> tuple[str, ...]:
        instance = self._instances.get(instance_id)
        if instance is None or instance.derivation is None:
            return ()
        return instance.derivation.all_antecedents()

    def ids_for_invocation(self, invocation: str) -> tuple[str, ...]:
        return tuple(self._by_invocation.get(invocation, ()))

    # -- id allocation support ---------------------------------------------
    def highest_serial(self, entity_type: str) -> int:
        return self._serial_max.get(entity_type, 0)

    def highest_invocation(self) -> int:
        return self._invocation_max
