"""Management statistics over the design history database.

The meta-data the paper stores per instance (user, time-stamp,
derivation) supports more than queries — it describes the design
process itself.  :func:`history_statistics` aggregates it into the kind
of report a project lead (or the Design Process Level) reads: who made
what, which tools carry the load, how deep derivations run, and how much
physical data the content-addressed store actually deduplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .database import HistoryDatabase
from .trace import backward_trace


@dataclass
class HistoryStatistics:
    """Aggregated view of one history database."""

    instances: int = 0
    derived: int = 0
    installed: int = 0
    blobs: int = 0
    instances_by_type: dict[str, int] = field(default_factory=dict)
    instances_by_user: dict[str, int] = field(default_factory=dict)
    tool_runs: dict[str, int] = field(default_factory=dict)
    max_depth: int = 0
    mean_depth: float = 0.0
    shared_blob_instances: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Data-carrying instances per stored blob (>= 1)."""
        carriers = self.instances - self._no_data
        return carriers / self.blobs if self.blobs else 1.0

    _no_data: int = 0

    def to_dict(self) -> dict:
        """Machine-readable form (the ``repro stats --json`` payload)."""
        return {
            "instances": self.instances,
            "derived": self.derived,
            "installed": self.installed,
            "blobs": self.blobs,
            "dedup_ratio": self.dedup_ratio,
            "instances_by_type": dict(sorted(
                self.instances_by_type.items())),
            "instances_by_user": dict(sorted(
                self.instances_by_user.items())),
            "tool_runs": dict(sorted(self.tool_runs.items())),
            "max_depth": self.max_depth,
            "mean_depth": self.mean_depth,
            "shared_blob_instances": self.shared_blob_instances,
        }

    def render(self) -> str:
        lines = [
            "history statistics:",
            f"  instances: {self.instances} "
            f"({self.derived} derived, {self.installed} installed)",
            f"  physical blobs: {self.blobs} "
            f"(dedup ratio {self.dedup_ratio:.2f}, "
            f"{self.shared_blob_instances} instances share a blob)",
            f"  derivation depth: max {self.max_depth}, "
            f"mean {self.mean_depth:.1f}",
        ]
        if self.instances_by_user:
            lines.append("  by user: " + ", ".join(
                f"{user or '(none)'}={count}" for user, count in
                sorted(self.instances_by_user.items())))
        if self.tool_runs:
            top = sorted(self.tool_runs.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:8]
            lines.append("  busiest tools: " + ", ".join(
                f"{tool}={count}" for tool, count in top))
        busiest_types = sorted(self.instances_by_type.items(),
                               key=lambda kv: (-kv[1], kv[0]))[:8]
        if busiest_types:
            lines.append("  largest types: " + ", ".join(
                f"{name}={count}" for name, count in busiest_types))
        return "\n".join(lines)


def derivation_depth(db: HistoryDatabase, instance_id: str) -> int:
    """Longest derivation chain below an instance (0 for installed)."""
    depth: dict[str, int] = {}

    def visit(current: str) -> int:
        if current in depth:
            return depth[current]
        record = db.get(current).derivation
        if record is None:
            depth[current] = 0
            return 0
        value = 1 + max((visit(a) for a in record.all_antecedents()),
                        default=0)
        depth[current] = value
        return value

    return visit(instance_id)


def history_statistics(db: HistoryDatabase) -> HistoryStatistics:
    """Aggregate the whole database into a report."""
    stats = HistoryStatistics()
    blob_users: dict[str, int] = {}
    depths = []
    for instance in db.instances():
        stats.instances += 1
        stats.instances_by_type[instance.entity_type] = \
            stats.instances_by_type.get(instance.entity_type, 0) + 1
        stats.instances_by_user[instance.user] = \
            stats.instances_by_user.get(instance.user, 0) + 1
        if instance.derivation is None:
            stats.installed += 1
        else:
            stats.derived += 1
            if instance.derivation.tool is not None:
                tool = db.get(instance.derivation.tool)
                key = tool.name or tool.entity_type
                stats.tool_runs[key] = stats.tool_runs.get(key, 0) + 1
            depths.append(derivation_depth(db, instance.instance_id))
        if instance.data_ref is None:
            stats._no_data += 1
        else:
            blob_users[instance.data_ref] = \
                blob_users.get(instance.data_ref, 0) + 1
    stats.blobs = len(db.datastore)
    stats.shared_blob_instances = sum(
        count for count in blob_users.values() if count > 1)
    if depths:
        stats.max_depth = max(depths)
        stats.mean_depth = sum(depths) / len(depths)
    return stats


def trace_size(db: HistoryDatabase, instance_id: str) -> int:
    """Convenience: number of instances in the full derivation trace."""
    return len(backward_trace(db, instance_id))
