"""Flow traces and version trees (paper section 4.2, Fig. 11).

A **flow trace** is the instance-level image of a flow: a DAG whose nodes
are entity *instances* and whose edges come from derivation records.  The
paper: *"Our representation — a flow trace — is a semantically richer
superset of a version tree, not only showing the relationship between the
data, but also showing the tools that were used in creating that data."*

:func:`backward_trace` / :func:`forward_trace` build traces by chaining
through the history database; :meth:`FlowTrace.version_tree` projects a
trace onto the classical version tree by keeping only data instances of
one entity family connected through *editing* tasks; and
:meth:`FlowTrace.to_task_graph` converts a trace back into an executable
task graph — which is how previously executed tasks are *"recalled,
possibly modified, and executed"* (end of section 4.1) and how automatic
retracing works.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.taskgraph import TaskGraph
from ..errors import HistoryError
from ..schema.dependency import DepKind
from .database import HistoryDatabase


@dataclass(frozen=True)
class TraceEdge:
    """``consumer`` instance depends on ``supplier`` instance."""

    consumer: str
    supplier: str
    kind: DepKind
    role: str

    def __str__(self) -> str:
        tag = "f" if self.kind is DepKind.FUNCTIONAL else "d"
        return f"{self.consumer} --{tag}:{self.role}--> {self.supplier}"


@dataclass(frozen=True)
class VersionNode:
    """One node of a projected version tree."""

    instance_id: str
    parent_id: str | None
    tool_id: str | None  # the editing tool run — absent in classic trees


class FlowTrace:
    """An instance-level derivation DAG."""

    def __init__(self, db: HistoryDatabase) -> None:
        self.db = db
        self._instances: set[str] = set()
        # insertion-ordered edge set: membership stays O(1) on the
        # 10^5-instance traces the indexed backends make reachable
        self._edges: dict[TraceEdge, None] = {}

    # -- construction ------------------------------------------------
    def add_instance(self, instance_id: str) -> None:
        self.db.get(instance_id)
        self._instances.add(instance_id)

    def add_derivation_edges(self, instance_id: str) -> tuple[str, ...]:
        """Add the immediate antecedents of an instance; return new ids."""
        instance = self.db.get(instance_id)
        self.add_instance(instance_id)
        if instance.derivation is None:
            return ()
        added: list[str] = []
        record = instance.derivation
        if record.tool is not None:
            if record.tool not in self._instances:
                added.append(record.tool)
            self.add_instance(record.tool)
            self._add_edge(TraceEdge(instance_id, record.tool,
                                     DepKind.FUNCTIONAL, "tool"))
        for role, input_id in record.inputs:
            if input_id not in self._instances:
                added.append(input_id)
            self.add_instance(input_id)
            self._add_edge(TraceEdge(instance_id, input_id,
                                     DepKind.DATA, role))
        return tuple(added)

    def _add_edge(self, edge: TraceEdge) -> None:
        self._edges.setdefault(edge)

    # -- inspection ----------------------------------------------------
    def instances(self) -> tuple[str, ...]:
        return tuple(sorted(self._instances))

    def edges(self) -> tuple[TraceEdge, ...]:
        return tuple(self._edges)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def suppliers(self, instance_id: str) -> tuple[TraceEdge, ...]:
        return tuple(e for e in self._edges if e.consumer == instance_id)

    def consumers(self, instance_id: str) -> tuple[TraceEdge, ...]:
        return tuple(e for e in self._edges if e.supplier == instance_id)

    def roots(self) -> tuple[str, ...]:
        """Instances in the trace nothing else in the trace depends on."""
        consumed = {e.supplier for e in self._edges}
        return tuple(sorted(self._instances - consumed))

    def sources(self) -> tuple[str, ...]:
        """Instances in the trace with no suppliers inside the trace."""
        consuming = {e.consumer for e in self._edges}
        return tuple(sorted(self._instances - consuming))

    # -- projections -----------------------------------------------------
    def version_tree(self, family_root: str) -> tuple[VersionNode, ...]:
        """Project the trace to a classical version tree (Fig. 11a).

        ``family_root`` is the root entity type of the version family
        (e.g. ``"Netlist"``).  An instance's parent version is the input
        of its *editing* derivation — the data input whose type belongs to
        the same family (section 4.2's characterization of editing tasks).
        Unlike the trace (Fig. 11b), the projection discards which tool
        made each version, which is exactly the information loss the
        paper criticizes; the ``tool_id`` field records what was lost.
        """
        schema = self.db.schema
        nodes: list[VersionNode] = []
        for instance_id in sorted(self._instances):
            instance = self.db.get(instance_id)
            if not schema.is_subtype(instance.entity_type, family_root):
                continue
            parent_id = None
            tool_id = None
            if instance.derivation is not None:
                tool_id = instance.derivation.tool
                for _, input_id in instance.derivation.inputs:
                    input_instance = self.db.get(input_id)
                    if schema.is_subtype(input_instance.entity_type,
                                         family_root):
                        parent_id = input_id
                        break
            nodes.append(VersionNode(instance_id, parent_id, tool_id))
        return tuple(nodes)

    def to_task_graph(self, name: str = "recalled-flow") -> TaskGraph:
        """Rebuild a bound task graph from this trace.

        Every instance becomes a node of its entity type with the
        instance bound; trace edges become flow edges.  The result
        validates against the schema (the history was schema-checked when
        written) and can be re-executed — the recall path of section 4.1
        and the retracing path of consistency maintenance.
        """
        graph = TaskGraph(self.db.schema, name)
        by_instance: dict[str, str] = {}
        for instance_id in sorted(self._instances):
            instance = self.db.get(instance_id)
            node = graph.add_node(instance.entity_type,
                                  label=instance.name or instance_id)
            node.bind(instance_id)
            by_instance[instance_id] = node.node_id
        for edge in self._edges:
            role = None if edge.kind is DepKind.FUNCTIONAL else edge.role
            graph.connect(by_instance[edge.consumer],
                          by_instance[edge.supplier], role=role)
        graph.validate()
        return graph

    def render(self) -> str:
        """Deterministic text rendering (the Fig. 10/11 style)."""
        lines = ["flow trace:"]
        for instance_id in sorted(self._instances):
            instance = self.db.get(instance_id)
            lines.append(f"  {instance_id} ({instance.entity_type}"
                         f"{', ' + instance.name if instance.name else ''})")
            for edge in sorted(self.suppliers(instance_id),
                               key=lambda e: (e.kind.value, e.role)):
                tag = "f" if edge.kind is DepKind.FUNCTIONAL else "d"
                lines.append(f"    --{tag}:{edge.role}--> {edge.supplier}")
        return "\n".join(lines)


def backward_trace(db: HistoryDatabase, instance_id: str, *,
                   depth: int | None = None) -> FlowTrace:
    """Derivation history of an instance (backward chaining, Fig. 10).

    ``depth=1`` reveals only the immediate tool and inputs — exactly the
    browser's *History* pop-up; ``None`` chases the derivation to its
    sources.
    """
    trace = FlowTrace(db)
    trace.add_instance(instance_id)
    frontier: list[tuple[str, int]] = [(instance_id, 0)]
    while frontier:
        current, level = frontier.pop(0)
        if depth is not None and level >= depth:
            continue
        for added in trace.add_derivation_edges(current):
            frontier.append((added, level + 1))
    return trace


def forward_trace(db: HistoryDatabase, instance_id: str, *,
                  depth: int | None = None) -> FlowTrace:
    """Everything depending on an instance (forward chaining).

    E.g. *"finding all of the circuit performances derived from a given
    netlist"* — section 4.2.
    """
    trace = FlowTrace(db)
    trace.add_instance(instance_id)
    frontier: list[tuple[str, int]] = [(instance_id, 0)]
    seen = {instance_id}
    while frontier:
        current, level = frontier.pop(0)
        if depth is not None and level >= depth:
            continue
        for consumer in db.consumers_of(current):
            trace.add_derivation_edges(consumer)
            if consumer not in seen:
                seen.add(consumer)
                frontier.append((consumer, level + 1))
    return trace


def full_trace(db: HistoryDatabase, instance_id: str) -> FlowTrace:
    """Backward and forward closure around an instance."""
    trace = backward_trace(db, instance_id)
    forward = forward_trace(db, instance_id)
    for other in forward.instances():
        trace.add_instance(other)
        trace.add_derivation_edges(other)
    return trace


def lineage(db: HistoryDatabase, instance_id: str,
            family_root: str | None = None) -> tuple[str, ...]:
    """Chain of ancestor versions of an instance (oldest first).

    Follows editing derivations within the instance's entity family.
    """
    instance = db.get(instance_id)
    schema = db.schema
    root = family_root if family_root is not None \
        else schema.root_of(instance.entity_type)
    chain = [instance_id]
    current = instance
    while current.derivation is not None:
        parent_id = None
        for _, input_id in current.derivation.inputs:
            candidate = db.get(input_id)
            if schema.is_subtype(candidate.entity_type, root):
                parent_id = input_id
                break
        if parent_id is None:
            break
        if parent_id in chain:
            raise HistoryError(
                f"version lineage of {instance_id!r} contains a cycle")
        chain.append(parent_id)
        current = db.get(parent_id)
    chain.reverse()
    return tuple(chain)
