"""Entity instances and their derivation meta-data.

Section 1: *"by associating a small amount of meta-data with each design
object, indicating the immediate tool and data used in creating that
object, the complete derivation history of a design may be stored."*

An :class:`EntityInstance` carries exactly the meta-data shown in the
Fig. 9 browser — user id, creation time-stamp, name and comment — plus a
:class:`DerivationRecord` pointing at the *immediate* tool instance and
input instances.  Everything deeper (full traces, version trees, staleness)
is reconstructed from these records by :mod:`repro.history.query` and
:mod:`repro.history.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class DerivationRecord:
    """The immediate provenance of one instance.

    Attributes
    ----------
    tool:
        Instance id of the tool that produced the instance, or ``None``
        for composed entities (implicit composition function).
    inputs:
        Sorted ``(role, input instance id)`` pairs.
    invocation:
        Identifier shared by all sibling outputs of one coalesced task
        invocation (Fig. 5: extractor producing both a netlist and
        statistics in one run).
    """

    tool: str | None
    inputs: tuple[tuple[str, str], ...] = ()
    invocation: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(sorted(self.inputs)))

    @classmethod
    def make(cls, tool: str | None,
             inputs: Mapping[str, str] | None = None,
             invocation: str = "") -> "DerivationRecord":
        return cls(tool, tuple(sorted((inputs or {}).items())), invocation)

    def input_map(self) -> dict[str, str]:
        return dict(self.inputs)

    def input_ids(self) -> tuple[str, ...]:
        return tuple(instance_id for _, instance_id in self.inputs)

    def all_antecedents(self) -> tuple[str, ...]:
        """Every instance id this one immediately depends on (tool first)."""
        out = [] if self.tool is None else [self.tool]
        out.extend(self.input_ids())
        return tuple(out)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tool": self.tool,
            "inputs": [[role, ref] for role, ref in self.inputs],
            "invocation": self.invocation,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DerivationRecord":
        return cls(payload.get("tool"),
                   tuple((role, ref) for role, ref in
                         payload.get("inputs", ())),
                   payload.get("invocation", ""))


@dataclass(frozen=True)
class EntityInstance:
    """One design object and its meta-data.

    The actual design data lives in the content-addressed
    :class:`~repro.history.datastore.DataStore`; several instances may
    share one blob (``data_ref``) while differing in meta-data — the
    paper's footnote 5 about RCS/SCCS files.
    """

    instance_id: str
    entity_type: str
    user: str = ""
    timestamp: float = 0.0
    name: str = ""
    comment: str = ""
    data_ref: str | None = None
    derivation: DerivationRecord | None = None
    annotations: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    #: When the producing run was traced, the ids of the span that
    #: executed the invocation — the provenance↔timing join key.
    trace_id: str = ""
    span_id: str = ""

    def annotation_map(self) -> dict[str, str]:
        return dict(self.annotations)

    def annotated(self, **notes: str) -> "EntityInstance":
        """Return a copy with extra annotations merged in."""
        merged = dict(self.annotations)
        merged.update(notes)
        return replace(self, annotations=tuple(sorted(merged.items())))

    def renamed(self, name: str, comment: str | None = None
                ) -> "EntityInstance":
        """Return a copy with a new display name (and optional comment)."""
        return replace(self, name=name,
                       comment=self.comment if comment is None else comment)

    @property
    def is_derived(self) -> bool:
        """True if created by a flow (vs installed from outside)."""
        return self.derivation is not None

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "instance_id": self.instance_id,
            "entity_type": self.entity_type,
            "user": self.user,
            "timestamp": self.timestamp,
            "name": self.name,
            "comment": self.comment,
            "data_ref": self.data_ref,
            "derivation": (None if self.derivation is None
                           else self.derivation.to_dict()),
            "annotations": [[k, v] for k, v in self.annotations],
        }
        # only stamped for traced runs; omitting the keys otherwise
        # keeps untraced history files byte-identical to older builds
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.span_id:
            payload["span_id"] = self.span_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "EntityInstance":
        derivation = payload.get("derivation")
        return cls(
            instance_id=payload["instance_id"],
            entity_type=payload["entity_type"],
            user=payload.get("user", ""),
            timestamp=float(payload.get("timestamp", 0.0)),
            name=payload.get("name", ""),
            comment=payload.get("comment", ""),
            data_ref=payload.get("data_ref"),
            derivation=(None if derivation is None
                        else DerivationRecord.from_dict(derivation)),
            annotations=tuple((k, v) for k, v in
                              payload.get("annotations", ())),
            trace_id=payload.get("trace_id", ""),
            span_id=payload.get("span_id", ""),
        )

    def __str__(self) -> str:
        display = self.name or self.instance_id
        return f"{self.entity_type}:{display}"
