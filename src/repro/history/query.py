"""Queries into the design history database (paper section 4.2).

Three query families:

* **backward-chaining** — :func:`derivation_inputs`, and
  :func:`antecedents_of_type` (*"find the netlist that was extracted from
  this layout"*);
* **forward-chaining** — :func:`dependents_of_type` (*"find all of the
  circuit performances derived from a given netlist"*, the browser's
  *Use Dependencies* option);
* **template queries** — :func:`template_query` uses a task graph itself
  as the query form: bind some nodes to instances, pick a target node,
  and get every instance that fits the flow's structure (*"find the
  simulations that were performed for this netlist"*).
"""

from __future__ import annotations

from ..core.taskgraph import TaskGraph
from ..errors import QueryError
from .database import HistoryDatabase
from .instance import EntityInstance
from .trace import backward_trace, forward_trace


def derivation_inputs(db: HistoryDatabase, instance_id: str
                      ) -> dict[str, EntityInstance]:
    """Immediate inputs of an instance, by role (the History pop-up)."""
    instance = db.get(instance_id)
    if instance.derivation is None:
        return {}
    return {role: db.get(input_id)
            for role, input_id in instance.derivation.inputs}


def derivation_tool(db: HistoryDatabase, instance_id: str
                    ) -> EntityInstance | None:
    """The tool instance that produced an instance, if derived."""
    instance = db.get(instance_id)
    if instance.derivation is None or instance.derivation.tool is None:
        return None
    return db.get(instance.derivation.tool)


def antecedents_of_type(db: HistoryDatabase, instance_id: str,
                        entity_type: str, *,
                        include_subtypes: bool = True
                        ) -> tuple[EntityInstance, ...]:
    """Backward-chain: instances of a type in the derivation history."""
    trace = backward_trace(db, instance_id)
    return _filter_trace(db, trace.instances(), entity_type,
                         include_subtypes, exclude=instance_id)


def dependents_of_type(db: HistoryDatabase, instance_id: str,
                       entity_type: str, *,
                       include_subtypes: bool = True
                       ) -> tuple[EntityInstance, ...]:
    """Forward-chain: instances of a type that depend on this instance."""
    trace = forward_trace(db, instance_id)
    return _filter_trace(db, trace.instances(), entity_type,
                         include_subtypes, exclude=instance_id)


def _filter_trace(db: HistoryDatabase, ids, entity_type: str,
                  include_subtypes: bool, exclude: str
                  ) -> tuple[EntityInstance, ...]:
    db.schema.entity(entity_type)
    out = []
    for instance_id in ids:
        if instance_id == exclude:
            continue
        instance = db.get(instance_id)
        if include_subtypes:
            match = db.schema.is_subtype(instance.entity_type, entity_type)
        else:
            match = instance.entity_type == entity_type
        if match:
            out.append(instance)
    out.sort(key=lambda i: (i.timestamp, i.instance_id))
    return tuple(out)


def was_performed(db: HistoryDatabase, goal_type: str,
                  **role_bindings: str) -> tuple[EntityInstance, ...]:
    """Has a task already produced a ``goal_type`` from these inputs?

    Section 3.3's consistency example: *"a query such as 'find the
    netlist that was extracted from this layout' could determine whether
    such an extraction had yet been performed"*.  Returns the matching
    instances (empty tuple: the task still needs to run).
    """
    matches = []
    for instance in db.browse(goal_type):
        if instance.derivation is None:
            continue
        inputs = instance.derivation.input_map()
        if all(inputs.get(role) == instance_id
               for role, instance_id in role_bindings.items()):
            matches.append(instance)
    return tuple(matches)


def template_query(db: HistoryDatabase, flow: TaskGraph, target_node: str
                   ) -> tuple[EntityInstance, ...]:
    """Use a task graph as a query template (section 4.2).

    Every instance of the target node's type is tested against the flow's
    structure: each supplier edge of a flow node must be mirrored by the
    candidate's derivation record — the tool edge by ``derivation.tool``,
    a data edge by the input recorded under the same role.  Nodes bound
    to instances constrain matches to exactly those instances; unbound,
    unexpanded nodes only constrain the type.

    Unlike plain forward/backward chaining this matches *structure*: a
    template Performance ← {Simulator, Circuit ← {netlist n1}} finds only
    simulations whose circuit was composed from netlist ``n1``, not every
    performance transitively touching ``n1``.
    """
    node = flow.node(target_node)
    candidates = db.browse(node.entity_type)
    memo: dict[tuple[str, str], bool] = {}
    out = [instance for instance in candidates
           if _match(db, flow, target_node, instance.instance_id, memo)]
    out.sort(key=lambda i: (i.timestamp, i.instance_id))
    return tuple(out)


def _match(db: HistoryDatabase, flow: TaskGraph, node_id: str,
           instance_id: str, memo: dict[tuple[str, str], bool]) -> bool:
    key = (node_id, instance_id)
    if key in memo:
        return memo[key]
    memo[key] = False  # cycle guard; flows are DAGs so this is defensive
    node = flow.node(node_id)
    instance = db.get(instance_id)
    if not db.schema.is_subtype(instance.entity_type, node.entity_type):
        return False
    if node.bindings and instance_id not in node.bindings:
        return False
    record = instance.derivation
    for edge in flow.suppliers(node_id):
        if record is None:
            return False
        if edge.is_functional:
            if record.tool is None:
                return False
            if not _match(db, flow, edge.supplier, record.tool, memo):
                return False
        else:
            input_id = record.input_map().get(edge.role)
            if input_id is None:
                return False
            if not _match(db, flow, edge.supplier, input_id, memo):
                return False
    memo[key] = True
    return True


def find_bindings(db: HistoryDatabase, flow: TaskGraph, target_node: str
                  ) -> tuple[dict[str, str], ...]:
    """All consistent node→instance assignments reaching the target.

    A richer variant of :func:`template_query` that, instead of returning
    only target instances, returns full assignments covering the target's
    supplier subtree (useful for recalling a task with all its inputs).
    """
    node = flow.node(target_node)
    assignments: list[dict[str, str]] = []
    for instance in db.browse(node.entity_type):
        binding: dict[str, str] = {}
        if _collect(db, flow, target_node, instance.instance_id, binding):
            assignments.append(binding)
    return tuple(assignments)


def _collect(db: HistoryDatabase, flow: TaskGraph, node_id: str,
             instance_id: str, binding: dict[str, str]) -> bool:
    if node_id in binding:
        return binding[node_id] == instance_id
    if not _match(db, flow, node_id, instance_id, {}):
        return False
    binding[node_id] = instance_id
    instance = db.get(instance_id)
    record = instance.derivation
    for edge in flow.suppliers(node_id):
        if record is None:
            return False
        supplier_instance = (record.tool if edge.is_functional
                             else record.input_map().get(edge.role))
        if supplier_instance is None:
            return False
        if not _collect(db, flow, edge.supplier, supplier_instance,
                        binding):
            return False
    return True


def count_instances(db: HistoryDatabase, entity_type: str | None = None
                    ) -> int:
    """Number of instances (optionally of one type, with subtypes)."""
    if entity_type is None:
        return len(db)
    return len(db.browse(entity_type))


def ensure_target_in_flow(flow: TaskGraph, target_node: str) -> None:
    """Validate a template target before running a query."""
    if target_node not in flow:
        raise QueryError(f"template target {target_node!r} not in flow")
