"""The scriptable Hercules user interface (paper Figs. 9 and 10)."""

from .browser import InstanceBrowser
from .session import HerculesSession
from .shell import HerculesShell
from .task_window import TaskWindow

__all__ = ["HerculesSession", "HerculesShell", "InstanceBrowser",
           "TaskWindow"]
