"""The entity instance browser (paper Fig. 9b).

One browser per entity type, with the filters the figure shows — keyword,
date limits, user limit — plus the *Use Dependencies* option (forward
chaining) and *Select* (binding instances to a flow node, possibly several
at once for fan-out).  Rows render as the figure's listing: user, date,
name.
"""

from __future__ import annotations

import datetime

from ..core.flow import DynamicFlow
from ..core.node import FlowNode
from ..errors import UIError
from ..execution.context import DesignEnvironment
from ..history.database import BrowseFilter
from ..history.instance import EntityInstance
from ..history.query import dependents_of_type


class InstanceBrowser:
    """A filtered, selectable listing of one entity type's instances."""

    def __init__(self, env: DesignEnvironment, entity_type: str, *,
                 bind_target: tuple[DynamicFlow, FlowNode] | None = None
                 ) -> None:
        env.schema.entity(entity_type)
        self.env = env
        self.entity_type = entity_type
        self.bind_target = bind_target
        self.keywords: tuple[str, ...] = ()
        self.since: float | None = None
        self.until: float | None = None
        self.user: str | None = None
        self.use_dependencies_of: str | None = None

    # -- filter controls (the Fig. 9b widgets) -------------------------
    def set_keywords(self, *keywords: str) -> "InstanceBrowser":
        self.keywords = keywords
        return self

    def set_date_limits(self, since: float | None = None,
                        until: float | None = None) -> "InstanceBrowser":
        self.since = since
        self.until = until
        return self

    def set_user_limit(self, user: str | None) -> "InstanceBrowser":
        self.user = user
        return self

    def set_use_dependencies(self, instance_id: str | None
                             ) -> "InstanceBrowser":
        """Restrict the listing to instances derived from a given one."""
        self.use_dependencies_of = instance_id
        return self

    def clear(self) -> "InstanceBrowser":
        self.keywords = ()
        self.since = self.until = None
        self.user = None
        self.use_dependencies_of = None
        return self

    # -- listing ---------------------------------------------------------
    def listing(self) -> tuple[EntityInstance, ...]:
        if self.use_dependencies_of is not None:
            rows = dependents_of_type(self.env.db,
                                      self.use_dependencies_of,
                                      self.entity_type)
            filters = BrowseFilter(keywords=self.keywords,
                                   since=self.since, until=self.until,
                                   user=self.user)
            return tuple(r for r in rows if filters.matches(r))
        return self.env.db.browse(
            self.entity_type,
            filters=BrowseFilter(keywords=self.keywords, since=self.since,
                                 until=self.until, user=self.user))

    def render(self) -> str:
        """The browser listing, one row per instance (Fig. 9b style)."""
        lines = [f"browser: {self.entity_type}"]
        for instance in self.listing():
            stamp = datetime.datetime.fromtimestamp(
                instance.timestamp,
                tz=datetime.timezone.utc).strftime("%b %d, %Y %H:%M")
            name = instance.name or instance.instance_id
            lines.append(f"  {instance.user:<10} {stamp:<19} {name}")
        if len(lines) == 1:
            lines.append("  (no matching instances)")
        return "\n".join(lines)

    # -- selection ---------------------------------------------------
    def select(self, *instance_ids: str) -> FlowNode:
        """Bind the chosen instances to the browser's flow node.

        Several ids select a *set* of instances — the task then runs for
        each one (section 4.1).
        """
        if self.bind_target is None:
            raise UIError("this browser is not attached to a flow node")
        listed = {i.instance_id for i in self.listing()}
        missing = [i for i in instance_ids if i not in listed]
        if missing:
            raise UIError(f"instances {missing} are not in the current "
                          "listing (check filters)")
        flow, node = self.bind_target
        flow.bind(node, *instance_ids)
        return node

    def select_latest(self) -> FlowNode:
        """Bind the newest matching instance."""
        rows = self.listing()
        if not rows:
            raise UIError(f"no instances of {self.entity_type!r} match")
        return self.select(rows[-1].instance_id)
