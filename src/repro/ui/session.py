"""A scriptable Hercules session: Fig. 9/10 interactions as text commands.

:class:`HerculesSession` drives a :class:`~repro.ui.task_window.TaskWindow`
through a small command language and collects a transcript, which is how
the figure benchmarks replay the paper's interactions deterministically::

    session.run_script('''
        new simulate
        place Performance
        expand n0
        bind n3 Stimuli#0001
        run
        show
    ''')

Commands: ``new <name>`` · ``place <EntityType>`` · ``place-tool
<ToolType>`` · ``place-data <instance>`` · ``load-flow <name>`` ·
``expand <node>`` · ``expand-optional <node>`` · ``unexpand <node>`` ·
``specialize <node> <subtype>`` · ``connect <consumer> <supplier>
[role]`` · ``bind <node> <instance>...`` · ``select-latest <node>`` ·
``browse <node> [keyword]...`` · ``popup <node>`` · ``history <node>`` ·
``use <node> [EntityType]`` · ``recall <instance>`` · ``rerun`` ·
``run [node]`` · ``show`` · ``help <node>``
"""

from __future__ import annotations

from ..errors import UIError
from ..execution.context import DesignEnvironment
from .task_window import TaskWindow


class HerculesSession:
    """Command-driven task-window session with a transcript."""

    def __init__(self, env: DesignEnvironment) -> None:
        self.env = env
        self.window = TaskWindow(env)
        self.transcript: list[str] = []

    # ------------------------------------------------------------------
    def run_script(self, script: str) -> str:
        """Execute newline-separated commands; return the new transcript."""
        start = len(self.transcript)
        for raw in script.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            self.execute(line)
        return "\n".join(self.transcript[start:])

    def execute(self, command: str) -> str:
        """Execute one command; returns (and records) its output."""
        parts = command.split()
        verb, args = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{verb.replace('-', '_')}", None)
        if handler is None:
            raise UIError(f"unknown command {verb!r}")
        output = handler(*args)
        self.transcript.append(f"> {command}")
        if output:
            self.transcript.append(output)
        return output

    # -- command handlers ------------------------------------------------
    def _cmd_new(self, name: str = "task") -> str:
        self.window.new_task(name)
        return f"new task {name!r}"

    def _cmd_place(self, entity_type: str) -> str:
        node = self.window.place_entity(entity_type)
        return f"placed {node}"

    def _cmd_place_tool(self, tool_type: str) -> str:
        node = self.window.place_tool(tool_type)
        return f"placed {node}"

    def _cmd_place_data(self, instance_id: str) -> str:
        node = self.window.place_data(instance_id)
        return f"placed {node} bound to {instance_id}"

    def _cmd_load_flow(self, name: str) -> str:
        self.window.load_flow(name)
        return f"loaded flow {name!r} ({len(self.window.flow.nodes())} " \
               "nodes)"

    def _cmd_expand(self, node: str) -> str:
        created = self.window.expand(node)
        return "expanded: " + ", ".join(str(n) for n in created)

    def _cmd_expand_optional(self, node: str) -> str:
        created = self.window.expand(node, include_optional=True)
        return "expanded (with optional inputs): " + ", ".join(
            str(n) for n in created)

    def _cmd_unexpand(self, node: str) -> str:
        deleted = self.window.unexpand(node)
        return f"unexpanded; removed {list(deleted)}"

    def _cmd_specialize(self, node: str, subtype: str) -> str:
        specialized = self.window.specialize(node, subtype)
        return f"specialized to {specialized}"

    def _cmd_connect(self, consumer: str, supplier: str,
                     role: str | None = None) -> str:
        self.window.flow.connect(consumer, supplier, role=role)
        return f"connected {consumer} -> {supplier}"

    def _cmd_bind(self, node: str, *instance_ids: str) -> str:
        if not instance_ids:
            raise UIError("bind needs at least one instance id")
        self.window.flow.bind(node, *instance_ids)
        return f"bound {node} to {list(instance_ids)}"

    def _cmd_select_latest(self, node: str) -> str:
        browser = self.window.browse(node)
        bound = browser.select_latest()
        return f"selected {bound.bindings[0]} for {bound}"

    def _cmd_browse(self, node: str, *keywords: str) -> str:
        browser = self.window.browse(node)
        if keywords:
            browser.set_keywords(*keywords)
        return browser.render()

    def _cmd_popup(self, node: str) -> str:
        return "popup: " + " | ".join(self.window.popup(node))

    def _cmd_history(self, node: str) -> str:
        revealed = self.window.history(node)
        if not revealed:
            return "no derivation history to reveal"
        return "revealed: " + ", ".join(str(n) for n in revealed)

    def _cmd_use(self, node: str, entity_type: str | None = None) -> str:
        dependents = self.window.use(node, entity_type)
        if not dependents:
            return "no dependent instances"
        return "used by: " + ", ".join(i.instance_id for i in dependents)

    def _cmd_recall(self, instance_id: str) -> str:
        flow = self.window.recall(instance_id)
        return (f"recalled task of {instance_id} "
                f"({len(flow.nodes())} nodes)")

    def _cmd_rerun(self) -> str:
        report = self.window.rerun()
        return (f"re-executed {len(report.results)} invocations; "
                f"created {list(report.created)}")

    def _cmd_run(self, node: str | None = None) -> str:
        report = self.window.run(node)
        return (f"executed {len(report.results)} invocations "
                f"({report.runs} tool runs); created "
                f"{list(report.created)}")

    def _cmd_show(self) -> str:
        return self.window.render()

    def _cmd_help(self, node: str) -> str:
        return self.window.help(node)
