"""The Hercules task window, scriptable (paper Fig. 9/10).

The original task window shows a flow as a graph of entity icons with a
pop-up menu per icon: *Unexpand / Expand / Browse / History / Use / Help*
(Fig. 9a), plus specialization and execution.  :class:`TaskWindow` is the
deterministic text equivalent: the same operations against the same
single representation, regardless of which design approach started the
task (section 4.1: Hercules *"uses the same user interface for each
approach"*).

The *History* operation reproduces Fig. 10: on a node holding exactly one
instance, it reveals the instances used to create it by adding bound
supplier nodes to the flow.
"""

from __future__ import annotations

from ..core.flow import DynamicFlow
from ..core.node import FlowNode
from ..core.render import ascii_graph
from ..errors import UIError
from ..execution.context import DesignEnvironment
from ..execution.executor import ExecutionReport
from ..history.query import dependents_of_type
from .browser import InstanceBrowser


class TaskWindow:
    """One task window over one dynamically defined flow."""

    def __init__(self, env: DesignEnvironment,
                 flow: DynamicFlow | None = None,
                 name: str = "task") -> None:
        self.env = env
        self.flow = flow if flow is not None else env.new_flow(name)

    # ------------------------------------------------------------------
    # starting a task (the four catalogs)
    # ------------------------------------------------------------------
    def new_task(self, name: str = "task") -> None:
        """Clear the window (the Fig. 9 'New Task...' menu entry)."""
        self.flow = self.env.new_flow(name)

    def place_entity(self, entity_type: str) -> FlowNode:
        """Select an entity type from the entity-catalog."""
        return self.flow.place(entity_type)

    def place_tool(self, tool_type: str) -> FlowNode:
        """Select a tool from the tool-catalog."""
        if not self.env.schema.entity(tool_type).is_tool:
            raise UIError(f"{tool_type!r} is not in the tool catalog")
        return self.flow.place(tool_type)

    def place_data(self, instance_id: str) -> FlowNode:
        """Select a piece of data from the data-catalog (the browser)."""
        instance = self.env.db.get(instance_id)
        node = self.flow.place(instance.entity_type)
        node.bind(instance.instance_id)
        node.label = instance.name or instance.instance_id
        return node

    def load_flow(self, flow_name: str) -> None:
        """Select a predefined flow from the flow-catalog."""
        self.flow = self.env.plan_flow(flow_name)

    # ------------------------------------------------------------------
    # the pop-up menu (Fig. 9a)
    # ------------------------------------------------------------------
    def popup(self, node: FlowNode | str) -> tuple[str, ...]:
        """Menu entries applicable to a node right now."""
        node = self._node(node)
        entries = ["Browse", "Help"]
        if self.flow.graph.is_expanded(node.node_id):
            entries.insert(0, "Unexpand")
        else:
            construction = self.env.schema.construction(node.entity_type)
            if construction is not None:
                entries.insert(0, "Expand")
            if self.env.schema.descendants_of(node.entity_type):
                entries.append("Specialize")
        if len(node.results()) == 1:
            entries.append("History")
            entries.append("Use")
        if (self.flow.graph.is_expanded(node.node_id)
                and not node.produced):
            entries.append("Run")
        return tuple(entries)

    def expand(self, node: FlowNode | str, **kwargs) -> tuple[FlowNode, ...]:
        return self.flow.expand(self._node(node), **kwargs)

    def unexpand(self, node: FlowNode | str) -> tuple[str, ...]:
        return self.flow.unexpand(self._node(node))

    def specialize(self, node: FlowNode | str, subtype: str) -> FlowNode:
        return self.flow.specialize(self._node(node), subtype)

    def browse(self, node: FlowNode | str) -> InstanceBrowser:
        """Open the instance browser for a node's entity type."""
        node = self._node(node)
        return InstanceBrowser(self.env, node.entity_type,
                               bind_target=(self.flow, node))

    def history(self, node: FlowNode | str) -> tuple[FlowNode, ...]:
        """Reveal the instances used to create this node's instance.

        Fig. 10: *"the Simulator and Netlist entities do not appear until
        after History is chosen"*.  Returns the revealed nodes.
        """
        node = self._node(node)
        results = node.results()
        if len(results) != 1:
            raise UIError(f"{node}: History needs a unique instance "
                          f"(has {len(results)})")
        if self.flow.graph.is_expanded(node.node_id):
            return ()  # already revealed
        instance = self.env.db.get(results[0])
        if instance.derivation is None:
            return ()  # external data: no derivation history
        revealed: list[FlowNode] = []
        record = instance.derivation
        if record.tool is not None:
            tool = self.env.db.get(record.tool)
            tool_node = self.flow.graph.add_node(tool.entity_type,
                                                 label=tool.name)
            tool_node.bind(tool.instance_id)
            self.flow.connect(node, tool_node)
            revealed.append(tool_node)
        for role, input_id in record.inputs:
            input_instance = self.env.db.get(input_id)
            input_node = self.flow.graph.add_node(
                input_instance.entity_type, label=input_instance.name)
            input_node.bind(input_instance.instance_id)
            self.flow.connect(node, input_node, role=role)
            revealed.append(input_node)
        return tuple(revealed)

    def recall(self, instance_id: str, *, depth: int | None = None
               ) -> DynamicFlow:
        """Recall a previously executed task as an editable flow.

        Section 4.1: *"It also allows previously executed tasks to be
        recalled, possibly modified, and executed."*  The instance's
        backward trace becomes the task window's flow, every node bound
        to its historical instance; the designer may rebind inputs (the
        modification) and Run with ``force=True`` to re-execute.
        """
        from ..history.trace import backward_trace

        instance = self.env.db.get(instance_id)
        if instance.derivation is None:
            raise UIError(f"{instance_id}: external data has no executed "
                          "task to recall")
        trace = backward_trace(self.env.db, instance_id, depth=depth)
        graph = trace.to_task_graph(f"recall-{instance_id}")
        self.flow = DynamicFlow(self.env.schema, graph=graph)
        return self.flow

    def rerun(self) -> ExecutionReport:
        """Re-execute the (possibly modified) recalled flow."""
        return self.env.executor().execute(self.flow, force=True)

    def use(self, node: FlowNode | str, entity_type: str | None = None):
        """Forward-chain: what was derived from this node's instance?"""
        node = self._node(node)
        results = node.results()
        if len(results) != 1:
            raise UIError(f"{node}: Use needs a unique instance")
        if entity_type is None:
            return tuple(self.env.db.get(i)
                         for i in self.env.db.consumers_of(results[0]))
        return dependents_of_type(self.env.db, results[0], entity_type)

    def run(self, node: FlowNode | str | None = None) -> ExecutionReport:
        """Execute the flow (or the sub-flow reaching one node)."""
        if node is None:
            return self.env.run(self.flow)
        return self.env.run(self.flow, targets=[self._node(node).node_id])

    def help(self, node: FlowNode | str) -> str:
        node = self._node(node)
        entity = self.env.schema.entity(node.entity_type)
        kind = "tool" if entity.is_tool else (
            "composed entity" if entity.composed else "data entity")
        return (f"{entity.name}: {kind}. "
                f"{entity.description or '(no description)'}")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The task-window picture (layered ASCII of the task graph)."""
        return ascii_graph(self.flow.graph)

    def _node(self, node: FlowNode | str) -> FlowNode:
        if isinstance(node, FlowNode):
            return node
        return self.flow.node(node)
