"""Interactive Hercules shell (``python -m repro shell <dir>``).

A readline REPL over :class:`~repro.ui.session.HerculesSession`: the same
command vocabulary as scripted sessions, plus ``catalog`` listings,
``save`` and ``quit``.  Built on :mod:`cmd`, so every handler is unit
testable through ``onecmd``.
"""

from __future__ import annotations

import cmd

from ..errors import ReproError
from ..execution.context import DesignEnvironment
from .session import HerculesSession


class HerculesShell(cmd.Cmd):
    """The interactive task-window prompt."""

    intro = ("Hercules task manager — dynamically defined flows.\n"
             "Type a session command (place/expand/bind/run/show/...), "
             "'catalog', or 'help'.")
    prompt = "hercules> "

    def __init__(self, env: DesignEnvironment,
                 on_save=None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.env = env
        self.session = HerculesSession(env)
        self._on_save = on_save
        self.saved = False

    # -- generic dispatch: every session command works verbatim ---------
    def default(self, line: str) -> bool | None:
        if line.strip() in ("EOF", "quit", "exit"):
            return self.do_quit(line)
        try:
            output = self.session.execute(line.strip())
            if output:
                self.stdout.write(output + "\n")
        except ReproError as error:
            self.stdout.write(f"error: {error}\n")
        except TypeError as error:
            self.stdout.write(f"usage error: {error}\n")
        return None

    def emptyline(self) -> bool:
        return False  # do not repeat the previous command

    # -- extra shell-only commands ------------------------------------
    def do_catalog(self, arg: str) -> None:
        """catalog [entities|tools|data|flows] — list a catalog."""
        which = arg.strip() or "entities"
        if which.startswith("tool"):
            names = self.env.tool_catalog.names()
        elif which.startswith("data"):
            names = self.env.data_type_catalog.names()
        elif which.startswith("flow"):
            names = self.env.flow_catalog.names()
        else:
            names = self.env.entity_catalog.names()
        for name in names:
            self.stdout.write(f"  {name}\n")
        if not names:
            self.stdout.write("  (empty)\n")

    def do_save(self, arg: str) -> None:
        """save — persist the environment (when opened from a directory)."""
        if self._on_save is None:
            self.stdout.write("no backing directory; nothing saved\n")
            return
        self._on_save(self.env)
        self.saved = True
        self.stdout.write("saved\n")

    def do_quit(self, arg: str) -> bool:
        """quit — leave the shell (saving first when backed)."""
        if self._on_save is not None:
            self._on_save(self.env)
            self.saved = True
        return True

    do_EOF = do_quit

    def do_help(self, arg: str) -> None:
        if arg:
            super().do_help(arg)
            return
        self.stdout.write(
            "session commands: new place place-tool place-data load-flow "
            "expand expand-optional unexpand specialize connect bind "
            "select-latest browse popup history use recall rerun run "
            "show help\n"
            "shell commands:   catalog [entities|tools|data|flows], "
            "save, quit\n")
