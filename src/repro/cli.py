"""Command-line interface to a persisted design environment.

A thin, scriptable front end over :mod:`repro.persistence` and the
Hercules session — enough to drive a design from a shell::

    python -m repro init ./proj
    python -m repro info ./proj
    python -m repro browse ./proj Netlist --keyword mux
    python -m repro session ./proj --events run.jsonl \\
        -c "place Performance" -c "expand n0"
    python -m repro run ./proj my-flow --cache reuse
    python -m repro migrate ./proj --to sqlite
    python -m repro history ./proj Performance#0001
    python -m repro stale ./proj
    python -m repro events run.jsonl --type tool_finished
    python -m repro stats ./proj --events run.jsonl
    python -m repro health ./proj
    python -m repro ledger show ./proj --tail 5
    python -m repro ledger compare ./proj 3f2a 9c1b
    python -m repro ledger export ./proj --format prometheus
    python -m repro run ./proj my-flow --profile --trace
    python -m repro profile flamegraph ./proj -o profile.folded
    python -m repro profile queries ./proj
    python -m repro corpus generate ./corpus --seed 7
    python -m repro corpus run ./corpus --executor procpool
    python -m repro corpus export ./corpus/s02-diamond --format triples

Every mutating command saves the environment back to the directory, so
consecutive invocations build one continuous design history — the CLI
equivalent of the paper's persistent framework session.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import time
from typing import Callable, Sequence

from .errors import ReproError
from .execution.cache import CACHE_OFF, CACHE_POLICIES
from .execution.context import DesignEnvironment
from .execution.faults import FaultPlan
from .execution.resilience import ResiliencePolicy
from .history.consistency import consistency_report
from .history.database import BrowseFilter
from .history.query import dependents_of_type
from .history.store import BACKEND_SQLITE, BACKENDS
from .history.trace import backward_trace
from .obs import (EVENT_TYPES, HealthThresholds, JSONLSink,
                  MetricsRegistry, ProfileAggregate, QueryRecorder,
                  RunLedger, RunRecord, SamplingProfiler, append_profile,
                  critical_path, evaluate_health, export_chrome,
                  find_profile, follow_events, iter_jsonl_objects,
                  profile_record, read_profiles, read_spans, render_json,
                  render_profile, render_prometheus_ledger,
                  render_span_tree, render_timeline, replay_events,
                  replay_into, timeline_model, tool_baselines,
                  validate_chrome_trace, validate_spans)
from .obs.health import DEFAULT_K, DEFAULT_MIN_SAMPLES, DEFAULT_WINDOW
from .persistence import (CACHE_FILE, LEDGER_FILE, PROFILE_FILE,
                          SLOW_QUERY_FILE, TRACE_FILE,
                          load_environment, migrate_environment,
                          save_environment)
from .scenarios import (SHAPES, CorpusSpec, governance_records,
                        history_signature, load_corpus,
                        materialize_governance, materialize_scenario,
                        register_corpus_encapsulations, render_jsonl,
                        signature_digest, spec_from_entry,
                        triples_records, validate_governance,
                        validate_triples, write_corpus)
from .schema.standard import fig1_schema, fig2_schema, odyssey_schema
from .tools import install_standard_tools, register_standard_encapsulations
from .ui.session import HerculesSession

SCHEMAS = {
    "fig1": fig1_schema,
    "fig2": fig2_schema,
    "odyssey": odyssey_schema,
}


def _load(directory: str) -> DesignEnvironment:
    env = load_environment(directory)
    register_standard_encapsulations(env)
    # scenario-corpus environments carry their tool salts in the
    # schema; no-op for standard schemas
    register_corpus_encapsulations(env)
    return env


def cmd_init(args: argparse.Namespace) -> int:
    schema = SCHEMAS[args.schema]()
    env = DesignEnvironment(schema, user=args.user)
    install_standard_tools(env)
    save_environment(env, args.directory, backend=args.backend)
    print(f"initialized {args.directory} with the {args.schema!r} "
          f"schema ({len(env.db)} tool instances installed)")
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    if migrate_environment(args.directory, args.to):
        print(f"migrated {args.directory} to the {args.to!r} history "
              "backend")
    else:
        print(f"{args.directory} already uses the {args.to!r} history "
              "backend; nothing to do")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    print(f"environment: {args.directory}")
    print(f"  schema: {env.schema.name} ({len(env.schema)} entities, "
          f"{len(env.schema.dependencies())} dependencies)")
    print(f"  history: {len(env.db)} instances, "
          f"{len(env.db.datastore)} data blobs")
    print(f"  flow catalog: {list(env.flow_catalog.names())}")
    print(f"  tools: {[e.name for e in env.schema.tools()]}")
    return 0


def cmd_browse(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    filters = BrowseFilter(keywords=tuple(args.keyword or ()),
                           user=args.user)
    for instance in env.db.browse(args.entity_type, filters=filters):
        name = instance.name or "-"
        print(f"{instance.instance_id:<28} {instance.user:<10} "
              f"{name}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    print(backward_trace(env.db, args.instance).render())
    instance = env.db.get(args.instance)
    if instance.trace_id:
        # join history to the run ledger: the producing run's record
        # carries the same trace id the instance was stamped with
        run = RunLedger(pathlib.Path(args.directory)
                        / LEDGER_FILE).for_trace(instance.trace_id)
        if run is not None:
            print(f"produced by run {run.run_id}:")
            print(f"  {run.render()}")
    if instance.span_id:
        trace_log = pathlib.Path(args.directory) / TRACE_FILE
        if trace_log.exists():
            spans = {s.span_id: s
                     for s in read_spans(trace_log, strict=False)
                     if s.trace_id == instance.trace_id}
            span = spans.get(instance.span_id)
            if span is not None:
                print(f"produced by span {span.span_id} of trace "
                      f"{span.trace_id}:")
                print(f"  {span.render()}")
                parent = spans.get(span.parent_id or "")
                if parent is not None:
                    print(f"  within {parent.render()}")
                return 0
        print(f"produced by span {instance.span_id} of trace "
              f"{instance.trace_id} (trace log not available)")
    return 0


def cmd_uses(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    if args.entity_type:
        rows = dependents_of_type(env.db, args.instance,
                                  args.entity_type)
        for instance in rows:
            print(instance.instance_id)
    else:
        for instance_id in env.db.consumers_of(args.instance):
            print(instance_id)
    return 0


def cmd_stale(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    report = consistency_report(env.db, args.entity_type)
    if not report:
        print("everything is up to date")
        return 0
    for instance_id, reasons in sorted(report.items()):
        print(f"{instance_id}:")
        for reason in reasons:
            print(f"  {reason}")
    return 1  # shell-friendly: stale state is a nonzero exit


def cmd_retrace(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    report = env.retrace(args.instance)
    save_environment(env, args.directory)
    print(f"retraced {args.instance}: created {list(report.created)}")
    return 0


def _run_resilience(args: argparse.Namespace
                    ) -> tuple[ResiliencePolicy | None,
                               FaultPlan | None]:
    """Build the policy/fault plan the ``run`` flags describe."""
    faults = None
    if args.fault_plan:
        faults = FaultPlan.load(args.fault_plan)
    resilience = None
    if args.retries or args.timeout is not None or args.degrade:
        resilience = ResiliencePolicy(
            retries=args.retries,
            timeout=args.timeout,
            degrade=args.degrade,
            # the plan's seed drives the backoff jitter too, so one
            # seed reproduces the whole chaos drill, delays included
            seed=faults.seed if faults is not None else 0)
    return resilience, faults


def cmd_run(args: argparse.Namespace) -> int:
    if args.executor in ("scheduled", "procpool") and args.target:
        print("error: --target is not supported with "
              f"--executor {args.executor} (invocation-level "
              "scheduling always runs the whole flow)",
              file=sys.stderr)
        return 2
    if args.backend:
        # migrate-then-run: convert the directory first (a no-op when
        # it already uses the requested backend), then load normally
        migrate_environment(args.directory, args.backend)
    env = _load(args.directory)
    sink = None
    if args.events:
        sink = JSONLSink(args.events)
        env.bus.subscribe(sink)
    trace_sink = None
    if args.trace:
        trace_sink = JSONLSink(
            pathlib.Path(args.directory) / TRACE_FILE)
        env.tracer.subscribe(trace_sink)
    profiler = None
    if args.profile or args.profile_memory:
        if args.profile_interval_ms <= 0:
            print("error: --profile-interval-ms must be > 0",
                  file=sys.stderr)
            return 2
        recorder = QueryRecorder(
            slow_log=pathlib.Path(args.directory) / SLOW_QUERY_FILE,
            backend=env.db.backend)
        profiler = SamplingProfiler(
            args.profile_interval_ms / 1000.0,
            track_memory=args.profile_memory)
        profiler.query_recorder = recorder
        env.db.store.set_query_recorder(recorder)
        # every executor the environment hands out below inherits it
        env.profiler = profiler
        profiler.start()
    flow = env.plan_flow(args.flow)
    resilience, faults = _run_resilience(args)
    cache = None if args.cache == "off" else args.cache
    try:
        if args.executor == "parallel":
            executor = env.parallel_executor(
                machines=args.machines, cache=cache,
                resilience=resilience, faults=faults)
            report = executor.execute(flow, targets=args.target or None,
                                      force=args.force)
        elif args.executor == "scheduled":
            executor = env.scheduled_executor(
                machines=args.machines, cache=cache,
                resilience=resilience, faults=faults)
            report = executor.execute(flow, force=args.force)
        elif args.executor == "procpool":
            executor = env.process_executor(
                workers=args.workers, cache=cache,
                resilience=resilience, faults=faults)
            report = executor.execute(flow, force=args.force)
        else:
            executor = env.executor(cache=cache, resilience=resilience,
                                    faults=faults)
            report = executor.execute(flow, targets=args.target or None,
                                      force=args.force)
    except ReproError as error:
        # Execution failure (as opposed to CLI usage failure, exit 2):
        # the ledger has the error-path record; exit 1 so scripted
        # chaos drills can distinguish "flow failed" from "bad flags".
        print(f"error: run of {args.flow!r} failed: {error}",
              file=sys.stderr)
        return 1
    finally:
        if profiler is not None:
            profiler.stop()
        if sink is not None:
            sink.close()
        if trace_sink is not None:
            trace_sink.close()
    save_environment(env, args.directory)
    print(f"ran {args.flow!r}: {report.runs} tool runs, "
          f"{len(report.created)} instances created, "
          f"{report.cache_hits} cache hits "
          f"({len(report.reused)} instances reused)")
    if args.trace and env.tracer.last_trace_id:
        print(f"  trace {env.tracer.last_trace_id} appended to "
              f"{trace_sink.path}")
    if profiler is not None:
        records = env.ledger.records() if env.ledger is not None else ()
        target = pathlib.Path(args.directory) / PROFILE_FILE
        append_profile(target, profile_record(
            profiler.aggregate,
            run_id=records[-1].run_id if records else "",
            trace_id=env.tracer.last_trace_id if args.trace else "",
            flow=args.flow, executor=args.executor,
            query=profiler.query_recorder.summary() or None))
        print(f"  profile: {profiler.aggregate.samples} stack "
              f"sample(s) @{args.profile_interval_ms:g}ms appended to "
              f"{target}")
    if report.cache_hits:
        print(f"  saved {report.time_saved * 1000.0:.1f}ms and "
              f"{report.bytes_saved} bytes of tool output")
    if report.retries or report.timeouts:
        print(f"  resilience: {report.retries} retries, "
              f"{report.timeouts} timeouts")
    for instance_id in report.created:
        print(f"  created {instance_id}")
    for instance_id in report.reused:
        print(f"  reused  {instance_id}")
    for failure in report.failures:
        print(f"  FAILED  {failure.render()}")
    if report.quarantined:
        print("  quarantined tool types: "
              + ", ".join(report.quarantined))
    # a degraded run that lost invocations is still a failed run to
    # the shell, even though partial results were recorded
    return 1 if report.failures else 0


def cmd_session(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    sink = None
    if args.events:
        sink = JSONLSink(args.events)
        env.bus.subscribe(sink)
    session = HerculesSession(env)
    script = "\n".join(args.command or ())
    if args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            script = handle.read() + "\n" + script
    try:
        output = session.run_script(script)
    finally:
        if sink is not None:
            sink.close()
    print(output)
    save_environment(env, args.directory)
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    from .ui.shell import HerculesShell

    env = _load(args.directory)
    shell = HerculesShell(
        env, on_save=lambda e: save_environment(e, args.directory))
    shell.cmdloop()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .history.statistics import history_statistics

    env = _load(args.directory)
    stats = history_statistics(env.db)
    cache_summary = None
    cache_path = pathlib.Path(args.directory) / CACHE_FILE
    if cache_path.exists():
        snapshot = json.loads(cache_path.read_text(encoding="utf-8"))
        entries = snapshot.get("entries", {})
        groups = sum(len(e.get("groups", ())) for e in entries.values())
        cache_summary = {"keys": len(entries), "results": groups}
    records = RunLedger(
        pathlib.Path(args.directory) / LEDGER_FILE).records()
    metrics = None
    if args.events:
        metrics = MetricsRegistry()
        replay_into(replay_events(args.events), metrics)
    if args.json:
        payload = {
            "history": stats.to_dict(),
            "cache": cache_summary,
            "ledger": {
                "runs": len(records),
                "last": records[-1].to_dict() if records else None,
            },
        }
        if metrics is not None:
            payload["metrics"] = metrics.snapshot()
        print(render_json(payload))
        return 0
    print(stats.render())
    if cache_summary is not None:
        print(f"derivation cache: {cache_summary['keys']} keys, "
              f"{cache_summary['results']} remembered results")
    if records:
        print(f"run ledger: {len(records)} recorded runs, latest:")
        print(f"  {records[-1].render()}")
        last = records[-1]
        if last.workers:
            steals = sum(w.steals for w in last.workers.values())
            respawns = sum(w.respawns for w in last.workers.values())
            print(f"workers (latest run): {len(last.workers)} "
                  f"worker(s), utilization "
                  f"{last.worker_utilization:.0%}, "
                  f"steals={steals}, respawns={respawns}")
            for name in sorted(last.workers):
                print(f"  {name}: {last.workers[name].render()}")
    if metrics is not None:
        print(metrics.render())
    return 0


def _event_filter(args: argparse.Namespace
                  ) -> "Callable[..., bool] | None":
    """Shared --type/--flow/--tool/--since predicate; None = bad args."""
    wanted = set(args.type) if args.type else None
    if wanted is not None:
        unknown = wanted - EVENT_TYPES
        if unknown:
            print(f"error: unknown event type(s) {sorted(unknown)}; "
                  f"known: {sorted(EVENT_TYPES)}", file=sys.stderr)
            return None

    def keep(event: object) -> bool:
        if wanted is not None and event.event_type not in wanted:
            return False
        if args.flow and event.flow != args.flow:
            return False
        if args.tool and event.tool_type != args.tool:
            return False
        if args.since is not None and event.timestamp < args.since:
            return False
        return True

    return keep


def _follow_events_cli(args: argparse.Namespace,
                       keep: "Callable[..., bool]") -> int:
    if args.replay or args.tail is not None:
        print("error: --follow cannot be combined with --replay "
              "or --tail", file=sys.stderr)
        return 2
    if args.poll <= 0:
        print(f"error: --poll must be > 0, got {args.poll}",
              file=sys.stderr)
        return 2
    stop = None
    if args.duration is not None:
        deadline = time.monotonic() + args.duration
        stop = lambda: time.monotonic() >= deadline  # noqa: E731
    try:
        for event in follow_events(args.logfile,
                                   poll_interval=args.poll,
                                   stop=stop):
            if not keep(event):
                continue
            print(render_json(event.to_dict()) if args.json
                  else event.render(), flush=True)
    except KeyboardInterrupt:
        return 0
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    keep = _event_filter(args)
    if keep is None:
        return 2
    if args.follow:
        # a missing logfile is fine here: follow waits for the first
        # write, the usual way to watch an environment about to run
        return _follow_events_cli(args, keep)
    # lenient: a truncated trailing line (killed writer) is tolerated
    events = (e for e in replay_events(args.logfile, strict=False)
              if keep(e))
    if args.replay:
        metrics = MetricsRegistry()
        count = replay_into(events, metrics)
        print(f"replayed {count} events")
        print(metrics.render())
        return 0
    if args.tail is not None and args.tail < 0:
        print(f"error: --tail must be >= 0, got {args.tail}",
              file=sys.stderr)
        return 2
    selected = list(events)
    if args.tail is not None:
        selected = selected[-args.tail:] if args.tail else []
    for event in selected:
        if args.json:
            # same canonical serializer as ledger records and
            # `repro stats --json`: sorted keys, one object per line
            print(render_json(event.to_dict()))
        else:
            print(event.render())
    return 0


def _ledger_path(path: str) -> pathlib.Path:
    """Accept either a ledger file or an environment directory."""
    candidate = pathlib.Path(path)
    if candidate.is_dir():
        return candidate / LEDGER_FILE
    return candidate


def _thresholds(args: argparse.Namespace) -> HealthThresholds:
    return HealthThresholds(window=args.window, k=args.k,
                            min_samples=args.min_samples)


def cmd_health(args: argparse.Namespace) -> int:
    ledger = RunLedger(_ledger_path(args.path))
    records = ledger.records()
    thresholds = _thresholds(args)
    report = evaluate_health(records, thresholds=thresholds)
    if args.json:
        print(render_json(report.to_dict()))
        return report.exit_code
    print(report.render())
    if args.baselines and len(records) > 1:
        baselines = tool_baselines(
            list(records[:-1]), window=thresholds.window,
            k=thresholds.k)
        if baselines:
            print("baselines:")
            for tool in sorted(baselines):
                print(f"  {baselines[tool].render()}")
    return report.exit_code


def cmd_ledger(args: argparse.Namespace) -> int:
    ledger = RunLedger(_ledger_path(args.path))
    records = ledger.records()
    if args.ledger_command == "show":
        if args.flow:
            records = tuple(r for r in records if r.flow == args.flow)
        if args.tail is not None:
            if args.tail < 0:
                print(f"error: --tail must be >= 0, got {args.tail}",
                      file=sys.stderr)
                return 2
            records = records[-args.tail:] if args.tail else ()
        for record in records:
            print(render_json(record.to_dict()) if args.json
                  else record.render())
        return 0
    if args.ledger_command == "compare":
        return _ledger_compare(ledger.find(args.run_a),
                               ledger.find(args.run_b))
    # export
    if args.format == "json":
        text = "\n".join(render_json(r.to_dict()) for r in records)
        text = text + "\n" if text else ""
    else:
        text = render_prometheus_ledger(records)
        if args.events:
            metrics = MetricsRegistry()
            replay_into(replay_events(args.events), metrics)
            text += metrics.render_prometheus()
    if args.output:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(records)} ledger records to {args.output} "
              f"({args.format} format)")
    else:
        print(text, end="")
    return 0


def _ledger_compare(before: RunRecord, after: RunRecord) -> int:
    """Side-by-side diff of two runs (the regression-hunt view)."""

    def delta(label: str, old: float, new: float,
              scale: float = 1e3, unit: str = "ms") -> str:
        change = ""
        if old > 0:
            change = f" ({(new - old) / old:+.1%})"
        return (f"  {label}: {old * scale:.2f}{unit} -> "
                f"{new * scale:.2f}{unit}{change}")

    print(f"comparing {before.run_id} (flow {before.flow}, "
          f"{before.executor}) -> {after.run_id} (flow {after.flow}, "
          f"{after.executor})")
    print(delta("wall_time", before.wall_time, after.wall_time))
    print(delta("serial_time", before.serial_time, after.serial_time))
    if before.queue_wait or after.queue_wait:
        print(delta("queue_wait", before.queue_wait, after.queue_wait))
    print(f"  parallelism: {before.parallelism:.2f}x -> "
          f"{after.parallelism:.2f}x")
    print(f"  tool runs: {before.runs} -> {after.runs}")
    print(f"  created: {before.created} -> {after.created}, "
          f"reused: {before.reused} -> {after.reused}")
    if before.cache_lookups or after.cache_lookups:
        print(f"  cache hits: {before.cache_hits}/"
              f"{before.cache_lookups} -> "
              f"{after.cache_hits}/{after.cache_lookups}")
    for tool in sorted(set(before.tools) | set(after.tools)):
        old = before.tools.get(tool)
        new = after.tools.get(tool)
        if old is None or new is None:
            status = "added" if old is None else "removed"
            print(f"  tool {tool}: {status}")
            continue
        print(delta(f"tool {tool} mean", old.duration.mean,
                    new.duration.mean))
    if before.errors or after.errors:
        print(f"  errors: {before.errors} -> {after.errors}"
              + (f" ({after.error})" if after.error else ""))
    return 0


def cmd_schema(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    from .core.render import schema_to_dot

    print(schema_to_dot(env.schema))
    return 0


def _trace_log(path: str) -> pathlib.Path:
    """Accept either a trace file or an environment directory."""
    candidate = pathlib.Path(path)
    if candidate.is_dir():
        return candidate / TRACE_FILE
    return candidate


def cmd_trace(args: argparse.Namespace) -> int:
    spans = list(read_spans(_trace_log(args.path), strict=False))
    if not spans:
        print("no spans recorded", file=sys.stderr)
        return 2
    if args.trace_command == "show":
        print(render_span_tree(spans, args.trace_id))
        return 0
    if args.trace_command == "critical-path":
        print(critical_path(spans, args.trace_id).render())
        return 0
    if args.trace_command == "timeline":
        if args.json:
            print(render_json(timeline_model(spans, args.trace_id)))
        else:
            print(render_timeline(spans, args.trace_id,
                                  width=args.width))
        return 0
    # export
    problems = validate_spans(spans)
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
    payload = export_chrome(spans, args.trace_id)
    broken = validate_chrome_trace(payload)
    if broken:
        for problem in broken:
            print(f"error: {problem}", file=sys.stderr)
        return 2
    text = json.dumps(payload, indent=1, sort_keys=True)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n",
                                             encoding="utf-8")
        print(f"wrote {len(payload['traceEvents'])} trace events to "
              f"{args.output} (open in https://ui.perfetto.dev)")
    else:
        print(text)
    return 0


def _profile_log(path: str) -> pathlib.Path:
    """Accept either a profiles file or an environment directory."""
    candidate = pathlib.Path(path)
    if candidate.is_dir():
        return candidate / PROFILE_FILE
    return candidate


def cmd_profile(args: argparse.Namespace) -> int:
    if args.profile_command == "queries":
        env = _load(args.directory)
        store = env.db.store
        audit = getattr(store, "query_plan_audit", None)
        if audit is None:
            print("error: the query-plan audit requires the sqlite "
                  "history backend (run 'repro migrate "
                  f"{args.directory} --to sqlite' first; current "
                  f"backend: {env.db.backend})", file=sys.stderr)
            return 2
        regressions = 0
        audits = audit()
        for entry in audits:
            shape = "INDEX" if entry["uses_index"] else (
                "SCAN" if entry["full_scan"] else "-")
            note = ""
            if entry["expect_index"] and entry["full_scan"]:
                note = "  <-- full-scan regression"
                regressions += 1
            print(f"{entry['name']:<26} {shape:<6} "
                  f"{entry['fingerprint']}  {entry['statement']}{note}")
        indexed = sum(1 for entry in audits if entry["uses_index"])
        scans = sum(1 for entry in audits if entry["full_scan"])
        print(f"{len(audits)} statements audited: {indexed} indexed, "
              f"{scans} full scan(s), {regressions} regression(s)")
        slow_log = pathlib.Path(args.directory) / SLOW_QUERY_FILE
        if slow_log.exists():
            slow = sum(1 for _ in iter_jsonl_objects(slow_log,
                                                     strict=False))
            print(f"slow-query log: {slow} entries in {slow_log}")
        return 1 if regressions else 0
    record = find_profile(read_profiles(_profile_log(args.path)),
                          args.run)
    if args.profile_command == "show":
        print(render_profile(record))
        return 0
    if args.profile_command == "flamegraph":
        text = ProfileAggregate.from_dict(record).collapsed()
        if args.output:
            pathlib.Path(args.output).write_text(
                text + ("\n" if text else ""), encoding="utf-8")
            print(f"wrote {len(text.splitlines())} collapsed-stack "
                  f"line(s) to {args.output}")
        else:
            print(text)
        return 0
    # export: the raw record, one JSON object
    print(render_json(record))
    return 0


def _corpus_generate(args: argparse.Namespace) -> int:
    corpus = CorpusSpec(
        seed=args.seed, width=args.width, depth=args.depth,
        fanout=args.fanout, per_shape=args.per_shape,
        shapes=tuple(args.shapes) if args.shapes else SHAPES)
    target = write_corpus(corpus, args.directory)
    manifest = load_corpus(target)
    print(f"wrote {target}: {len(manifest['scenarios'])} scenario(s), "
          f"digest {manifest['digest'][:16]}")
    return 0


def _corpus_run(args: argparse.Namespace) -> int:
    root = pathlib.Path(args.directory)
    manifest = load_corpus(root)
    entries = manifest["scenarios"]
    if args.scenario:
        known = {entry["scenario_id"] for entry in entries}
        missing = sorted(set(args.scenario) - known)
        if missing:
            print(f"error: no such scenario(s): {', '.join(missing)} "
                  f"(corpus has {', '.join(sorted(known))})",
                  file=sys.stderr)
            return 2
        entries = [entry for entry in entries
                   if entry["scenario_id"] in set(args.scenario)]
    cache = None if args.cache == CACHE_OFF else args.cache
    failures = 0
    for entry in entries:
        spec = spec_from_entry(entry)
        scenario_dir = root / entry["scenario_id"]
        # every invocation re-materializes the scenario from its spec,
        # so runs are deterministic by construction: re-running never
        # re-derives on top of an existing history
        if scenario_dir.exists():
            shutil.rmtree(scenario_dir)
        env = materialize_scenario(spec)
        save_environment(env, scenario_dir, backend=args.backend)
        env = _load(str(scenario_dir))
        flow = env.flow_catalog.select(entry["flow"])
        if args.executor == "parallel":
            executor = env.parallel_executor(machines=args.machines,
                                             cache=cache)
        elif args.executor == "scheduled":
            executor = env.scheduled_executor(machines=args.machines,
                                              cache=cache)
        elif args.executor == "procpool":
            executor = env.process_executor(workers=args.workers,
                                            cache=cache)
        else:
            executor = env.executor(cache=cache)
        report = executor.execute(flow)
        save_environment(env, scenario_dir)
        digest = signature_digest(history_signature(env))
        expected = entry["expected"]
        ok = (digest == expected["history_digest"]
              and report.runs == expected["runs"]
              and not report.failures)
        print(f"  {entry['scenario_id']}: {report.runs} tool runs, "
              f"digest {digest[:16]} "
              f"[{'ok' if ok else 'MISMATCH'}]")
        if not ok:
            failures += 1
            if digest != expected["history_digest"]:
                print(f"    expected digest "
                      f"{expected['history_digest'][:16]}",
                      file=sys.stderr)
            if report.runs != expected["runs"]:
                print(f"    expected {expected['runs']} tool runs",
                      file=sys.stderr)
            for failure in report.failures:
                print(f"    FAILED {failure.render()}",
                      file=sys.stderr)
    verdict = ("all digests match the manifest" if not failures
               else f"{failures} scenario(s) diverged")
    print(f"ran {len(entries)} scenario(s) with the {args.executor} "
          f"executor: {verdict}")
    return 1 if failures else 0


def _corpus_export(args: argparse.Namespace) -> int:
    env = _load(args.directory)
    if args.format == "governance":
        runs = env.ledger.records() if env.ledger is not None else ()
        records = governance_records(env, runs)
        problems = validate_governance(
            materialize_governance(records), env, runs)
    else:
        records = triples_records(env)
        problems = validate_triples(records, env)
    for problem in problems:
        print(f"error: export validation: {problem}", file=sys.stderr)
    if problems:
        return 1
    text = render_jsonl(records)
    if args.output:
        pathlib.Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(records)} {args.format} record(s) to "
              f"{args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    if args.corpus_command == "generate":
        return _corpus_generate(args)
    if args.corpus_command == "run":
        return _corpus_run(args)
    return _corpus_export(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamically defined flows: command-line front end")
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser("init", help="create a new environment")
    init.add_argument("directory")
    init.add_argument("--schema", choices=sorted(SCHEMAS),
                      default="odyssey")
    init.add_argument("--user", default="designer")
    init.add_argument("--backend", choices=sorted(BACKENDS),
                      default=None,
                      help="history storage backend: whole-history "
                           "'json' (default) or indexed 'sqlite'")
    init.set_defaults(fn=cmd_init)

    migrate = commands.add_parser(
        "migrate", help="convert the history storage backend in place")
    migrate.add_argument("directory")
    migrate.add_argument("--to", choices=sorted(BACKENDS),
                         default=BACKEND_SQLITE,
                         help="target backend (default sqlite); "
                              "idempotent — converting to the current "
                              "backend is a no-op")
    migrate.set_defaults(fn=cmd_migrate)

    info = commands.add_parser("info", help="environment summary")
    info.add_argument("directory")
    info.set_defaults(fn=cmd_info)

    browse = commands.add_parser("browse", help="list instances")
    browse.add_argument("directory")
    browse.add_argument("entity_type")
    browse.add_argument("--keyword", action="append")
    browse.add_argument("--user")
    browse.set_defaults(fn=cmd_browse)

    history = commands.add_parser("history",
                                  help="derivation trace of an instance")
    history.add_argument("directory")
    history.add_argument("instance")
    history.set_defaults(fn=cmd_history)

    uses = commands.add_parser("uses",
                               help="forward chaining from an instance")
    uses.add_argument("directory")
    uses.add_argument("instance")
    uses.add_argument("entity_type", nargs="?")
    uses.set_defaults(fn=cmd_uses)

    stale = commands.add_parser("stale", help="consistency report")
    stale.add_argument("directory")
    stale.add_argument("entity_type", nargs="?")
    stale.set_defaults(fn=cmd_stale)

    retrace = commands.add_parser("retrace",
                                  help="re-derive a stale instance")
    retrace.add_argument("directory")
    retrace.add_argument("instance")
    retrace.set_defaults(fn=cmd_retrace)

    run = commands.add_parser(
        "run", help="execute a cataloged flow (optionally cached)")
    run.add_argument("directory")
    run.add_argument("flow", help="a flow name from the catalog "
                                  "(see 'repro info')")
    run.add_argument("--target", action="append",
                     help="only produce these nodes (repeatable)")
    run.add_argument("--force", action="store_true",
                     help="recompute even already-produced nodes")
    run.add_argument("--backend", choices=sorted(BACKENDS),
                     default=None,
                     help="migrate the environment to this history "
                          "backend before running (no-op when it "
                          "already matches)")
    run.add_argument("--cache", choices=sorted(CACHE_POLICIES),
                     default=CACHE_OFF,
                     help="re-execution cache policy: reuse remembered "
                          "results ('reuse'), also index new ones "
                          "('readwrite'), or neither ('off', default)")
    run.add_argument("--events",
                     help="record execution events to this JSONL log")
    run.add_argument("--trace", action="store_true",
                     help="record hierarchical spans to the "
                          "environment's trace.jsonl (inspect with "
                          "'repro trace')")
    run.add_argument("--executor",
                     choices=["sequential", "parallel", "scheduled",
                              "procpool"],
                     default="sequential",
                     help="sequential (default), parallel disjoint "
                          "branches, invocation-level scheduling, or "
                          "real multi-core worker processes "
                          "('procpool')")
    run.add_argument("--machines", type=int, default=2,
                     help="machine pool size for the parallel/"
                          "scheduled executors (default 2)")
    run.add_argument("--workers", type=int, default=2,
                     help="worker process count for --executor "
                          "procpool (default 2)")
    run.add_argument("--retries", type=int, default=0,
                     help="retry transiently failing tool invocations "
                          "up to N times with deterministic backoff "
                          "(default 0: fail on first error)")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-invocation watchdog budget in seconds "
                          "(timed-out attempts count as transient "
                          "failures and are retried)")
    run.add_argument("--fault-plan",
                     help="JSON file scripting deterministic tool "
                          "faults (chaos drills; see DESIGN.md §10)")
    run.add_argument("--profile", action="store_true",
                     help="sample in-tool stacks during the run and "
                          "append a profile record to the "
                          "environment's profiles.jsonl (inspect with "
                          "'repro profile')")
    run.add_argument("--profile-interval-ms", type=float, default=5.0,
                     help="with --profile: sampling interval in "
                          "milliseconds (default 5)")
    run.add_argument("--profile-memory", action="store_true",
                     help="with --profile: also track per-invocation "
                          "tracemalloc high-water marks (implies "
                          "--profile; expensive — tracemalloc "
                          "multiplies allocation-heavy tool cost)")
    run.add_argument("--degrade", action="store_true",
                     help="on unrecoverable invocation failure, record "
                          "it and keep executing independent work "
                          "instead of aborting (exit 1 if anything "
                          "was lost)")
    run.set_defaults(fn=cmd_run)

    session = commands.add_parser(
        "session", help="run Hercules commands against the environment")
    session.add_argument("directory")
    session.add_argument("-c", "--command", action="append",
                         help="a session command (repeatable)")
    session.add_argument("--script", help="file of session commands")
    session.add_argument("--events",
                         help="record execution events to this JSONL log")
    session.set_defaults(fn=cmd_session)

    shell = commands.add_parser(
        "shell", help="interactive Hercules prompt over the environment")
    shell.add_argument("directory")
    shell.set_defaults(fn=cmd_shell)

    stats = commands.add_parser("stats",
                                help="history statistics report")
    stats.add_argument("directory")
    stats.add_argument("--events",
                       help="also summarize metrics from a JSONL event "
                            "log (see 'repro events')")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output (one JSON object: "
                            "history, cache, ledger, metrics)")
    stats.set_defaults(fn=cmd_stats)

    health = commands.add_parser(
        "health", help="judge the latest recorded run against its "
                       "ledger baseline (exit 1 on any failing check)")
    health.add_argument("path",
                        help="an environment directory or a ledger "
                             "JSONL file")
    health.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="baseline window: how many prior runs "
                             "feed the EWMA/MAD baselines "
                             f"(default {DEFAULT_WINDOW})")
    health.add_argument("--k", type=float, default=DEFAULT_K,
                        help="drift gate in sigma-equivalent MADs "
                             f"above the median (default {DEFAULT_K})")
    health.add_argument("--min-samples", type=int,
                        default=DEFAULT_MIN_SAMPLES,
                        help="baseline runs required before a check "
                             "may gate "
                             f"(default {DEFAULT_MIN_SAMPLES})")
    health.add_argument("--baselines", action="store_true",
                        help="also print the per-tool baselines")
    health.add_argument("--json", action="store_true",
                        help="machine-readable health report")
    health.set_defaults(fn=cmd_health)

    ledger = commands.add_parser(
        "ledger", help="inspect the longitudinal run ledger "
                       "(one record per executed flow)")
    ledger_commands = ledger.add_subparsers(dest="ledger_command",
                                            required=True)
    show = ledger_commands.add_parser(
        "show", help="list recorded runs, oldest first")
    show.add_argument("path",
                      help="an environment directory or a ledger "
                           "JSONL file")
    show.add_argument("--flow", help="keep only runs of this flow")
    show.add_argument("--tail", type=int,
                      help="show only the last N matching runs")
    show.add_argument("--json", action="store_true",
                      help="print raw JSON records instead of the "
                           "rendered form")
    show.set_defaults(fn=cmd_ledger)
    compare = ledger_commands.add_parser(
        "compare", help="diff two recorded runs (unambiguous run-id "
                        "prefixes accepted)")
    compare.add_argument("path",
                         help="an environment directory or a ledger "
                              "JSONL file")
    compare.add_argument("run_a", help="baseline run id")
    compare.add_argument("run_b", help="run id to compare against it")
    compare.set_defaults(fn=cmd_ledger)
    export = ledger_commands.add_parser(
        "export", help="export the ledger for external tooling")
    export.add_argument("path",
                        help="an environment directory or a ledger "
                             "JSONL file")
    export.add_argument("--format", choices=["prometheus", "json"],
                        default="prometheus",
                        help="Prometheus text exposition format "
                             "(default) or one JSON object per line")
    export.add_argument("--events",
                        help="with --format prometheus: also replay "
                             "this JSONL event log into a metrics "
                             "registry and append its families")
    export.add_argument("-o", "--output",
                        help="write to this file instead of stdout")
    export.set_defaults(fn=cmd_ledger)

    events = commands.add_parser(
        "events", help="tail/filter/replay a JSONL execution event log")
    events.add_argument("logfile")
    events.add_argument("--type", action="append",
                        help="keep only this event type (repeatable)")
    events.add_argument("--flow", help="keep only events of this flow")
    events.add_argument("--tool",
                        help="keep only events of this tool type")
    events.add_argument("--tail", type=int,
                        help="show only the last N matching events")
    events.add_argument("--json", action="store_true",
                        help="print raw JSON lines instead of the "
                             "rendered form")
    events.add_argument("--since", type=float,
                        help="keep only events with timestamp >= this "
                             "(same clock the log was recorded with)")
    events.add_argument("--replay", action="store_true",
                        help="replay matching events into a metrics "
                             "registry and print the summary")
    events.add_argument("--follow", action="store_true",
                        help="tail mode: wait for the log (it may not "
                             "exist yet) and print matching events as "
                             "a live run appends them")
    events.add_argument("--poll", type=float, default=0.5,
                        help="with --follow: poll interval in seconds "
                             "(default 0.5)")
    events.add_argument("--duration", type=float,
                        help="with --follow: stop after this many "
                             "seconds (default: follow until ^C)")
    events.set_defaults(fn=cmd_events)

    trace = commands.add_parser(
        "trace", help="inspect a recorded span trace "
                      "(see 'repro run --trace')")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)
    for name, description in (
            ("show", "print the span tree of a trace"),
            ("critical-path",
             "longest cost-weighted dependency chain with per-task "
             "slack"),
            ("timeline",
             "ASCII Gantt chart: one row per execution lane (procpool "
             "worker or scheduler machine)"),
            ("export", "export a trace for external viewers")):
        sub = trace_commands.add_parser(name, help=description)
        sub.add_argument("path",
                         help="a trace JSONL file or an environment "
                              "directory containing trace.jsonl")
        sub.add_argument("--trace-id",
                         help="select a trace (default: the latest "
                              "recorded run)")
        if name == "timeline":
            sub.add_argument("--width", type=int, default=60,
                             help="chart width in columns "
                                  "(default 60)")
            sub.add_argument("--json", action="store_true",
                             help="emit the lane/interval model as "
                                  "one JSON object instead of the "
                                  "ASCII chart")
        if name == "export":
            sub.add_argument("--format", choices=["chrome"],
                             default="chrome",
                             help="output format: Chrome trace-event "
                                  "JSON, loadable in Perfetto "
                                  "(default)")
            sub.add_argument("-o", "--output",
                             help="write to this file instead of "
                                  "stdout")
        sub.set_defaults(fn=cmd_trace)

    profile = commands.add_parser(
        "profile", help="inspect recorded sampling profiles and "
                        "history-query observability "
                        "(see 'repro run --profile')")
    profile_commands = profile.add_subparsers(dest="profile_command",
                                              required=True)
    for name, description in (
            ("show", "per-tool self-time summary of one recorded "
                     "profile"),
            ("flamegraph", "collapsed-stack output for flamegraph.pl "
                           "or speedscope"),
            ("queries", "EXPLAIN QUERY PLAN index audit of the sqlite "
                        "history backend plus the slow-query log "
                        "(exit 1 on a full-scan regression)"),
            ("export", "raw JSON of one recorded profile")):
        sub = profile_commands.add_parser(name, help=description)
        if name == "queries":
            sub.add_argument("directory",
                             help="an environment directory using the "
                                  "sqlite history backend")
        else:
            sub.add_argument("path",
                             help="a profiles JSONL file or an "
                                  "environment directory containing "
                                  "profiles.jsonl")
            sub.add_argument("--run",
                             help="select a run id (unambiguous "
                                  "prefixes accepted; default: the "
                                  "latest profile)")
        if name == "flamegraph":
            sub.add_argument("-o", "--output",
                             help="write to this file instead of "
                                  "stdout")
        sub.set_defaults(fn=cmd_profile)

    corpus = commands.add_parser(
        "corpus", help="seeded scenario corpora: deterministic "
                       "generator, cross-executor runner, "
                       "governance/triples exports (DESIGN.md §15)")
    corpus_commands = corpus.add_subparsers(dest="corpus_command",
                                            required=True)
    generate = corpus_commands.add_parser(
        "generate", help="write a corpus.v1 manifest; the same seed "
                         "regenerates byte-identical output")
    generate.add_argument("directory",
                          help="corpus directory (created if missing)")
    generate.add_argument("--seed", type=int, default=0,
                          help="corpus seed (default 0)")
    generate.add_argument("--width", type=int, default=2,
                          help="branch/lane count for independent and "
                               "pipeline shapes (default 2)")
    generate.add_argument("--depth", type=int, default=2,
                          help="chain length for chain, diamond and "
                               "pipeline shapes (default 2)")
    generate.add_argument("--fanout", type=int, default=2,
                          help="fork count for the fork_join shape "
                               "(default 2, minimum 2)")
    generate.add_argument("--per-shape", type=int, default=1,
                          dest="per_shape",
                          help="scenarios per dependency shape "
                               "(default 1)")
    generate.add_argument("--shape", action="append", dest="shapes",
                          choices=list(SHAPES),
                          help="restrict to these shapes (repeatable; "
                               "default: all five)")
    generate.set_defaults(fn=cmd_corpus)
    corpus_run = corpus_commands.add_parser(
        "run", help="materialize + execute the corpus scenarios and "
                    "check history digests against the manifest")
    corpus_run.add_argument("directory",
                            help="a directory holding corpus.json")
    corpus_run.add_argument("--executor",
                            choices=["sequential", "parallel",
                                     "scheduled", "procpool"],
                            default="sequential",
                            help="executor to drive every scenario "
                                 "with (default sequential)")
    corpus_run.add_argument("--machines", type=int, default=2,
                            help="machine pool size for the parallel/"
                                 "scheduled executors (default 2)")
    corpus_run.add_argument("--workers", type=int, default=2,
                            help="worker process count for --executor "
                                 "procpool (default 2)")
    corpus_run.add_argument("--cache", choices=sorted(CACHE_POLICIES),
                            default=CACHE_OFF,
                            help="re-execution cache policy "
                                 "(default off)")
    corpus_run.add_argument("--backend", choices=sorted(BACKENDS),
                            default=None,
                            help="history backend for the scenario "
                                 "environments (default: json)")
    corpus_run.add_argument("--scenario", action="append",
                            help="only run these scenario ids "
                                 "(repeatable; default: all)")
    corpus_run.set_defaults(fn=cmd_corpus)
    corpus_export = corpus_commands.add_parser(
        "export", help="export a saved environment's runs + history "
                       "as a governance graph or ontology triples")
    corpus_export.add_argument("directory",
                               help="a saved environment directory "
                                    "(e.g. one corpus scenario)")
    corpus_export.add_argument("--format",
                               choices=["governance", "triples"],
                               default="governance",
                               help="cg.v1 governance JSONL (default) "
                                    "or subject/predicate/object "
                                    "triples")
    corpus_export.add_argument("-o", "--output",
                               help="write to this file instead of "
                                    "stdout")
    corpus_export.set_defaults(fn=cmd_corpus)

    schema = commands.add_parser("schema",
                                 help="dump the schema as Graphviz DOT")
    schema.add_argument("directory")
    schema.set_defaults(fn=cmd_schema)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream closed the pipe mid-print (`repro events | head`):
        # exit quietly like any unix filter.  Point stdout at devnull so
        # the interpreter's shutdown flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
