"""Device model sets: the technology parameters of the substrate.

A :class:`DeviceModels` instance is what the *Device Model Editor* of
Fig. 1 produces.  The switch-level simulator uses these parameters to turn
settle steps and transition counts into nanoseconds and microwatts, so
editing a model set genuinely changes downstream Performance instances —
which is what drives the consistency-maintenance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class DeviceModels:
    """Technology parameters for simulation and analysis."""

    name: str = "generic-1993"
    vdd: float = 5.0               # supply voltage [V]
    vth: float = 0.7               # threshold voltage [V]
    stage_delay_ns: float = 1.2    # delay of one switch-level settle step
    node_cap_ff: float = 12.0      # per-net capacitance [fF]
    weak_ratio: float = 0.25       # drive of a weak device vs strong

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if not 0 < self.vth < self.vdd:
            raise ValueError("vth must lie between 0 and vdd")
        if self.stage_delay_ns <= 0 or self.node_cap_ff <= 0:
            raise ValueError("delay and capacitance must be positive")
        if not 0 < self.weak_ratio < 1:
            raise ValueError("weak_ratio must be in (0, 1)")

    def scaled(self, *, name: str | None = None,
               speed: float = 1.0) -> "DeviceModels":
        """A faster/slower process corner (speed > 1 means faster)."""
        if speed <= 0:
            raise ValueError("speed factor must be positive")
        return replace(self, name=name or f"{self.name}-x{speed:g}",
                       stage_delay_ns=self.stage_delay_ns / speed)

    def switching_energy_fj(self) -> float:
        """Energy of one net transition: C * Vdd^2 (in femtojoules)."""
        return self.node_cap_ff * self.vdd * self.vdd / 1000.0

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "vdd": self.vdd, "vth": self.vth,
                "stage_delay_ns": self.stage_delay_ns,
                "node_cap_ff": self.node_cap_ff,
                "weak_ratio": self.weak_ratio}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DeviceModels":
        return cls(**payload)


def default_models() -> DeviceModels:
    return DeviceModels()
