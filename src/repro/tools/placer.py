"""Annealing cell placer (the *Placer* of Fig. 1 / the Fig. 3 flow).

Takes a hierarchical netlist (cell instances) plus a placement spec and
produces a placed-and-routed :class:`~repro.tools.layout.Layout`:

* cells are assigned to row/column slots, then improved by seeded
  simulated annealing on half-perimeter wirelength (HPWL);
* every net is realized as one multi-point wire visiting all its
  terminals (the layout model's positional connectivity makes this
  electrically exact, if geometrically idealized);
* netlist inputs become west-edge pins, outputs east-edge pins.

The placement spec is a plain dict: ``row_width`` (cells per row),
``seed``, ``moves`` (annealing iterations) and ``spacing``.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping

from ..errors import ToolError
from .cells import CellLibrary
from .layout import Layout, Point
from .netlist import GROUND, POWER, Netlist

DEFAULT_SPEC: dict[str, Any] = {
    "row_width": 4,
    "seed": 20061993,
    "moves": 400,
    "spacing": 1,
}


def _net_terminals(netlist: Netlist) -> dict[str, list[tuple[str, str]]]:
    """net -> [(instance, port), ...] over non-supply nets."""
    terminals: dict[str, list[tuple[str, str]]] = {}
    for instance in netlist.instances():
        for port, net in instance.connections:
            if net in (POWER, GROUND):
                continue
            terminals.setdefault(net, []).append((instance.name, port))
    return terminals


def _slot_origin(slot: int, row_width: int, pitch_x: int,
                 pitch_y: int) -> Point:
    row, col = divmod(slot, row_width)
    return (col * pitch_x + 2, row * pitch_y)


def _hpwl(points: list[Point]) -> int:
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def place(netlist: Netlist, spec: Mapping[str, Any],
          library: CellLibrary) -> Layout:
    """Place and route a hierarchical netlist into a layout."""
    instances = netlist.instances()
    if not instances:
        raise ToolError(
            f"netlist {netlist.name!r} has no cell instances; the placer "
            "places cells, not bare transistors")
    merged = dict(DEFAULT_SPEC)
    merged.update(spec)
    row_width = max(1, int(merged["row_width"]))
    rng = random.Random(int(merged["seed"]))
    moves = max(0, int(merged["moves"]))
    spacing = max(0, int(merged["spacing"]))

    pitch_x = max(library.cell(i.cell).width for i in instances) + spacing
    pitch_y = max(library.cell(i.cell).height for i in instances) + spacing
    slot_count = max(len(instances),
                     row_width * math.ceil(len(instances) / row_width))
    # slot assignment: instance index -> slot
    assignment = {i.name: slot for slot, i in enumerate(instances)}
    free_slots = set(range(slot_count)) - set(assignment.values())
    terminals = _net_terminals(netlist)

    def port_point(instance_name: str, port: str,
                   slots: Mapping[str, int]) -> Point:
        instance = next(i for i in instances if i.name == instance_name)
        cell = library.cell(instance.cell)
        ox, oy = _slot_origin(slots[instance_name], row_width, pitch_x,
                              pitch_y)
        dx, dy = cell.port_offset(port)
        return (ox + dx, oy + dy)

    def cost(slots: Mapping[str, int]) -> int:
        total = 0
        for net_terminals in terminals.values():
            points = [port_point(i, p, slots) for i, p in net_terminals]
            if len(points) > 1:
                total += _hpwl(points)
        return total

    current_cost = cost(assignment)
    temperature = max(1.0, current_cost / 2.0)
    names = [i.name for i in instances]
    for step in range(moves):
        candidate = dict(assignment)
        a = rng.choice(names)
        if free_slots and rng.random() < 0.3:
            slot = rng.choice(sorted(free_slots))
            old = candidate[a]
            candidate[a] = slot
            new_free = (free_slots - {slot}) | {old}
        else:
            b = rng.choice(names)
            candidate[a], candidate[b] = candidate[b], candidate[a]
            new_free = free_slots
        candidate_cost = cost(candidate)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta /
                                                 max(temperature, 1e-9)):
            assignment = candidate
            free_slots = new_free
            current_cost = candidate_cost
        temperature *= 0.97

    # realize the layout
    layout = Layout(f"{netlist.name}-placed")
    for instance in instances:
        x, y = _slot_origin(assignment[instance.name], row_width,
                            pitch_x, pitch_y)
        layout.place(instance.name, instance.cell, x, y)
    # pins on the west/east edges
    rows = math.ceil(slot_count / row_width)
    east_x = row_width * pitch_x + 2
    pin_points: dict[str, Point] = {}
    for index, net in enumerate(netlist.inputs):
        pin = layout.add_pin(net, 0, index + 1, "in")
        pin_points[net] = pin.point()
    for index, net in enumerate(netlist.outputs):
        pin = layout.add_pin(net, east_x, index + 1, "out")
        pin_points[net] = pin.point()
    # wires: one multi-point wire per net, visiting pins + ports
    for net in sorted(set(terminals) | set(pin_points)):
        points: list[Point] = []
        if net in pin_points:
            points.append(pin_points[net])
        for instance_name, port in terminals.get(net, ()):
            points.append(port_point(instance_name, port, assignment))
        if len(points) >= 1:
            layout.route(net, sorted(points))
    _ = rows  # rows kept for readers; geometry derives from slots
    return layout


def placement_quality(layout: Layout) -> dict[str, int]:
    """Quick quality metrics used by tests and the ablation bench."""
    return {"wirelength": layout.wirelength(),
            "cells": layout.cell_count,
            "area": layout.area()}
