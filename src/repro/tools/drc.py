"""Design rule checking: geometric sanity for layouts.

A DRC tool rounds out the verification side of the substrate (the paper's
framework is explicitly tool-agnostic: adding a checker is one schema
entity plus one encapsulation, which the maintenance benchmark counts).

Checked rules:

* ``overlap``     — two cell footprints intersect;
* ``short``       — wires of two different nets share a grid point, or a
  wire of one net passes through another net's pin or port point;
* ``pin-stack``   — two pins on the same coordinate;
* ``off-grid``    — a placement at negative coordinates beyond the
  allowed margin (pins and PLA loads may sit slightly outside);
* ``dangling``    — a cell port with no wire or pin touching it
  (reported as a warning, not a violation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .cells import CellLibrary
from .layout import Layout, Point

MARGIN = 16  # how far outside the origin quadrant geometry may sit


@dataclass(frozen=True)
class DrcViolation:
    """One broken rule."""

    rule: str
    message: str
    at: Point | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "message": self.message,
                "at": list(self.at) if self.at is not None else None}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DrcViolation":
        at = payload.get("at")
        return cls(payload["rule"], payload["message"],
                   tuple(at) if at is not None else None)

    def __str__(self) -> str:
        where = f" at {self.at}" if self.at is not None else ""
        return f"[{self.rule}]{where} {self.message}"


@dataclass(frozen=True)
class DrcReport:
    """Outcome of one DRC run."""

    layout: str
    clean: bool
    violations: tuple[DrcViolation, ...]
    warnings: tuple[DrcViolation, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"layout": self.layout, "clean": self.clean,
                "violations": [v.to_dict() for v in self.violations],
                "warnings": [w.to_dict() for w in self.warnings]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DrcReport":
        return cls(payload["layout"], payload["clean"],
                   tuple(DrcViolation.from_dict(v)
                         for v in payload["violations"]),
                   tuple(DrcViolation.from_dict(w)
                         for w in payload["warnings"]))

    def __bool__(self) -> bool:
        return self.clean

    def render(self) -> str:
        lines = [f"DRC report for {self.layout!r}: "
                 f"{'CLEAN' if self.clean else 'VIOLATIONS'}"]
        lines.extend(f"  {v}" for v in self.violations)
        lines.extend(f"  (warning) {w}" for w in self.warnings)
        return "\n".join(lines)


def check_design_rules(layout: Layout, library: CellLibrary) -> DrcReport:
    """Run every rule; return the structured report."""
    violations: list[DrcViolation] = []
    warnings: list[DrcViolation] = []
    _check_overlaps(layout, library, violations)
    _check_shorts(layout, library, violations)
    _check_pin_stacks(layout, violations)
    _check_off_grid(layout, violations)
    _check_dangling(layout, library, warnings)
    return DrcReport(layout.name, not violations, tuple(violations),
                     tuple(warnings))


def _footprint(placement, library: CellLibrary
               ) -> tuple[int, int, int, int]:
    cell = library.cell(placement.cell)
    return (placement.x, placement.y,
            placement.x + cell.width, placement.y + cell.height)


def _check_overlaps(layout: Layout, library: CellLibrary,
                    violations: list[DrcViolation]) -> None:
    placements = layout.placements()
    for index, first in enumerate(placements):
        ax1, ay1, ax2, ay2 = _footprint(first, library)
        for second in placements[index + 1:]:
            bx1, by1, bx2, by2 = _footprint(second, library)
            if ax1 < bx2 and bx1 < ax2 and ay1 < by2 and by1 < ay2:
                violations.append(DrcViolation(
                    "overlap",
                    f"cells {first.name!r} and {second.name!r} overlap",
                    (max(ax1, bx1), max(ay1, by1))))


def _point_owners(layout: Layout, library: CellLibrary
                  ) -> dict[Point, set[str]]:
    """Every labelled electrical claim on each coordinate."""
    owners: dict[Point, set[str]] = {}
    for wire in layout.wires():
        for point in wire.points:
            owners.setdefault(point, set()).add(f"net:{wire.net}")
    for pin in layout.pins():
        owners.setdefault(pin.point(), set()).add(f"net:{pin.net}")
    return owners


def _check_shorts(layout: Layout, library: CellLibrary,
                  violations: list[DrcViolation]) -> None:
    for point, owners in _point_owners(layout, library).items():
        nets = {o for o in owners if o.startswith("net:")}
        if len(nets) > 1:
            names = sorted(o.split(":", 1)[1] for o in nets)
            violations.append(DrcViolation(
                "short", f"nets {names} meet", point))


def _check_pin_stacks(layout: Layout,
                      violations: list[DrcViolation]) -> None:
    seen: dict[Point, str] = {}
    for pin in layout.pins():
        if pin.point() in seen:
            violations.append(DrcViolation(
                "pin-stack",
                f"pins {seen[pin.point()]!r} and {pin.net!r} coincide",
                pin.point()))
        seen[pin.point()] = pin.net


def _check_off_grid(layout: Layout,
                    violations: list[DrcViolation]) -> None:
    for placement in layout.placements():
        if placement.x < -MARGIN or placement.y < -MARGIN:
            violations.append(DrcViolation(
                "off-grid",
                f"cell {placement.name!r} placed far outside the grid",
                placement.origin()))


def _check_dangling(layout: Layout, library: CellLibrary,
                    warnings: list[DrcViolation]) -> None:
    connected: set[Point] = set()
    for wire in layout.wires():
        connected.update(wire.points)
    for pin in layout.pins():
        connected.add(pin.point())
    for placement in layout.placements():
        cell = library.cell(placement.cell)
        for port in cell.ports:
            dx, dy = cell.port_offset(port)
            at = (placement.x + dx, placement.y + dy)
            if at not in connected:
                warnings.append(DrcViolation(
                    "dangling",
                    f"port {port!r} of {placement.name!r} is "
                    "unconnected", at))
