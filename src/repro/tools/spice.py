"""SPICE-flavoured netlist interchange.

The 1993 tool world speaks SPICE decks; this module writes and parses a
conservative subset so netlists can enter and leave the framework as
text files:

* ``M<name> <drain> <gate> <source> <bulk> <model> [W=x] [L=x]`` —
  transistor cards (bulk is written as the matching supply and ignored
  on read; model names containing ``p`` map to PMOS, else NMOS; a
  ``weak`` suffix selects the weak strength);
* ``X<name> <net...> <subckt>`` — hierarchical cell instances; the
  called cell's port order comes from the library (writing) or from a
  ``.subckt`` header earlier in the deck / the standard library
  (reading);
* ``.subckt <name> <ports...>`` / ``.ends`` wrap the top cell, with
  ``*.in`` / ``*.out`` comment cards carrying port directions (plain
  SPICE has no directions; the comments round-trip them).
"""

from __future__ import annotations

from ..errors import ToolError
from .cells import CellLibrary, standard_library
from .netlist import GROUND, NMOS, PMOS, POWER, STRONG, WEAK, Netlist


def to_spice(netlist: Netlist,
             library: CellLibrary | None = None) -> str:
    """Render a netlist as a SPICE deck (one ``.subckt`` per netlist)."""
    library = library if library is not None else standard_library()
    lines = [f"* {netlist.name} — written by repro.tools.spice"]
    lines.append(f"* .in {' '.join(netlist.inputs)}".rstrip())
    lines.append(f"* .out {' '.join(netlist.outputs)}".rstrip())
    ports = " ".join((*netlist.inputs, *netlist.outputs))
    lines.append(f".subckt {netlist.name} {ports}".rstrip())
    for t in netlist.transistors():
        bulk = GROUND if t.kind == NMOS else POWER
        model = t.kind + ("_weak" if t.strength == WEAK else "")
        lines.append(
            f"M{t.name} {t.drain} {t.gate} {t.source} {bulk} {model} "
            f"W={t.width!r} L={t.length!r}")
    for instance in netlist.instances():
        cell = library.cell(instance.cell)
        connections = instance.connection_map()
        nets = " ".join(connections[port] for port in cell.ports)
        lines.append(f"X{instance.name} {nets} {instance.cell}")
    lines.append(".ends")
    return "\n".join(lines) + "\n"


def from_spice(text: str,
               library: CellLibrary | None = None) -> Netlist:
    """Parse a deck written by :func:`to_spice` (or compatible)."""
    library = library if library is not None else standard_library()
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    netlist: Netlist | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        lower = line.lower()
        if lower.startswith("* .in"):
            inputs = tuple(line.split()[2:])
            continue
        if lower.startswith("* .out"):
            outputs = tuple(line.split()[2:])
            continue
        if line.startswith("*"):
            continue
        if lower.startswith(".subckt"):
            parts = line.split()
            if len(parts) < 2:
                raise ToolError("malformed .subckt card")
            name = parts[1]
            declared = tuple(parts[2:])
            if not inputs and not outputs:
                inputs = declared  # no direction comments: all inputs
            netlist = Netlist(name, inputs, outputs)
            continue
        if lower.startswith(".ends"):
            break
        if netlist is None:
            raise ToolError(f"card before .subckt: {line!r}")
        if line[0] in "Mm":
            _parse_transistor(netlist, line)
        elif line[0] in "Xx":
            _parse_instance(netlist, line, library)
        else:
            raise ToolError(f"unsupported SPICE card: {line!r}")
    if netlist is None:
        raise ToolError("no .subckt found in deck")
    return netlist


def _parse_transistor(netlist: Netlist, line: str) -> None:
    parts = line.split()
    if len(parts) < 6:
        raise ToolError(f"malformed transistor card: {line!r}")
    name = parts[0][1:]
    drain, gate, source, _bulk, model = parts[1:6]
    width = length = 1.0
    for token in parts[6:]:
        key, _, value = token.partition("=")
        if key.upper() == "W":
            width = float(value)
        elif key.upper() == "L":
            length = float(value)
    model_lower = model.lower()
    kind = PMOS if model_lower.startswith("p") else NMOS
    strength = WEAK if model_lower.endswith("weak") else STRONG
    netlist.add(name, kind, gate=gate, source=source, drain=drain,
                width=width, length=length, strength=strength)


def _parse_instance(netlist: Netlist, line: str,
                    library: CellLibrary) -> None:
    parts = line.split()
    if len(parts) < 3:
        raise ToolError(f"malformed subcircuit card: {line!r}")
    name = parts[0][1:]
    cell_name = parts[-1]
    nets = parts[1:-1]
    if cell_name not in library:
        raise ToolError(f"instance {name!r} calls unknown cell "
                        f"{cell_name!r}")
    cell = library.cell(cell_name)
    if len(nets) != len(cell.ports):
        raise ToolError(
            f"instance {name!r}: {len(nets)} nets for "
            f"{len(cell.ports)} ports of {cell_name!r}")
    netlist.add_instance(name, cell_name,
                         **dict(zip(cell.ports, nets)))
