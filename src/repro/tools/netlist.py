"""Netlist model: the central design-data structure of the substrate.

A :class:`Netlist` is a SPICE-flavoured circuit description holding

* **transistors** — switch-level MOS devices with gate/source/drain nets,
  a width/length, and a drive *strength* (``strong`` for ordinary
  devices, ``weak`` for pseudo-NMOS loads so ratioed logic resolves);
* **cell instances** — hierarchical references to library cells
  (SPICE ``X`` lines); :meth:`Netlist.flatten` expands them through a
  cell library into a transistor-level netlist.

Net names are plain strings; ``VDD`` and ``GND`` are the global supply
nets.  The model is immutable-by-convention: editing tools build modified
copies (:meth:`Netlist.copy`, :meth:`Netlist.with_device_width`), which is
what makes content-addressed storage and version lineages meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable

from ..errors import ToolError

POWER = "VDD"
GROUND = "GND"

NMOS = "nmos"
PMOS = "pmos"

STRONG = "strong"
WEAK = "weak"


@dataclass(frozen=True)
class Transistor:
    """One MOS switch."""

    name: str
    kind: str                 # NMOS or PMOS
    gate: str
    source: str
    drain: str
    width: float = 1.0
    length: float = 1.0
    strength: str = STRONG

    def __post_init__(self) -> None:
        if self.kind not in (NMOS, PMOS):
            raise ToolError(f"transistor {self.name!r}: kind must be "
                            f"{NMOS!r} or {PMOS!r}, got {self.kind!r}")
        if self.strength not in (STRONG, WEAK):
            raise ToolError(f"transistor {self.name!r}: strength must be "
                            f"{STRONG!r} or {WEAK!r}")
        if self.width <= 0 or self.length <= 0:
            raise ToolError(f"transistor {self.name!r}: non-positive "
                            "geometry")

    @property
    def terminals(self) -> tuple[str, str, str]:
        return (self.gate, self.source, self.drain)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "gate": self.gate,
                "source": self.source, "drain": self.drain,
                "width": self.width, "length": self.length,
                "strength": self.strength}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Transistor":
        return cls(**payload)


@dataclass(frozen=True)
class CellInstance:
    """A hierarchical reference to a library cell (SPICE ``X`` line)."""

    name: str
    cell: str
    connections: tuple[tuple[str, str], ...]  # (port, net) pairs

    def connection_map(self) -> dict[str, str]:
        return dict(self.connections)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "cell": self.cell,
                "connections": [[p, n] for p, n in self.connections]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CellInstance":
        return cls(payload["name"], payload["cell"],
                   tuple((p, n) for p, n in payload["connections"]))


class Netlist:
    """A circuit: IO ports plus transistors and/or cell instances."""

    def __init__(self, name: str, inputs: Iterable[str] = (),
                 outputs: Iterable[str] = ()) -> None:
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self._transistors: dict[str, Transistor] = {}
        self._instances: dict[str, CellInstance] = {}
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise ToolError(f"netlist {name!r}: nets {sorted(overlap)} "
                            "declared both input and output")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_transistor(self, transistor: Transistor) -> Transistor:
        if transistor.name in self._transistors:
            raise ToolError(f"duplicate transistor {transistor.name!r}")
        self._transistors[transistor.name] = transistor
        return transistor

    def add(self, name: str, kind: str, gate: str, source: str,
            drain: str, *, width: float = 1.0, length: float = 1.0,
            strength: str = STRONG) -> Transistor:
        return self.add_transistor(Transistor(
            name, kind, gate, source, drain, width, length, strength))

    def add_instance(self, name: str, cell: str,
                     **connections: str) -> CellInstance:
        if name in self._instances:
            raise ToolError(f"duplicate cell instance {name!r}")
        instance = CellInstance(name, cell,
                                tuple(sorted(connections.items())))
        self._instances[name] = instance
        return instance

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def transistors(self) -> tuple[Transistor, ...]:
        return tuple(self._transistors[k]
                     for k in sorted(self._transistors))

    def instances(self) -> tuple[CellInstance, ...]:
        return tuple(self._instances[k] for k in sorted(self._instances))

    def transistor(self, name: str) -> Transistor:
        try:
            return self._transistors[name]
        except KeyError:
            raise ToolError(f"no transistor {name!r} in {self.name!r}"
                            ) from None

    @property
    def device_count(self) -> int:
        return len(self._transistors)

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    @property
    def is_flat(self) -> bool:
        return not self._instances

    def nets(self) -> tuple[str, ...]:
        """Every net name, supplies and IO included, sorted."""
        out = {POWER, GROUND, *self.inputs, *self.outputs}
        for transistor in self._transistors.values():
            out.update(transistor.terminals)
        for instance in self._instances.values():
            out.update(net for _, net in instance.connections)
        return tuple(sorted(out))

    def internal_nets(self) -> tuple[str, ...]:
        external = {POWER, GROUND, *self.inputs, *self.outputs}
        return tuple(n for n in self.nets() if n not in external)

    def total_width(self) -> float:
        return sum(t.width for t in self._transistors.values())

    # ------------------------------------------------------------------
    # derived netlists
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Netlist":
        clone = Netlist(name or self.name, self.inputs, self.outputs)
        clone._transistors = dict(self._transistors)
        clone._instances = dict(self._instances)
        return clone

    def with_device_width(self, device: str, width: float) -> "Netlist":
        """A copy with one transistor resized (optimizer move)."""
        transistor = self.transistor(device)
        clone = self.copy()
        clone._transistors[device] = replace(transistor, width=width)
        return clone

    def without_device(self, device: str) -> "Netlist":
        self.transistor(device)
        clone = self.copy()
        del clone._transistors[device]
        return clone

    def renamed(self, name: str) -> "Netlist":
        return self.copy(name)

    def flatten(self, library: "CellLibraryLike",
                name: str | None = None) -> "Netlist":
        """Expand cell instances into transistors via a cell library.

        Internal nets of each cell are prefixed with the instance name;
        unconnected cell ports raise.  Nested cells flatten recursively.
        """
        flat = Netlist(name or self.name, self.inputs, self.outputs)
        flat._transistors = dict(self._transistors)
        for instance in self.instances():
            cell = library.cell(instance.cell)
            mapping = instance.connection_map()
            missing = [p for p in cell.ports if p not in mapping]
            if missing:
                raise ToolError(
                    f"instance {instance.name!r} of {instance.cell!r}: "
                    f"unconnected ports {missing}")
            fragment = cell.netlist_fragment()
            sub = fragment.flatten(library) if not fragment.is_flat \
                else fragment
            for transistor in sub.transistors():
                flat.add_transistor(replace(
                    transistor,
                    name=f"{instance.name}.{transistor.name}",
                    gate=_map_net(transistor.gate, mapping, instance.name),
                    source=_map_net(transistor.source, mapping,
                                    instance.name),
                    drain=_map_net(transistor.drain, mapping,
                                   instance.name)))
        return flat

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "transistors": [t.to_dict() for t in self.transistors()],
            "instances": [i.to_dict() for i in self.instances()],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Netlist":
        netlist = cls(payload["name"], payload.get("inputs", ()),
                      payload.get("outputs", ()))
        for spec in payload.get("transistors", ()):
            netlist.add_transistor(Transistor.from_dict(spec))
        for spec in payload.get("instances", ()):
            instance = CellInstance.from_dict(spec)
            netlist._instances[instance.name] = instance
        return netlist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Netlist):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # content hash for set/dict membership
        return hash(repr(self.to_dict()))

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, {self.device_count} devices, "
                f"{self.instance_count} instances)")


def _map_net(net: str, mapping: dict[str, str], prefix: str) -> str:
    if net in (POWER, GROUND):
        return net
    if net in mapping:
        return mapping[net]
    return f"{prefix}.{net}"


class CellLibraryLike:
    """Protocol stub: anything with ``cell(name) -> CellDef``."""

    def cell(self, name: str):  # pragma: no cover - protocol only
        raise NotImplementedError
