"""Layout extraction: geometry back to a transistor netlist + statistics.

The *Extractor* of Fig. 1 produces **two** outputs from one run — an
*Extracted Netlist* and *Extraction Statistics* — which is the paper's
Fig. 5 multi-output subtask.  Connectivity is positional: a cell port,
wire point or pin sharing a grid coordinate is one electrical node; wires
merge the nodes along their points.  Net names are recovered from pins
first, then wire labels, then deterministic ``n<i>`` names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ToolError
from .cells import CellLibrary
from .layout import Layout, Point
from .netlist import GROUND, POWER, Netlist


@dataclass(frozen=True)
class ExtractionStatistics:
    """The statistics output of an extraction run."""

    layout: str
    cell_count: int
    transistor_count: int
    net_count: int
    wire_count: int
    wirelength: int
    area: int
    total_width: float
    cells_by_type: tuple[tuple[str, int], ...]

    def cells_by_type_map(self) -> dict[str, int]:
        return dict(self.cells_by_type)

    def to_dict(self) -> dict[str, Any]:
        return {
            "layout": self.layout,
            "cell_count": self.cell_count,
            "transistor_count": self.transistor_count,
            "net_count": self.net_count,
            "wire_count": self.wire_count,
            "wirelength": self.wirelength,
            "area": self.area,
            "total_width": self.total_width,
            "cells_by_type": [[c, n] for c, n in self.cells_by_type],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExtractionStatistics":
        return cls(
            layout=payload["layout"],
            cell_count=payload["cell_count"],
            transistor_count=payload["transistor_count"],
            net_count=payload["net_count"],
            wire_count=payload["wire_count"],
            wirelength=payload["wirelength"],
            area=payload["area"],
            total_width=payload["total_width"],
            cells_by_type=tuple((c, n) for c, n in
                                payload["cells_by_type"]),
        )


class _PointMerger:
    """Union-find over grid coordinates."""

    def __init__(self) -> None:
        self._parent: dict[Point, Point] = {}

    def _ensure(self, point: Point) -> None:
        if point not in self._parent:
            self._parent[point] = point

    def find(self, point: Point) -> Point:
        self._ensure(point)
        root = point
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[point] != root:
            self._parent[point], point = root, self._parent[point]
        return root

    def union(self, a: Point, b: Point) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def points(self) -> tuple[Point, ...]:
        return tuple(self._parent)


def extract(layout: Layout, library: CellLibrary
            ) -> tuple[Netlist, ExtractionStatistics]:
    """Extract the netlist and statistics from a layout.

    Returns the pair the Fig. 1 Extractor produces.  The netlist is flat
    (cell templates expanded) with IO ports taken from the layout's pins.
    """
    merger = _PointMerger()
    # wires merge their points
    for wire in layout.wires():
        first = wire.points[0]
        merger._ensure(first)
        for point in wire.points[1:]:
            merger.union(first, point)
    # cell ports and pins register their coordinates
    port_points: list[tuple[str, str, Point]] = []  # (instance, port, at)
    for placement in layout.placements():
        cell = library.cell(placement.cell)
        for port in cell.ports:
            dx, dy = cell.port_offset(port)
            at = (placement.x + dx, placement.y + dy)
            merger._ensure(at)
            port_points.append((placement.name, port, at))
    for pin in layout.pins():
        merger._ensure(pin.point())

    # name the electrical nodes: pins beat wire labels beat auto names
    names: dict[Point, str] = {}

    def claim(root: Point, name: str) -> None:
        existing = names.get(root)
        if existing is None:
            names[root] = name
        elif existing != name:
            raise ToolError(
                f"layout {layout.name!r}: node at {root} claimed as both "
                f"{existing!r} and {name!r} (short between nets)")

    for pin in layout.pins():
        claim(merger.find(pin.point()), pin.net)
    for wire in layout.wires():
        if wire.net:
            root = merger.find(wire.points[0])
            if root not in names:
                names[root] = wire.net
    auto = 0
    for point in sorted(merger.points()):
        root = merger.find(point)
        if root not in names:
            names[root] = f"n{auto}"
            auto += 1

    inputs = tuple(p.net for p in layout.pins() if p.direction == "in")
    outputs = tuple(p.net for p in layout.pins() if p.direction == "out")
    hierarchical = Netlist(f"{layout.name}-extracted", inputs, outputs)
    for placement in layout.placements():
        cell = library.cell(placement.cell)
        connections = {}
        for port in cell.ports:
            dx, dy = cell.port_offset(port)
            at = (placement.x + dx, placement.y + dy)
            connections[port] = names[merger.find(at)]
        hierarchical.add_instance(placement.name, placement.cell,
                                  **connections)
    netlist = hierarchical.flatten(library)

    nets = [n for n in netlist.nets() if n not in (POWER, GROUND)]
    by_type: dict[str, int] = {}
    for placement in layout.placements():
        by_type[placement.cell] = by_type.get(placement.cell, 0) + 1
    statistics = ExtractionStatistics(
        layout=layout.name,
        cell_count=layout.cell_count,
        transistor_count=netlist.device_count,
        net_count=len(nets),
        wire_count=len(layout.wires()),
        wirelength=layout.wirelength(),
        area=layout.area(library),
        total_width=netlist.total_width(),
        cells_by_type=tuple(sorted(by_type.items())),
    )
    return netlist, statistics
