"""Track router: geometric Manhattan wiring for placed layouts.

The placer realizes connectivity with idealized multi-point wires (every
terminal in one point set).  The router replaces them with *geometric*
Manhattan paths: each net gets a dedicated horizontal track in a routing
channel above the cell area, and every terminal connects to the track
with a vertical stub.  Because the layout model's connectivity is
positional, geometric wiring can create *shorts* where paths of
different nets cross — the router's job is to avoid that, and the DRC
checker (:mod:`repro.tools.drc`) verifies it did.

This makes the routed layout an honest physical view: wirelength is real
path length, and area includes the routing channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ToolError
from .cells import CellLibrary
from .layout import Layout, Point


@dataclass(frozen=True)
class RoutingSummary:
    """What the router did (returned alongside the layout by callers)."""

    nets: int
    tracks: int
    wirelength: int
    channel_height: int


def _terminals(layout: Layout, library: CellLibrary
               ) -> dict[str, list[Point]]:
    """net -> terminal points (cell ports via old wires, plus pins)."""
    # The pre-route layout stores connectivity as one point-set wire per
    # net; its points are exactly the terminals to connect.
    terminals: dict[str, list[Point]] = {}
    for wire in layout.wires():
        terminals.setdefault(wire.net, []).extend(wire.points)
    for pin in layout.pins():
        terminals.setdefault(pin.net, []).append(pin.point())
    return {net: sorted(set(points))
            for net, points in terminals.items()}


def route_layout(layout: Layout, library: CellLibrary, *,
                 track_pitch: int = 2
                 ) -> tuple[Layout, RoutingSummary]:
    """Re-route a layout with geometric track wiring.

    Every net with two or more terminals is assigned one horizontal
    track in a channel above the existing geometry; single-terminal nets
    keep a degenerate stub.  Vertical stubs share a column with their
    terminal, so two stubs can only meet if two terminals of different
    nets share a column — at different y, which is safe because a wire
    only claims its *listed* points (the grid model has no intersection
    between segments, only shared endpoints).

    Raises :class:`ToolError` if two different nets share a terminal
    point (a genuine short in the input).
    """
    terminals = _terminals(layout, library)
    seen: dict[Point, str] = {}
    for net, points in terminals.items():
        for point in points:
            if point in seen and seen[point] != net:
                raise ToolError(
                    f"layout {layout.name!r}: nets {seen[point]!r} and "
                    f"{net!r} share terminal {point}")
            seen[point] = net

    _, _, _, max_y = layout.bounding_box(library)
    channel_base = max_y + 2
    routed = Layout(f"{layout.name}-routed")
    for placement in layout.placements():
        routed.place(placement.name, placement.cell, placement.x,
                     placement.y)
    for pin in layout.pins():
        routed.add_pin(pin.net, pin.x, pin.y, pin.direction)

    track = 0
    for net in sorted(terminals):
        points = terminals[net]
        if len(points) <= 1:
            if points:
                routed.route(net, points)
            continue
        track_y = channel_base + track * track_pitch
        track += 1
        # one vertical stub per terminal, up to the net's track
        for x, y in points:
            routed.route(net, [(x, y), (x, track_y)])
        # the horizontal track visits every stub top, in x order, so the
        # stubs and the track share points and merge electrically
        span = sorted({(x, track_y) for x, _ in points})
        routed.route(net, span)
    summary = RoutingSummary(
        nets=len(terminals),
        tracks=track,
        wirelength=routed.wirelength(),
        channel_height=track * track_pitch + 2,
    )
    return routed, summary

