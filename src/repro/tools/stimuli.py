"""Stimulus generation: input vectors for the switch-level simulator.

A :class:`Stimuli` object is an ordered sequence of input vectors, each a
mapping from input net name to 0/1.  Generators cover the patterns the
benchmarks need: exhaustive truth-table sweeps, seeded random vectors and
walking-ones patterns.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class Stimuli:
    """An ordered set of input vectors."""

    name: str
    inputs: tuple[str, ...]
    vectors: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for vector in self.vectors:
            if len(vector) != len(self.inputs):
                raise ValueError(
                    f"stimuli {self.name!r}: vector {vector} does not "
                    f"match inputs {self.inputs}")
            if any(bit not in (0, 1) for bit in vector):
                raise ValueError(
                    f"stimuli {self.name!r}: vectors must be 0/1")

    def __len__(self) -> int:
        return len(self.vectors)

    def as_maps(self) -> tuple[dict[str, int], ...]:
        return tuple(dict(zip(self.inputs, vector))
                     for vector in self.vectors)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "inputs": list(self.inputs),
                "vectors": [list(v) for v in self.vectors]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Stimuli":
        return cls(payload["name"], tuple(payload["inputs"]),
                   tuple(tuple(v) for v in payload["vectors"]))


def exhaustive(inputs: Iterable[str], name: str = "exhaustive") -> Stimuli:
    """All 2^n input combinations, in counting order."""
    input_names = tuple(inputs)
    vectors = tuple(itertools.product((0, 1), repeat=len(input_names)))
    return Stimuli(name, input_names, vectors)


def random_vectors(inputs: Iterable[str], count: int, *, seed: int = 1,
                   name: str = "random") -> Stimuli:
    """``count`` seeded-random vectors (reproducible)."""
    input_names = tuple(inputs)
    rng = random.Random(seed)
    vectors = tuple(
        tuple(rng.randint(0, 1) for _ in input_names)
        for _ in range(count))
    return Stimuli(name, input_names, vectors)


def walking_ones(inputs: Iterable[str], name: str = "walking-ones"
                 ) -> Stimuli:
    """All-zero vector followed by each single-bit-high vector."""
    input_names = tuple(inputs)
    zero = tuple(0 for _ in input_names)
    vectors = [zero]
    for position in range(len(input_names)):
        vectors.append(tuple(1 if i == position else 0
                             for i in range(len(input_names))))
    return Stimuli(name, input_names, tuple(vectors))


def from_table(inputs: Iterable[str],
               rows: Iterable[Mapping[str, int]],
               name: str = "table") -> Stimuli:
    """Vectors from explicit ``{input: bit}`` rows."""
    input_names = tuple(inputs)
    vectors = tuple(tuple(row[i] for i in input_names) for row in rows)
    return Stimuli(name, input_names, vectors)
