"""COSMOS-style switch-level simulator.

The paper's Fig. 2 example is COSMOS [10]: a simulator *compiled* for a
given netlist that can then be executed on different stimuli — a tool
created during the design.  This module provides both halves:

* :func:`compile_netlist` — the *Sim Compiler*: turns a flat transistor
  netlist into a :class:`CompiledNetwork` (net indexing, transistor
  tables, channel-connected component partition precomputed);
* :meth:`CompiledNetwork.simulate` — runs input vectors against device
  models, producing a :class:`~repro.tools.performance.PerformanceReport`.

The value algebra is {0, 1, X} with two drive strengths.  Per settle
step, conduction states follow from gate values (an X gate conducts
*maybe*), then net values are resolved pessimistically:

1. strong components are formed over definitely/maybe-ON strong
   transistors; a component's value set is the union of the forced values
   (inputs, VDD, GND) it contains;
2. undriven strong components adopt the union of driven value sets
   reachable through ON/maybe-ON *weak* transistors (pseudo-NMOS
   pull-ups lose against strong pull-downs);
3. a value set {0} or {1} resolves to that value, {0,1} to X (fight or
   X-gate pessimism); an *undriven* component retains the union of its
   members' previous values (charge storage / charge sharing), so
   latches and dynamic nodes hold state — a node that was never driven
   retains its initial X.

Settle steps iterate to a fixpoint; the per-vector step count is the
delay observable, transitions between settled vectors the power
observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ToolError
from .device_models import DeviceModels
from .netlist import GROUND, NMOS, POWER, STRONG, Netlist
from .performance import ONE, UNKNOWN, ZERO, PerformanceReport, make_report
from .stimuli import Stimuli

# internal value encoding: bitmask {can-be-0, can-be-1}
_V0 = 1
_V1 = 2
_VX = _V0 | _V1

_TO_CHAR = {_V0: ZERO, _V1: ONE, _VX: UNKNOWN, 0: UNKNOWN}
_FROM_BIT = {0: _V0, 1: _V1}

_ON = 2
_MAYBE = 1
_OFF = 0


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


@dataclass(frozen=True)
class _CompiledTransistor:
    kind: str
    strong: bool
    gate: int
    source: int
    drain: int


class CompiledNetwork:
    """A netlist compiled for repeated simulation (the COSMOS product)."""

    def __init__(self, netlist: Netlist) -> None:
        if not netlist.is_flat:
            raise ToolError(
                f"netlist {netlist.name!r} has unexpanded cell instances; "
                "flatten it against a library before compiling")
        self.netlist = netlist
        self.nets = netlist.nets()
        self._index = {net: i for i, net in enumerate(self.nets)}
        self.power = self._index[POWER]
        self.ground = self._index[GROUND]
        self.input_indices = tuple(self._index[n] for n in netlist.inputs)
        self.output_indices = tuple(self._index[n]
                                    for n in netlist.outputs)
        self.transistors = tuple(
            _CompiledTransistor(
                t.kind, t.strength == STRONG, self._index[t.gate],
                self._index[t.source], self._index[t.drain])
            for t in netlist.transistors())
        self.max_steps = 2 * len(self.nets) + 8
        self._compile_groups()

    def _compile_groups(self) -> None:
        """Partition the network into channel-connected groups.

        This is the 'compilation' that makes the COSMOS trade-off real:
        nets connected through transistor channels (any strength, any
        state) form static groups; externally driven nets (supplies and
        declared inputs) are injectors and belong to no group.  During
        settling, only groups whose member transistors' *gate* nets
        changed need re-resolution — the event-driven evaluation a
        per-netlist compiled simulator buys.
        """
        n = len(self.nets)
        static_forced = {self.power, self.ground, *self.input_indices}
        uf = _UnionFind(n)
        for transistor in self.transistors:
            if (transistor.source not in static_forced
                    and transistor.drain not in static_forced):
                uf.union(transistor.source, transistor.drain)
        self.group_of_net = [-1] * n
        nets_by_group: list[list[int]] = []
        root_to_gid: dict[int, int] = {}
        for net in range(n):
            if net in static_forced:
                continue
            root = uf.find(net)
            gid = root_to_gid.get(root)
            if gid is None:
                gid = len(nets_by_group)
                root_to_gid[root] = gid
                nets_by_group.append([])
            nets_by_group[gid].append(net)
            self.group_of_net[net] = gid
        transistors_by_group: list[set[int]] = [
            set() for _ in nets_by_group]
        for index, transistor in enumerate(self.transistors):
            for terminal in (transistor.source, transistor.drain):
                gid = self.group_of_net[terminal]
                if gid >= 0:
                    transistors_by_group[gid].add(index)
        self.group_nets = tuple(tuple(nets) for nets in nets_by_group)
        self.group_transistors = tuple(
            tuple(sorted(members)) for members in transistors_by_group)
        # gate net -> groups whose resolution depends on it
        listeners: list[set[int]] = [set() for _ in range(n)]
        for gid, members in enumerate(self.group_transistors):
            for index in members:
                listeners[self.transistors[index].gate].add(gid)
        self.gate_listener_groups = tuple(
            tuple(sorted(groups)) for groups in listeners)

    # ------------------------------------------------------------------
    def net_index(self, net: str) -> int:
        try:
            return self._index[net]
        except KeyError:
            raise ToolError(f"no net {net!r} in compiled network") from None

    # ------------------------------------------------------------------
    def _conduction(self, values: list[int]) -> list[int]:
        states = []
        for transistor in self.transistors:
            gate = values[transistor.gate]
            if gate == _VX:
                states.append(_MAYBE)
            elif transistor.kind == NMOS:
                states.append(_ON if gate == _V1 else _OFF)
            else:  # PMOS
                states.append(_ON if gate == _V0 else _OFF)
        return states

    def _resolve(self, values: list[int], forced: dict[int, int]
                 ) -> list[int]:
        """One value-resolution pass given the current gate values.

        Forced nets (supplies and inputs) are *sources*, not conductors:
        a conduction path never continues through them, it injects their
        value into the adjacent component.  Components form over strong
        non-off devices first; weak devices then feed components that no
        strong source drives (pseudo-NMOS ratioing).  Maybe-on devices
        (X gate) participate everywhere, which makes unknowns propagate
        pessimistically.
        """
        states = self._conduction(values)
        n = len(self.nets)
        strong_uf = _UnionFind(n)
        strong_inject: list[tuple[int, int]] = []   # (net, value)
        weak_links: list[tuple[int, int]] = []      # (net, net)
        weak_inject: list[tuple[int, int]] = []     # (net, value)
        for transistor, state in zip(self.transistors, states):
            if state == _OFF:
                continue
            source, drain = transistor.source, transistor.drain
            source_forced = source in forced
            drain_forced = drain in forced
            if transistor.strong:
                if source_forced and drain_forced:
                    continue
                if source_forced:
                    strong_inject.append((drain, forced[source]))
                elif drain_forced:
                    strong_inject.append((source, forced[drain]))
                else:
                    strong_uf.union(source, drain)
            else:
                if source_forced and drain_forced:
                    continue
                if source_forced:
                    weak_inject.append((drain, forced[source]))
                elif drain_forced:
                    weak_inject.append((source, forced[drain]))
                else:
                    weak_links.append((source, drain))
        # strong component values from injections
        comp_value: dict[int, int] = {}
        for net, value in strong_inject:
            root = strong_uf.find(net)
            comp_value[root] = comp_value.get(root, 0) | value
        # weak tier: strong components joined through weak devices
        weak_uf = _UnionFind(n)
        for a, b in weak_links:
            weak_uf.union(strong_uf.find(a), strong_uf.find(b))
        super_value: dict[int, int] = {}
        for root, value in comp_value.items():
            super_root = weak_uf.find(root)
            super_value[super_root] = super_value.get(super_root, 0) | value
        for net, value in weak_inject:
            super_root = weak_uf.find(strong_uf.find(net))
            super_value[super_root] = (super_value.get(super_root, 0)
                                       | value)
        # charge retention: an undriven component keeps the union of its
        # members' previous values (charge sharing), so latches and
        # dynamic nodes hold state instead of decaying to X
        retained: dict[int, int] = {}
        for net in range(n):
            if net in forced:
                continue
            root = strong_uf.find(net)
            if root not in comp_value:
                retained[root] = retained.get(root, 0) | values[net]
        out = []
        for net in range(n):
            if net in forced:
                out.append(forced[net])
                continue
            root = strong_uf.find(net)
            value = comp_value.get(root, 0)
            if value == 0:
                value = super_value.get(weak_uf.find(root), 0)
            if value == 0:
                value = retained.get(root, _VX)
            out.append(value if value else _VX)
        return out

    def _resolve_group(self, gid: int, values: list[int],
                       forced: dict[int, int]) -> dict[int, int]:
        """Resolve one channel group; return the nets that changed.

        Identical algebra to :meth:`_resolve`, restricted to the group's
        nets and transistors (weak super-components never cross group
        boundaries because grouping unions every channel statically).
        """
        parent: dict[int, int] = {net: net for net in self.group_nets[gid]}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        strong_inject: list[tuple[int, int]] = []
        weak_links: list[tuple[int, int]] = []
        weak_inject: list[tuple[int, int]] = []
        for index in self.group_transistors[gid]:
            transistor = self.transistors[index]
            gate = values[transistor.gate]
            if gate == _VX:
                state = _MAYBE
            elif transistor.kind == NMOS:
                state = _ON if gate == _V1 else _OFF
            else:
                state = _ON if gate == _V0 else _OFF
            if state == _OFF:
                continue
            source, drain = transistor.source, transistor.drain
            source_forced = source in forced
            drain_forced = drain in forced
            if source_forced and drain_forced:
                continue
            inject = strong_inject if transistor.strong else weak_inject
            if source_forced:
                inject.append((drain, forced[source]))
            elif drain_forced:
                inject.append((source, forced[drain]))
            elif transistor.strong:
                union(source, drain)
            else:
                weak_links.append((source, drain))
        comp_value: dict[int, int] = {}
        for net, value in strong_inject:
            root = find(net)
            comp_value[root] = comp_value.get(root, 0) | value
        weak_parent: dict[int, int] = {net: net
                                       for net in self.group_nets[gid]}

        def wfind(x: int) -> int:
            while weak_parent[x] != x:
                weak_parent[x] = weak_parent[weak_parent[x]]
                x = weak_parent[x]
            return x

        for a, b in weak_links:
            ra, rb = wfind(find(a)), wfind(find(b))
            if ra != rb:
                weak_parent[ra] = rb
        super_value: dict[int, int] = {}
        for root, value in comp_value.items():
            super_root = wfind(root)
            super_value[super_root] = super_value.get(super_root,
                                                      0) | value
        for net, value in weak_inject:
            super_root = wfind(find(net))
            super_value[super_root] = super_value.get(super_root,
                                                      0) | value
        # charge retention: an undriven component keeps the union of
        # its members' previous values (charge sharing), so latches and
        # dynamic nodes hold state instead of decaying to X
        retained: dict[int, int] = {}
        for net in self.group_nets[gid]:
            root = find(net)
            if root not in comp_value:
                retained[root] = retained.get(root, 0) | values[net]
        changes: dict[int, int] = {}
        for net in self.group_nets[gid]:
            root = find(net)
            value = comp_value.get(root, 0)
            if value == 0:
                value = super_value.get(wfind(root), 0)
            if value == 0:
                value = retained.get(root, _VX)
            if value == 0:
                value = _VX
            if values[net] != value:
                changes[net] = value
        return changes

    # ------------------------------------------------------------------
    def simulate(self, stimuli: Stimuli,
                 models: DeviceModels | None = None) -> PerformanceReport:
        """Run every vector to a settled state; collect the report."""
        models = models if models is not None else DeviceModels()
        unknown_inputs = [i for i in stimuli.inputs
                          if i not in self._index]
        if unknown_inputs:
            raise ToolError(
                f"stimuli drive unknown nets {unknown_inputs}")
        undriven = set(self.netlist.inputs) - set(stimuli.inputs)
        if undriven:
            raise ToolError(
                f"stimuli must drive every declared input; missing "
                f"{sorted(undriven)}")
        n = len(self.nets)
        values = [_VX] * n
        values[self.power] = _V1
        values[self.ground] = _V0
        observed = tuple(self.netlist.outputs)
        waveforms: dict[str, list[str]] = {net: [] for net in observed}
        settle_steps: list[int] = []
        transitions: list[int] = []
        oscillating: list[int] = []
        previous = list(values)
        all_groups = tuple(range(len(self.group_nets)))
        for vector_index, vector in enumerate(stimuli.as_maps()):
            forced = {self.power: _V1, self.ground: _V0}
            for net, bit in vector.items():
                forced[self._index[net]] = _FROM_BIT[bit]
            for net, value in forced.items():
                values[net] = value
            steps = 0
            settled = False
            dirty = all_groups  # new forced values: full first pass
            while steps < self.max_steps:
                steps += 1
                changes: dict[int, int] = {}
                for gid in dirty:
                    changes.update(
                        self._resolve_group(gid, values, forced))
                if not changes:
                    settled = True
                    break
                next_dirty: set[int] = set()
                for net, value in changes.items():
                    values[net] = value
                    next_dirty.update(self.gate_listener_groups[net])
                dirty = tuple(sorted(next_dirty))
            if not settled:
                oscillating.append(vector_index)
                values = [_VX] * n
                for net, value in forced.items():
                    values[net] = value
            settle_steps.append(steps)
            transitions.append(sum(
                1 for i in range(n)
                if values[i] != previous[i] and values[i] != _VX
                and previous[i] != _VX))
            previous = list(values)
            for net in observed:
                waveforms[net].append(_TO_CHAR[values[self._index[net]]])
        return make_report(
            circuit=self.netlist.name,
            stimuli=stimuli.name,
            models=models,
            inputs=tuple(stimuli.inputs),
            outputs=observed,
            waveforms=waveforms,
            settle_steps=settle_steps,
            transitions=transitions,
            oscillating=oscillating,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"netlist": self.netlist.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CompiledNetwork":
        return cls(Netlist.from_dict(payload["netlist"]))

    def __repr__(self) -> str:
        return (f"CompiledNetwork({self.netlist.name!r}, "
                f"{len(self.nets)} nets, "
                f"{len(self.transistors)} transistors)")


def compile_netlist(netlist: Netlist, library=None) -> CompiledNetwork:
    """The Sim Compiler tool: netlist (flattened if needed) -> network."""
    if not netlist.is_flat:
        if library is None:
            raise ToolError(
                f"netlist {netlist.name!r} is hierarchical; the compiler "
                "needs a cell library to flatten it")
        netlist = netlist.flatten(library)
    return CompiledNetwork(netlist)


def simulate(netlist: Netlist, stimuli: Stimuli,
             models: DeviceModels | None = None,
             library=None) -> PerformanceReport:
    """One-shot interpretation: compile then run (the plain Simulator)."""
    return compile_netlist(netlist, library).simulate(stimuli, models)


def simulate_interpreted(netlist: Netlist, stimuli: Stimuli,
                         models: DeviceModels | None = None,
                         library=None) -> PerformanceReport:
    """Reference *interpretive* switch-level simulator.

    Works directly on the :class:`Netlist` object, re-deriving conduction
    structure from the transistor list with string-keyed dictionaries on
    every settle step — the way a naive interpretive simulator would.
    Exists for two reasons:

    * it is the differential-testing oracle for :class:`CompiledNetwork`
      (identical value algebra, independent implementation);
    * it quantifies the COSMOS claim (Fig. 2): compiling a netlist into
      an executable network pays off across repeated stimulus runs.
    """
    models = models if models is not None else DeviceModels()
    if not netlist.is_flat:
        if library is None:
            raise ToolError(
                f"netlist {netlist.name!r} is hierarchical; pass a "
                "library")
        netlist = netlist.flatten(library)
    nets = netlist.nets()
    unknown_inputs = [i for i in stimuli.inputs if i not in nets]
    if unknown_inputs:
        raise ToolError(f"stimuli drive unknown nets {unknown_inputs}")
    undriven = set(netlist.inputs) - set(stimuli.inputs)
    if undriven:
        raise ToolError(
            f"stimuli must drive every declared input; missing "
            f"{sorted(undriven)}")
    values: dict[str, int] = {net: _VX for net in nets}
    values[POWER] = _V1
    values[GROUND] = _V0
    observed = tuple(netlist.outputs)
    waveforms: dict[str, list[str]] = {net: [] for net in observed}
    settle_steps: list[int] = []
    transitions: list[int] = []
    oscillating: list[int] = []
    max_steps = 2 * len(nets) + 8
    previous = dict(values)
    for vector_index, vector in enumerate(stimuli.as_maps()):
        forced = {POWER: _V1, GROUND: _V0}
        for net, bit in vector.items():
            forced[net] = _FROM_BIT[bit]
        values.update(forced)
        steps = 0
        settled = False
        while steps < max_steps:
            steps += 1
            new_values = _interpret_step(netlist, values, forced)
            if new_values == values:
                settled = True
                break
            values = new_values
        if not settled:
            oscillating.append(vector_index)
            values = {net: _VX for net in nets}
            values.update(forced)
        settle_steps.append(steps)
        transitions.append(sum(
            1 for net in nets
            if values[net] != previous[net] and values[net] != _VX
            and previous[net] != _VX))
        previous = dict(values)
        for net in observed:
            waveforms[net].append(_TO_CHAR[values[net]])
    return make_report(
        circuit=netlist.name, stimuli=stimuli.name, models=models,
        inputs=tuple(stimuli.inputs), outputs=observed,
        waveforms=waveforms, settle_steps=settle_steps,
        transitions=transitions, oscillating=oscillating)


def _interpret_step(netlist: Netlist, values: dict[str, int],
                    forced: dict[str, int]) -> dict[str, int]:
    """One naive value-resolution pass over a raw netlist."""
    # conduction states, straight from the transistor list
    strong_parent: dict[str, str] = {net: net for net in values}

    def find(parent: dict[str, str], net: str) -> str:
        while parent[net] != net:
            parent[net] = parent[parent[net]]
            net = parent[net]
        return net

    def union(parent: dict[str, str], a: str, b: str) -> None:
        ra, rb = find(parent, a), find(parent, b)
        if ra != rb:
            parent[ra] = rb

    strong_inject: list[tuple[str, int]] = []
    weak_links: list[tuple[str, str]] = []
    weak_inject: list[tuple[str, int]] = []
    for t in netlist.transistors():
        gate = values[t.gate]
        if gate == _VX:
            state = _MAYBE
        elif t.kind == NMOS:
            state = _ON if gate == _V1 else _OFF
        else:
            state = _ON if gate == _V0 else _OFF
        if state == _OFF:
            continue
        source_forced = t.source in forced
        drain_forced = t.drain in forced
        bucket_inject = (strong_inject if t.strength == STRONG
                         else weak_inject)
        if source_forced and drain_forced:
            continue
        if source_forced:
            bucket_inject.append((t.drain, forced[t.source]))
        elif drain_forced:
            bucket_inject.append((t.source, forced[t.drain]))
        elif t.strength == STRONG:
            union(strong_parent, t.source, t.drain)
        else:
            weak_links.append((t.source, t.drain))
    comp_value: dict[str, int] = {}
    for net, value in strong_inject:
        root = find(strong_parent, net)
        comp_value[root] = comp_value.get(root, 0) | value
    weak_parent: dict[str, str] = {net: net for net in values}
    for a, b in weak_links:
        union(weak_parent, find(strong_parent, a),
              find(strong_parent, b))
    super_value: dict[str, int] = {}
    for root, value in comp_value.items():
        super_root = find(weak_parent, root)
        super_value[super_root] = super_value.get(super_root, 0) | value
    for net, value in weak_inject:
        super_root = find(weak_parent, find(strong_parent, net))
        super_value[super_root] = super_value.get(super_root, 0) | value
    # charge retention, mirroring the compiled engine exactly
    retained: dict[str, int] = {}
    for net in values:
        if net in forced:
            continue
        root = find(strong_parent, net)
        if root not in comp_value:
            retained[root] = retained.get(root, 0) | values[net]
    out: dict[str, int] = {}
    for net in values:
        if net in forced:
            out[net] = forced[net]
            continue
        root = find(strong_parent, net)
        value = comp_value.get(root, 0)
        if value == 0:
            value = super_value.get(find(weak_parent, root), 0)
        if value == 0:
            value = retained.get(root, _VX)
        out[net] = value if value else _VX
    return out


def logic_value(report: PerformanceReport, output: str,
                vector_index: int) -> str:
    """Convenience accessor for one settled output bit."""
    return report.waveform(output)[vector_index]


def truth_table(netlist: Netlist, library=None,
                models: DeviceModels | None = None
                ) -> dict[tuple[int, ...], tuple[str, ...]]:
    """Exhaustive simulation as a mapping input-bits -> output values."""
    from .stimuli import exhaustive

    network = compile_netlist(netlist, library)
    stim = exhaustive(network.netlist.inputs)
    report = network.simulate(stim, models)
    table = {}
    for index, vector in enumerate(stim.vectors):
        table[vector] = tuple(report.waveform(o)[index]
                              for o in network.netlist.outputs)
    return table
