"""Grid layout model: the physical view of a design.

A :class:`Layout` is a Manhattan grid carrying placed cell instances
(referencing a :class:`~repro.tools.cells.CellLibrary`), wires (polylines
of grid points, optionally pre-named with their net), and IO pins.  It is
deliberately simple — connectivity is positional: a cell port, wire point
or pin at the same grid coordinate belongs to the same electrical node,
which is exactly what the extractor recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import ToolError

Point = tuple[int, int]


@dataclass(frozen=True)
class Placement:
    """One placed cell instance."""

    name: str
    cell: str
    x: int
    y: int

    def origin(self) -> Point:
        return (self.x, self.y)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "cell": self.cell,
                "x": self.x, "y": self.y}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Placement":
        return cls(**payload)


@dataclass(frozen=True)
class Pin:
    """An IO pin: a named grid point with a direction.

    Directions are ``"in"``, ``"out"`` or ``"supply"`` — the extractor
    uses them to reconstruct the netlist's port lists.
    """

    net: str
    x: int
    y: int
    direction: str = "in"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out", "supply"):
            raise ToolError(f"pin {self.net!r}: bad direction "
                            f"{self.direction!r}")

    def point(self) -> Point:
        return (self.x, self.y)

    def to_dict(self) -> dict[str, Any]:
        return {"net": self.net, "x": self.x, "y": self.y,
                "direction": self.direction}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Pin":
        return cls(**payload)


@dataclass(frozen=True)
class Wire:
    """A polyline of grid points; every point is electrically one node."""

    net: str
    points: tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ToolError("a wire needs at least one point")

    def to_dict(self) -> dict[str, Any]:
        return {"net": self.net, "points": [[x, y] for x, y in self.points]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Wire":
        return cls(payload["net"],
                   tuple((x, y) for x, y in payload["points"]))

    def length(self) -> int:
        total = 0
        for (x1, y1), (x2, y2) in zip(self.points, self.points[1:]):
            total += abs(x1 - x2) + abs(y1 - y2)
        return total


class Layout:
    """Placed cells + wires + IO pins on an integer grid."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._placements: dict[str, Placement] = {}
        self._wires: list[Wire] = []
        self._pins: dict[str, Pin] = {}

    # ------------------------------------------------------------------
    # editing primitives (used by the layout editor tool)
    # ------------------------------------------------------------------
    def place(self, name: str, cell: str, x: int, y: int) -> Placement:
        if name in self._placements:
            raise ToolError(f"cell instance {name!r} already placed")
        placement = Placement(name, cell, x, y)
        self._placements[name] = placement
        return placement

    def move(self, name: str, x: int, y: int) -> Placement:
        old = self.placement(name)
        moved = Placement(old.name, old.cell, x, y)
        self._placements[name] = moved
        return moved

    def remove(self, name: str) -> None:
        self.placement(name)
        del self._placements[name]

    def route(self, net: str, points: Iterable[Point]) -> Wire:
        wire = Wire(net, tuple(tuple(p) for p in points))
        self._wires.append(wire)
        return wire

    def unroute(self, net: str) -> int:
        """Remove all wires of a net; returns how many were removed."""
        before = len(self._wires)
        self._wires = [w for w in self._wires if w.net != net]
        return before - len(self._wires)

    def add_pin(self, net: str, x: int, y: int,
                direction: str = "in") -> Pin:
        if net in self._pins:
            raise ToolError(f"pin {net!r} already present")
        pin = Pin(net, x, y, direction)
        self._pins[net] = pin
        return pin

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def placement(self, name: str) -> Placement:
        try:
            return self._placements[name]
        except KeyError:
            raise ToolError(f"no cell instance {name!r} in layout "
                            f"{self.name!r}") from None

    def placements(self) -> tuple[Placement, ...]:
        return tuple(self._placements[k] for k in sorted(self._placements))

    def wires(self) -> tuple[Wire, ...]:
        return tuple(self._wires)

    def pins(self) -> tuple[Pin, ...]:
        return tuple(self._pins[k] for k in sorted(self._pins))

    def pin(self, net: str) -> Pin:
        try:
            return self._pins[net]
        except KeyError:
            raise ToolError(f"no pin {net!r} in layout {self.name!r}"
                            ) from None

    @property
    def cell_count(self) -> int:
        return len(self._placements)

    def wirelength(self) -> int:
        return sum(w.length() for w in self._wires)

    def bounding_box(self, library=None) -> tuple[int, int, int, int]:
        """(min_x, min_y, max_x, max_y) over cells, wires and pins."""
        xs: list[int] = []
        ys: list[int] = []
        for placement in self._placements.values():
            xs.append(placement.x)
            ys.append(placement.y)
            if library is not None:
                cell = library.cell(placement.cell)
                xs.append(placement.x + cell.width)
                ys.append(placement.y + cell.height)
        for wire in self._wires:
            for x, y in wire.points:
                xs.append(x)
                ys.append(y)
        for pin in self._pins.values():
            xs.append(pin.x)
            ys.append(pin.y)
        if not xs:
            return (0, 0, 0, 0)
        return (min(xs), min(ys), max(xs), max(ys))

    def area(self, library=None) -> int:
        min_x, min_y, max_x, max_y = self.bounding_box(library)
        return max(0, max_x - min_x) * max(0, max_y - min_y)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Layout":
        clone = Layout(name or self.name)
        clone._placements = dict(self._placements)
        clone._wires = list(self._wires)
        clone._pins = dict(self._pins)
        return clone

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "placements": [p.to_dict() for p in self.placements()],
            "wires": [w.to_dict() for w in self._wires],
            "pins": [p.to_dict() for p in self.pins()],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Layout":
        layout = cls(payload["name"])
        for spec in payload.get("placements", ()):
            placement = Placement.from_dict(spec)
            layout._placements[placement.name] = placement
        layout._wires = [Wire.from_dict(s) for s in payload.get("wires",
                                                                ())]
        for spec in payload.get("pins", ()):
            pin = Pin.from_dict(spec)
            layout._pins[pin.net] = pin
        return layout

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(repr(self.to_dict()))

    def __repr__(self) -> str:
        return (f"Layout({self.name!r}, {self.cell_count} cells, "
                f"{len(self._wires)} wires)")
