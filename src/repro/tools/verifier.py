"""LVS-style netlist verification (the *Verifier* of Fig. 1).

Compares a *reference* netlist against a *candidate* netlist (typically
edited-vs-extracted, Fig. 8b) up to renaming of internal nets.  Matching
uses Weisfeiler-Lehman-style iterative refinement: nets and devices are
colored, colors are rehashed from neighborhoods until stable, and the two
netlists match when their final color multisets agree *and* the IO ports
carry matching colors under their (shared) names.

The result object reports what differs — device counts by type, port
signature mismatches, or refinement signature divergence — so that a
failed verification is actionable, as a real LVS report would be.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from .netlist import GROUND, POWER, Netlist


@dataclass(frozen=True)
class Verification:
    """Outcome of one netlist comparison."""

    reference: str
    candidate: str
    matched: bool
    reasons: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"reference": self.reference, "candidate": self.candidate,
                "matched": self.matched, "reasons": list(self.reasons)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Verification":
        return cls(payload["reference"], payload["candidate"],
                   payload["matched"], tuple(payload.get("reasons", ())))

    def __bool__(self) -> bool:
        return self.matched


def _digest(*parts: str) -> str:
    joined = "|".join(parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]


def _refine(netlist: Netlist, rounds: int | None = None
            ) -> tuple[dict[str, str], dict[str, str]]:
    """Iteratively refine net and device colors.

    Returns (net colors, device colors).  Initial net colors distinguish
    supplies and IO ports *by name* (LVS must respect the interface);
    internal nets start identical and split by structure.
    """
    nets = netlist.nets()
    net_color: dict[str, str] = {}
    for net in nets:
        if net == POWER:
            net_color[net] = _digest("POWER")
        elif net == GROUND:
            net_color[net] = _digest("GROUND")
        elif net in netlist.inputs:
            net_color[net] = _digest("IN", net)
        elif net in netlist.outputs:
            net_color[net] = _digest("OUT", net)
        else:
            net_color[net] = _digest("INTERNAL")
    transistors = netlist.transistors()
    device_color = {t.name: _digest(t.kind, t.strength, f"{t.width:g}",
                                    f"{t.length:g}")
                    for t in transistors}
    total_rounds = rounds if rounds is not None else len(nets) + 2
    for _ in range(total_rounds):
        # devices absorb terminal net colors (source/drain symmetric)
        new_device = {}
        for t in transistors:
            channel = sorted((net_color[t.source], net_color[t.drain]))
            new_device[t.name] = _digest(device_color[t.name],
                                         net_color[t.gate], *channel)
        # nets absorb the colors of devices touching them, per terminal
        touches: dict[str, list[str]] = {net: [] for net in nets}
        for t in transistors:
            touches[t.gate].append(_digest("g", new_device[t.name]))
            touches[t.source].append(_digest("sd", new_device[t.name]))
            touches[t.drain].append(_digest("sd", new_device[t.name]))
        new_net = {net: _digest(net_color[net], *sorted(touches[net]))
                   for net in nets}
        if new_net == net_color and new_device == device_color:
            break
        net_color, device_color = new_net, new_device
    return net_color, device_color


def verify(reference: Netlist, candidate: Netlist, *,
           library=None) -> Verification:
    """Compare two netlists; hierarchical inputs are flattened first."""
    reference = _flatten_if_needed(reference, library)
    candidate = _flatten_if_needed(candidate, library)
    reasons: list[str] = []

    ref_counts = _device_counts(reference)
    cand_counts = _device_counts(candidate)
    if ref_counts != cand_counts:
        reasons.append(
            f"device counts differ: reference {ref_counts}, "
            f"candidate {cand_counts}")
    if set(reference.inputs) != set(candidate.inputs):
        reasons.append(
            f"input ports differ: {sorted(reference.inputs)} vs "
            f"{sorted(candidate.inputs)}")
    if set(reference.outputs) != set(candidate.outputs):
        reasons.append(
            f"output ports differ: {sorted(reference.outputs)} vs "
            f"{sorted(candidate.outputs)}")
    if not reasons:
        ref_nets, ref_devices = _refine(reference)
        cand_nets, cand_devices = _refine(candidate)
        if sorted(ref_devices.values()) != sorted(cand_devices.values()):
            reasons.append("device refinement signatures differ "
                           "(topology mismatch)")
        for port in (*reference.inputs, *reference.outputs):
            if ref_nets.get(port) != cand_nets.get(port):
                reasons.append(
                    f"port {port!r} has mismatched surroundings")
        if sorted(ref_nets.values()) != sorted(cand_nets.values()):
            reasons.append("net refinement signatures differ")
    return Verification(reference.name, candidate.name,
                        matched=not reasons, reasons=tuple(reasons))


def _flatten_if_needed(netlist: Netlist, library) -> Netlist:
    if netlist.is_flat:
        return netlist
    if library is None:
        raise ValueError(
            f"netlist {netlist.name!r} is hierarchical; the verifier "
            "needs a cell library")
    return netlist.flatten(library)


def _device_counts(netlist: Netlist) -> dict[str, int]:
    counts: dict[str, int] = {}
    for t in netlist.transistors():
        counts[t.kind] = counts.get(t.kind, 0) + 1
    return counts
