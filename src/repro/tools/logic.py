"""Logic specifications: the logic view of a design (Fig. 7).

A :class:`LogicSpec` names inputs and outputs and gives each output a
boolean expression tree.  Expressions are JSON-safe nested lists::

    ["and", ["var", "a"], ["not", ["var", "b"]]]

with operators ``and``/``or`` (n-ary, n >= 2), ``not``, ``var`` and
``const``.  :func:`parse_expr` accepts the usual infix syntax
(``~``, ``&``, ``|``, parentheses, ``0``/``1``) so examples can write
``LogicSpec.from_equations("f", "y = ~(a & b)")``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import ToolError

Expr = list  # nested ["op", ...] lists

_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|[01()&|~])")


def parse_expr(text: str) -> Expr:
    """Parse an infix boolean expression into an expression tree."""
    tokens = _tokenize(text)
    expr, rest = _parse_or(tokens)
    if rest:
        raise ToolError(f"trailing tokens in expression {text!r}: {rest}")
    return expr


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ToolError(
                    f"bad character in expression at {text[position:]!r}")
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def _parse_or(tokens: list[str]) -> tuple[Expr, list[str]]:
    left, rest = _parse_and(tokens)
    terms = [left]
    while rest and rest[0] == "|":
        term, rest = _parse_and(rest[1:])
        terms.append(term)
    if len(terms) == 1:
        return left, rest
    return ["or", *terms], rest


def _parse_and(tokens: list[str]) -> tuple[Expr, list[str]]:
    left, rest = _parse_unary(tokens)
    terms = [left]
    while rest and rest[0] == "&":
        term, rest = _parse_unary(rest[1:])
        terms.append(term)
    if len(terms) == 1:
        return left, rest
    return ["and", *terms], rest


def _parse_unary(tokens: list[str]) -> tuple[Expr, list[str]]:
    if not tokens:
        raise ToolError("unexpected end of expression")
    head, *rest = tokens
    if head == "~":
        inner, remaining = _parse_unary(rest)
        return ["not", inner], remaining
    if head == "(":
        inner, remaining = _parse_or(rest)
        if not remaining or remaining[0] != ")":
            raise ToolError("missing closing parenthesis")
        return inner, remaining[1:]
    if head in ("0", "1"):
        return ["const", int(head)], rest
    if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", head):
        return ["var", head], rest
    raise ToolError(f"unexpected token {head!r}")


def evaluate(expr: Expr, assignment: Mapping[str, int]) -> int:
    """Evaluate an expression tree over a 0/1 variable assignment."""
    op = expr[0]
    if op == "var":
        name = expr[1]
        if name not in assignment:
            raise ToolError(f"unbound variable {name!r}")
        return 1 if assignment[name] else 0
    if op == "const":
        return 1 if expr[1] else 0
    if op == "not":
        return 1 - evaluate(expr[1], assignment)
    if op == "and":
        return int(all(evaluate(e, assignment) for e in expr[1:]))
    if op == "or":
        return int(any(evaluate(e, assignment) for e in expr[1:]))
    raise ToolError(f"unknown operator {op!r}")


def simplify(expr: Expr) -> Expr:
    """Boolean simplification: the tech mapper's front end.

    Applies, bottom-up: double-negation elimination, constant folding
    (De Morgan-free: ``~0 -> 1``), flattening of nested same-operator
    nodes, identity/annihilator removal (``x & 1``, ``x | 0`` / ``x &
    0``, ``x | 1``), duplicate-operand removal, and complementary-pair
    detection (``x & ~x -> 0``, ``x | ~x -> 1``).  The result computes
    the same function (property-tested) and never has more operators.
    """
    op = expr[0]
    if op in ("var", "const"):
        return list(expr)
    if op == "not":
        inner = simplify(expr[1])
        if inner[0] == "not":
            return inner[1]
        if inner[0] == "const":
            return ["const", 1 - inner[1]]
        return ["not", inner]
    if op in ("and", "or"):
        identity = 1 if op == "and" else 0
        annihilator = 1 - identity
        terms: list[Expr] = []
        seen: set[str] = set()
        for raw in expr[1:]:
            term = simplify(raw)
            if term[0] == op:
                inner_terms = term[1:]
            else:
                inner_terms = [term]
            for inner in inner_terms:
                if inner[0] == "const":
                    if inner[1] == annihilator:
                        return ["const", annihilator]
                    continue  # identity element: drop
                key = repr(inner)
                if key in seen:
                    continue
                seen.add(key)
                terms.append(inner)
        # complementary pair: x op ~x
        for term in terms:
            complement = repr(simplify(["not", term]))
            if complement in seen:
                return ["const", annihilator]
        if not terms:
            return ["const", identity]
        if len(terms) == 1:
            return terms[0]
        return [op, *terms]
    raise ToolError(f"unknown operator {op!r}")


def operator_count(expr: Expr) -> int:
    """Number of and/or/not operators in an expression tree."""
    op = expr[0]
    if op in ("var", "const"):
        return 0
    return 1 + sum(operator_count(e) for e in expr[1:])


def variables(expr: Expr) -> set[str]:
    """Free variables of an expression tree."""
    op = expr[0]
    if op == "var":
        return {expr[1]}
    if op == "const":
        return set()
    return set().union(*(variables(e) for e in expr[1:]))


@dataclass(frozen=True)
class LogicSpec:
    """Named boolean functions over named inputs."""

    name: str
    inputs: tuple[str, ...]
    equations: tuple[tuple[str, Expr], ...]  # (output, expression)

    def __post_init__(self) -> None:
        seen = set()
        for output, expr in self.equations:
            if output in seen:
                raise ToolError(f"duplicate output {output!r}")
            seen.add(output)
            unknown = variables(expr) - set(self.inputs)
            if unknown:
                raise ToolError(
                    f"output {output!r} uses undeclared inputs "
                    f"{sorted(unknown)}")

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(output for output, _ in self.equations)

    def expression(self, output: str) -> Expr:
        for name, expr in self.equations:
            if name == output:
                return expr
        raise ToolError(f"no output {output!r} in {self.name!r}")

    @classmethod
    def from_equations(cls, name: str, *equations: str,
                       inputs: Iterable[str] | None = None) -> "LogicSpec":
        """Build from ``"output = expression"`` strings.

        Inputs default to the union of free variables, sorted.
        """
        parsed: list[tuple[str, Expr]] = []
        for equation in equations:
            lhs, _, rhs = equation.partition("=")
            if not rhs:
                raise ToolError(f"equation {equation!r} lacks '='")
            parsed.append((lhs.strip(), parse_expr(rhs)))
        if inputs is None:
            free: set[str] = set()
            for _, expr in parsed:
                free |= variables(expr)
            inputs = sorted(free)
        return cls(name, tuple(inputs), tuple(parsed))

    def evaluate(self, assignment: Mapping[str, int]) -> dict[str, int]:
        return {output: evaluate(expr, assignment)
                for output, expr in self.equations}

    def truth_table(self) -> tuple[tuple[tuple[int, ...],
                                         tuple[int, ...]], ...]:
        """((input bits), (output bits)) rows in counting order."""
        import itertools

        rows = []
        for bits in itertools.product((0, 1), repeat=len(self.inputs)):
            assignment = dict(zip(self.inputs, bits))
            values = self.evaluate(assignment)
            rows.append((bits, tuple(values[o] for o in self.outputs)))
        return tuple(rows)

    def minterms(self, output: str) -> tuple[tuple[int, ...], ...]:
        """Input combinations for which an output is 1."""
        index = self.outputs.index(output)
        return tuple(bits for bits, values in self.truth_table()
                     if values[index] == 1)

    # -- persistence -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "inputs": list(self.inputs),
                "equations": [[o, e] for o, e in self.equations]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LogicSpec":
        return cls(payload["name"], tuple(payload["inputs"]),
                   tuple((o, e) for o, e in payload["equations"]))
