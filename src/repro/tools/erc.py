"""Electrical rule checking: netlist-level sanity (the ERC tool).

Complements DRC (geometry) and LVS (equivalence) with the classic
netlist checks:

* ``floating-gate``   — a transistor gate driven by nothing (not an
  input, not a supply, and no channel of any device touches it);
* ``undriven-output`` — a declared output no channel terminal touches;
* ``unused-input``    — a declared input that gates or feeds nothing
  (warning);
* ``supply-bridge``   — a single always-on transistor directly bridging
  VDD and GND (gate tied to the supply that turns it on);
* ``isolated-net``    — an internal net touched by exactly one terminal
  (warning: probably a typo in a net name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .netlist import GROUND, NMOS, PMOS, POWER, Netlist


@dataclass(frozen=True)
class ErcViolation:
    """One electrical-rule finding."""

    rule: str
    message: str
    net: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "message": self.message,
                "net": self.net}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ErcViolation":
        return cls(payload["rule"], payload["message"],
                   payload.get("net"))

    def __str__(self) -> str:
        where = f" (net {self.net!r})" if self.net else ""
        return f"[{self.rule}]{where} {self.message}"


@dataclass(frozen=True)
class ErcReport:
    """Outcome of one ERC run."""

    netlist: str
    clean: bool
    violations: tuple[ErcViolation, ...]
    warnings: tuple[ErcViolation, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"netlist": self.netlist, "clean": self.clean,
                "violations": [v.to_dict() for v in self.violations],
                "warnings": [w.to_dict() for w in self.warnings]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ErcReport":
        return cls(payload["netlist"], payload["clean"],
                   tuple(ErcViolation.from_dict(v)
                         for v in payload["violations"]),
                   tuple(ErcViolation.from_dict(w)
                         for w in payload["warnings"]))

    def __bool__(self) -> bool:
        return self.clean

    def render(self) -> str:
        lines = [f"ERC report for {self.netlist!r}: "
                 f"{'CLEAN' if self.clean else 'VIOLATIONS'}"]
        lines.extend(f"  {v}" for v in self.violations)
        lines.extend(f"  (warning) {w}" for w in self.warnings)
        return "\n".join(lines)


def check_electrical_rules(netlist: Netlist,
                           library=None) -> ErcReport:
    """Run every rule on a (flattened if needed) netlist."""
    if not netlist.is_flat:
        if library is None:
            raise ValueError("hierarchical netlist needs a library")
        netlist = netlist.flatten(library)
    violations: list[ErcViolation] = []
    warnings: list[ErcViolation] = []
    transistors = netlist.transistors()
    supplies = {POWER, GROUND}
    inputs = set(netlist.inputs)
    outputs = set(netlist.outputs)

    channel_nets = set()
    gate_nets = set()
    for t in transistors:
        channel_nets.update((t.source, t.drain))
        gate_nets.add(t.gate)

    # floating gates: gate net with no possible driver
    for t in transistors:
        gate = t.gate
        if gate in supplies or gate in inputs:
            continue
        if gate not in channel_nets:
            violations.append(ErcViolation(
                "floating-gate",
                f"gate of {t.name!r} is driven by nothing", gate))

    # undriven outputs
    for output in netlist.outputs:
        if output not in channel_nets:
            violations.append(ErcViolation(
                "undriven-output",
                f"output {output!r} has no driver", output))

    # unused inputs (warning)
    for net in netlist.inputs:
        if net not in gate_nets and net not in channel_nets:
            warnings.append(ErcViolation(
                "unused-input", f"input {net!r} drives nothing", net))

    # direct supply bridges: one device with channel across VDD/GND that
    # is always on (nmos gated by VDD, pmos gated by GND)
    for t in transistors:
        channel = {t.source, t.drain}
        if channel == supplies:
            always_on = (t.kind == NMOS and t.gate == POWER) or \
                        (t.kind == PMOS and t.gate == GROUND)
            if always_on:
                violations.append(ErcViolation(
                    "supply-bridge",
                    f"{t.name!r} permanently shorts VDD to GND",
                    t.name))

    # isolated internal nets (warning)
    touch_count: dict[str, int] = {}
    for t in transistors:
        for net in (t.source, t.drain, t.gate):
            touch_count[net] = touch_count.get(net, 0) + 1
    for net in netlist.internal_nets():
        if touch_count.get(net, 0) == 1:
            warnings.append(ErcViolation(
                "isolated-net",
                f"internal net {net!r} touches a single terminal", net))

    return ErcReport(netlist.name, not violations, tuple(violations),
                     tuple(warnings))
