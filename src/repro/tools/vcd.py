"""VCD (value change dump) export for performance reports.

Turns a :class:`~repro.tools.performance.PerformanceReport` into an IEEE
1364-style VCD text so waveforms can leave the framework for ordinary
waveform viewers.  One timescale tick per settled vector; unknown values
map to ``x``.
"""

from __future__ import annotations

import string

from .performance import UNKNOWN, PerformanceReport

_CODES = string.ascii_letters + "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~"


def _value_char(value: str) -> str:
    return "x" if value == UNKNOWN else value


def to_vcd(report: PerformanceReport, *,
           timescale: str = "1ns") -> str:
    """Render the report's waveforms as a VCD document."""
    nets = [net for net, _ in report.waveforms]
    if len(nets) > len(_CODES):
        raise ValueError(
            f"too many nets for single-character VCD codes "
            f"({len(nets)} > {len(_CODES)})")
    codes = {net: _CODES[index] for index, net in enumerate(nets)}
    lines = [
        f"$comment circuit {report.circuit}, stimuli {report.stimuli}, "
        f"models {report.models} $end",
        f"$timescale {timescale} $end",
        f"$scope module {_sanitize(report.circuit)} $end",
    ]
    for net in nets:
        lines.append(f"$var wire 1 {codes[net]} {_sanitize(net)} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    waveform_map = report.waveform_map()
    previous: dict[str, str] = {}
    # one tick per settled vector, scaled by the stage delay in ns
    tick = max(1, round(report.stage_delay_ns))
    for index in range(report.vector_count):
        changes = []
        for net in nets:
            value = waveform_map[net][index]
            if previous.get(net) != value:
                changes.append(f"{_value_char(value)}{codes[net]}")
                previous[net] = value
        if changes or index == 0:
            lines.append(f"#{index * tick}")
            lines.extend(changes)
    lines.append(f"#{report.vector_count * tick}")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    """VCD identifiers: no whitespace."""
    return "".join(ch if not ch.isspace() else "_" for ch in name)
