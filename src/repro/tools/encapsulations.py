"""Standard encapsulations: wiring the mini-CAD tools into the schema.

:func:`install_standard_tools` outfits a
:class:`~repro.execution.context.DesignEnvironment` built on the
:func:`~repro.schema.standard.odyssey_schema` (or a subset) with every
tool the schema names, demonstrating each encapsulation pattern of
section 3.3:

* the **Extractor** returns both outputs of its invocation (netlist +
  statistics) — the Fig. 5 multi-output subtask;
* the **Simulator** encapsulation serves plain and *compiled* simulator
  instances alike: a ``CompiledSimulator``'s tool data is the
  :class:`~repro.tools.simulator.CompiledNetwork` the Sim Compiler
  produced (Fig. 2);
* the three **optimizers** share one encapsulation registered on their
  common supertype, and receive a simulator *as a data input*;
* the **editors** run deterministic edit scripts; an interactive session
  is modelled by :func:`edit_session`, which installs a tool instance
  carrying the session's script as an instance-specific encapsulation —
  the paper's "multiple encapsulations specify the differing arguments".
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import ToolError
from ..execution.context import DesignEnvironment
from ..execution.encapsulation import ToolContext, encapsulation
from ..history.instance import EntityInstance
from ..schema import standard as S
from .cells import CellLibrary, standard_library
from .device_models import DeviceModels
from .drc import check_design_rules
from .erc import check_electrical_rules
from .editors import (edit_device_models, edit_layout, edit_logic,
                      edit_netlist)
from .extractor import extract
from .generators import pla_layout, stdcell_layout
from .layout import Layout
from .logic import LogicSpec
from .netlist import Netlist
from .optimizer import optimize
from .placer import place
from .plotter import plot
from .router import route_layout
from .simulator import CompiledNetwork, compile_netlist, simulate
from .stimuli import Stimuli
from .verifier import verify


def _script(ctx: ToolContext) -> Sequence[Mapping[str, Any]]:
    script = ctx.options.get("script")
    if script is None:
        raise ToolError(
            f"{ctx.tool_type}: no edit script; start an edit_session() "
            "or register an encapsulation with preset script=")
    return script


def _device_model_editor(ctx: ToolContext, inputs: dict) -> DeviceModels:
    return edit_device_models(_script(ctx), inputs.get("previous"))


def _circuit_editor(ctx: ToolContext, inputs: dict) -> Netlist:
    return edit_netlist(_script(ctx), inputs.get("previous"))


def _layout_editor(ctx: ToolContext, inputs: dict) -> Layout:
    return edit_layout(_script(ctx), inputs.get("previous"))


def _logic_editor(ctx: ToolContext, inputs: dict) -> LogicSpec:
    return edit_logic(_script(ctx), inputs.get("previous"))


def _library(ctx: ToolContext) -> CellLibrary:
    data = ctx.tool_data
    if isinstance(data, Mapping) and isinstance(data.get("library"),
                                                CellLibrary):
        return data["library"]
    return standard_library()


def _placer(ctx: ToolContext, inputs: dict) -> Layout:
    return place(inputs["netlist"], inputs["spec"], _library(ctx))


def _extractor(ctx: ToolContext, inputs: dict) -> dict:
    netlist, statistics = extract(inputs["layout"], _library(ctx))
    produced = {S.EXTRACTED_NETLIST: netlist,
                S.EXTRACTION_STATISTICS: statistics}
    missing = set(ctx.output_types) - set(produced)
    if missing:
        raise ToolError(f"extractor cannot produce {sorted(missing)}")
    return {t: produced[t] for t in ctx.output_types}


def _simulator(ctx: ToolContext, inputs: dict):
    circuit = inputs["circuit"]
    models = circuit["models"]
    stimuli = inputs["stimuli"]
    args = inputs.get("args") or {}
    if isinstance(args, Mapping) and "limit_vectors" in args:
        # SimArgs as an entity type (section 3.3): options are data
        limit = int(args["limit_vectors"])
        stimuli = Stimuli(f"{stimuli.name}[:{limit}]", stimuli.inputs,
                          stimuli.vectors[:limit])
    if isinstance(ctx.tool_data, CompiledNetwork):
        # a tool created during the design (Fig. 2): already compiled
        return ctx.tool_data.simulate(stimuli, models)
    return simulate(circuit["netlist"], stimuli, models,
                    library=_library(ctx))


def _sim_compiler(ctx: ToolContext, inputs: dict) -> CompiledNetwork:
    return compile_netlist(inputs["netlist"], _library(ctx))


def _router(ctx: ToolContext, inputs: dict) -> Layout:
    routed, _summary = route_layout(inputs["layout"], _library(ctx))
    return routed


def _drc_checker(ctx: ToolContext, inputs: dict):
    return check_design_rules(inputs["layout"], _library(ctx))


def _erc_checker(ctx: ToolContext, inputs: dict):
    return check_electrical_rules(inputs["netlist"], _library(ctx))


def _verifier(ctx: ToolContext, inputs: dict):
    return verify(inputs["reference"], inputs["candidate"],
                  library=_library(ctx))


def _plotter(ctx: ToolContext, inputs: dict):
    return plot(inputs["performance"])


def _stdcell_generator(ctx: ToolContext, inputs: dict) -> Layout:
    return stdcell_layout(inputs["logic"], _library(ctx),
                          placement_spec=ctx.options.get("placement"))


def _pla_generator(ctx: ToolContext, inputs: dict) -> Layout:
    return pla_layout(inputs["logic"], _library(ctx))


_STRATEGY_BY_TOOL = {
    S.RANDOM_OPTIMIZER: "random",
    S.COORDINATE_OPTIMIZER: "coordinate",
    S.ANNEALING_OPTIMIZER: "annealing",
}


def _optimizer(ctx: ToolContext, inputs: dict) -> Netlist:
    """Shared encapsulation of the three statistical optimizers."""
    circuit = inputs["circuit"]
    simulator_data = inputs["simulator"]
    spec = inputs["spec"]
    strategy = ctx.options.get("strategy",
                               _STRATEGY_BY_TOOL.get(ctx.tool_type,
                                                     "random"))
    library = standard_library()

    def run_simulation(netlist, stimuli, models):
        # the simulator handed in as *data* selects the engine; a
        # CompiledNetwork cannot serve width-perturbed candidates, so the
        # optimizer recompiles per candidate through the same engine
        if isinstance(simulator_data, CompiledNetwork):
            return simulate(netlist, stimuli, models, library=library)
        return simulate(netlist, stimuli, models, library=library)

    netlist = circuit["netlist"]
    if not netlist.is_flat:
        netlist = netlist.flatten(library)
    tuned, _cost, _evaluations = optimize(
        netlist, circuit["models"], run_simulation, spec,
        strategy=strategy)
    return tuned


def compose_circuit(inputs: dict) -> dict:
    """Composition function for *Circuit* with a consistency check.

    Section 3.1: composition functions *"can be used, for example, to
    check for consistency between entities (e.g., can these device models
    be used with this circuit?)"*.
    """
    models = inputs.get("models")
    netlist = inputs.get("netlist")
    if not isinstance(models, DeviceModels):
        raise ToolError("Circuit composition: 'models' must be a "
                        "DeviceModels object")
    if not isinstance(netlist, Netlist):
        raise ToolError("Circuit composition: 'netlist' must be a "
                        "Netlist object")
    flat = netlist if netlist.is_flat \
        else netlist.flatten(standard_library())
    if flat.device_count == 0:
        raise ToolError("Circuit composition: netlist has no devices")
    return {"models": models, "netlist": netlist}


def _standard_plan(library: CellLibrary):
    lib_data = {"library": library}
    return [
        (S.DEVICE_MODEL_EDITOR, "dm-edit", _device_model_editor, None),
        (S.CIRCUIT_EDITOR, "cct-edit", _circuit_editor, None),
        (S.LAYOUT_EDITOR, "lay-edit", _layout_editor, None),
        (S.LOGIC_EDITOR, "logic-edit", _logic_editor, None),
        (S.PLACER, "rowplace", _placer, lib_data),
        (S.EXTRACTOR, "netex", _extractor, lib_data),
        (S.SIMULATOR, "cosmos", _simulator, lib_data),
        (S.SIM_COMPILER, "cosmos-cc", _sim_compiler, lib_data),
        (S.VERIFIER, "lvs", _verifier, lib_data),
        (S.ROUTER, "trackroute", _router, lib_data),
        (S.DRC_CHECKER, "drc", _drc_checker, lib_data),
        (S.ERC_CHECKER, "erc", _erc_checker, lib_data),
        (S.PLOTTER, "waveplot", _plotter, None),
        (S.STD_CELL_GENERATOR, "sc-gen", _stdcell_generator, lib_data),
        (S.PLA_GENERATOR, "pla-gen", _pla_generator, lib_data),
    ]


def register_standard_encapsulations(env: DesignEnvironment,
                                     library: CellLibrary | None = None
                                     ) -> None:
    """Register the standard encapsulations without installing tools.

    Encapsulations are code, so a reloaded environment (see
    :mod:`repro.persistence`) re-registers them here; the tool
    *instances* are already in the reloaded history.  Per-instance edit
    sessions are not recreated — consistency retracing never re-runs
    editing tasks, so this is only a limitation for explicitly re-running
    an old session.
    """
    library = library if library is not None else standard_library()
    for tool_type, name, fn, _data in _standard_plan(library):
        if tool_type in env.schema \
                and not env.registry.has_encapsulation(tool_type):
            env.registry.register(tool_type, encapsulation(name, fn))
    if S.OPTIMIZER in env.schema \
            and not env.registry.has_encapsulation(S.OPTIMIZER):
        env.registry.register(S.OPTIMIZER,
                              encapsulation("statopt", _optimizer))
    if S.CIRCUIT in env.schema:
        env.registry.register_composition(S.CIRCUIT, compose_circuit)


def install_standard_tools(env: DesignEnvironment,
                           library: CellLibrary | None = None
                           ) -> dict[str, EntityInstance]:
    """Install every tool the environment's schema declares.

    Returns a mapping from tool type name to the installed instance.
    Tool types absent from the schema (e.g. a plain Fig. 1 schema without
    the COSMOS extension) are skipped, so this works for
    :func:`~repro.schema.standard.fig1_schema` subsets too.
    """
    library = library if library is not None else standard_library()
    register_standard_encapsulations(env, library)
    installed: dict[str, EntityInstance] = {}
    for tool_type, name, _fn, data in _standard_plan(library):
        if tool_type not in env.schema:
            continue
        installed[tool_type] = env.install_tool(tool_type, None,
                                                data=data, name=name)
    if S.OPTIMIZER in env.schema:
        for tool_type, name in ((S.RANDOM_OPTIMIZER, "randopt"),
                                (S.COORDINATE_OPTIMIZER, "coordopt"),
                                (S.ANNEALING_OPTIMIZER, "annealopt")):
            installed[tool_type] = env.install_tool(tool_type, None,
                                                    name=name)
    return installed


def edit_session(env: DesignEnvironment, editor_type: str,
                 script: Sequence[Mapping[str, Any]], *,
                 name: str = "") -> EntityInstance:
    """Install one editing-session tool instance carrying a script.

    Each interactive session of an editor becomes its own tool instance
    whose instance-specific encapsulation presets the session's edit
    script — so the history records *which* session made each version.
    """
    editors = {
        S.DEVICE_MODEL_EDITOR: _device_model_editor,
        S.CIRCUIT_EDITOR: _circuit_editor,
        S.LAYOUT_EDITOR: _layout_editor,
        S.LOGIC_EDITOR: _logic_editor,
    }
    if editor_type not in editors:
        raise ToolError(f"{editor_type!r} is not an editor tool type")
    session_name = name or f"{editor_type}-session"
    instance = env.db.install(editor_type, {"session": session_name},
                              user=env.user, name=session_name)
    env.registry.register_for_instance(
        instance.instance_id,
        encapsulation(session_name, editors[editor_type],
                      script=list(script)))
    return instance
